//! Thread-per-process execution: each paper process becomes one OS
//! thread driving its [`Program`] against a shared [`HwMemory`].
//!
//! Unlike the simulator's discrete-event executor there is no schedule —
//! the OS decides the interleaving. What the driver *does* control is
//! observability: every invocation, first step, and response is stamped
//! on the memory's global logical clock (a `SeqCst` `fetch_add`, so
//! stamps respect real time), which is what lets the cross-validation
//! harness check hardware histories for linearizability afterwards.

use crate::memory::HwMemory;
use llsc_shmem::{Action, Algorithm, ExecutionBackend, Feedback, ProcessId, RunError, Value};
use std::time::{Duration, Instant};

/// What one process did during a hardware run.
#[derive(Clone, Debug, PartialEq)]
pub struct HwProcessResult {
    /// The process.
    pub pid: ProcessId,
    /// The value the process returned.
    pub response: Value,
    /// Shared-memory operations the process performed.
    pub ops: u64,
    /// Clock stamp taken just before the process's program was spawned
    /// — its operation is "invoked" from this point on.
    pub invoked_at: u64,
    /// Clock stamp taken just before the process executed its first
    /// action (toss, shared access, or immediate return). `None` only if
    /// the process never produced an action (impossible for terminating
    /// programs, but kept honest for partial runs).
    pub first_step_at: Option<u64>,
    /// Clock stamp taken when the process returned.
    pub responded_at: u64,
}

/// The outcome of one thread-per-process hardware run.
#[derive(Clone, Debug, PartialEq)]
pub struct HwRun {
    /// Per-process results, indexed by process id.
    pub results: Vec<HwProcessResult>,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub wall: Duration,
}

impl HwRun {
    /// The largest per-process shared-access count — the hardware
    /// analogue of the simulator's worst-case `t(p, R)`.
    pub fn max_ops(&self) -> u64 {
        self.results.iter().map(|r| r.ops).max().unwrap_or(0)
    }

    /// The per-process responses, indexed by process id.
    pub fn responses(&self) -> Vec<Value> {
        self.results.iter().map(|r| r.response.clone()).collect()
    }
}

fn drive_one(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    pid: ProcessId,
    max_steps: u64,
) -> Result<HwProcessResult, RunError> {
    let invoked_at = mem.stamp();
    let ops_before = mem.shared_accesses(pid);
    let mut program = alg.spawn(pid, mem.n());
    let mut feedback = Feedback::Start;
    let mut first_step_at = None;
    for _ in 0..max_steps {
        let action = program.next(feedback);
        if first_step_at.is_none() {
            first_step_at = Some(mem.stamp());
        }
        feedback = match action {
            Action::Toss => Feedback::Coin(mem.toss(pid)),
            Action::Invoke(op) => Feedback::Response(mem.apply(pid, &op)),
            Action::Return(value) => {
                let responded_at = mem.stamp();
                return Ok(HwProcessResult {
                    pid,
                    response: value,
                    ops: mem.shared_accesses(pid) - ops_before,
                    invoked_at,
                    first_step_at,
                    responded_at,
                });
            }
        };
    }
    Err(RunError::DivergedLocalBurst { pid })
}

/// Runs `alg` on `mem` with one OS thread per process, joining them all
/// and collecting per-process results. Each thread gives up with
/// [`RunError::DivergedLocalBurst`] after `max_steps` actions, so a
/// non-terminating program cannot wedge the harness; the first such
/// error (in process order) is reported.
///
/// # Panics
///
/// Panics if `mem` was not built for `alg` (fewer processes than the
/// algorithm expects is fine; the run simply uses `mem.n()` processes),
/// or if a process's program panics.
pub fn run_threads(alg: &dyn Algorithm, mem: &HwMemory, max_steps: u64) -> Result<HwRun, RunError> {
    let n = mem.n();
    let started = Instant::now();
    let joined: Vec<Result<HwProcessResult, RunError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|p| scope.spawn(move || drive_one(alg, mem, ProcessId(p), max_steps)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hardware process thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    let mut results = Vec::with_capacity(n);
    for outcome in joined {
        results.push(outcome?);
    }
    Ok(HwRun { results, wall })
}
