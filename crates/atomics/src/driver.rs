//! Thread-per-process execution: each paper process becomes one OS
//! thread driving its [`Program`] against a shared [`HwMemory`].
//!
//! Unlike the simulator's discrete-event executor there is no schedule —
//! the OS decides the interleaving. What the driver *does* control is
//! observability: every invocation, first step, and response is stamped
//! on the memory's global logical clock (a `SeqCst` `fetch_add`, so
//! stamps respect real time), which is what lets the cross-validation
//! harness check hardware histories for linearizability afterwards.
//!
//! Failures are *contained*: a process thread that panics, diverges, or
//! gets stopped by the watchdog is reported as a structured
//! [`HwRunError`] from [`run_threads`] / [`run_threads_watchdog`], never
//! as a panic of the calling thread — so a bad trial fails one
//! cross-validation case instead of aborting the whole harness.
//!
//! [`Program`]: llsc_shmem::Program

use crate::memory::{HwEventKind, HwMemory};
use crate::supervisor::{CrashSupervisor, InjectedCrash};
use llsc_shmem::{
    Action, Algorithm, CrashPlan, ExecutionBackend, Feedback, ProcessId, RecoverySpec, RunError,
    Value,
};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What one process did during a hardware run.
#[derive(Clone, Debug, PartialEq)]
pub struct HwProcessResult {
    /// The process.
    pub pid: ProcessId,
    /// The value the process returned.
    pub response: Value,
    /// Shared-memory operations the process performed.
    pub ops: u64,
    /// Remote memory references billed to the process under the DSM
    /// cost model (`home(R) = R mod n`; remoteness is history-free, so
    /// the hardware backend counts it exactly — see
    /// [`llsc_shmem::dsm_cost`]). The CC charge needs coherence history
    /// and is simulator-only.
    pub dsm_rmrs: u64,
    /// Clock stamp taken just before the process's program was spawned
    /// — its operation is "invoked" from this point on.
    pub invoked_at: u64,
    /// Clock stamp taken just before the process executed its first
    /// action (toss, shared access, or immediate return). `None` only if
    /// the process never produced an action (impossible for terminating
    /// programs, but kept honest for partial runs).
    pub first_step_at: Option<u64>,
    /// Clock stamp taken when the process returned.
    pub responded_at: u64,
}

/// The outcome of one thread-per-process hardware run.
#[derive(Clone, Debug, PartialEq)]
pub struct HwRun {
    /// Per-process results, indexed by process id.
    pub results: Vec<HwProcessResult>,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub wall: Duration,
}

impl HwRun {
    /// The largest per-process shared-access count — the hardware
    /// analogue of the simulator's worst-case `t(p, R)`.
    pub fn max_ops(&self) -> u64 {
        self.results.iter().map(|r| r.ops).max().unwrap_or(0)
    }

    /// The largest per-process DSM RMR count — the hardware analogue of
    /// the simulator's worst-case DSM bill.
    pub fn max_dsm_rmrs(&self) -> u64 {
        self.results.iter().map(|r| r.dsm_rmrs).max().unwrap_or(0)
    }

    /// Total DSM RMRs billed across all processes.
    pub fn total_dsm_rmrs(&self) -> u64 {
        self.results.iter().map(|r| r.dsm_rmrs).sum()
    }

    /// The per-process responses, indexed by process id.
    pub fn responses(&self) -> Vec<Value> {
        self.results.iter().map(|r| r.response.clone()).collect()
    }
}

/// Why a hardware run failed to produce an [`HwRun`].
///
/// The driver never panics on behalf of an algorithm: a panicking
/// program, a diverging loop, and a wedged trial all come back as a
/// value, so harness code (`llsc xcheck`, `bench_e18`) can report the
/// failed case and move on.
#[derive(Clone, Debug, PartialEq)]
pub enum HwRunError {
    /// A structural fault shared with the simulator's vocabulary —
    /// today always [`RunError::DivergedLocalBurst`]: some process
    /// burned its `max_steps` action budget without returning.
    Run(RunError),
    /// A process's program panicked on its thread. The panic was
    /// contained at `join()`; `message` is the payload when it was a
    /// string (the common `panic!`/`assert!` case).
    ThreadPanic {
        /// The process whose thread panicked (first in process order
        /// when several did).
        pid: ProcessId,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The watchdog deadline elapsed before every process returned —
    /// the run live- or deadlocked (or the deadline was too tight) and
    /// the stuck threads were asked to abandon the trial.
    WatchdogTimeout {
        /// The deadline that fired.
        timeout: Duration,
        /// The processes that had not returned when it fired.
        stuck: Vec<ProcessId>,
    },
    /// A crash victim was killed more times than its
    /// [`RecoverySpec::budget`] covers respawns for — the respawn loop
    /// exhausted. The supervisor escalated by aborting the whole trial
    /// (through the same flag the watchdog uses), so peers stop instead
    /// of spinning on the permanently dead victim.
    RespawnExhausted {
        /// The crash-looping victim.
        pid: ProcessId,
        /// Crashes the victim suffered, the final unrecovered one
        /// included.
        crashes: u64,
    },
}

impl fmt::Display for HwRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwRunError::Run(e) => write!(f, "{e}"),
            HwRunError::ThreadPanic { pid, message } => {
                write!(f, "{pid}'s hardware thread panicked: {message}")
            }
            HwRunError::WatchdogTimeout { timeout, stuck } => {
                let stuck: Vec<String> = stuck.iter().map(|p| p.to_string()).collect();
                write!(
                    f,
                    "hardware watchdog fired after {:.1}s: {} never returned",
                    timeout.as_secs_f64(),
                    stuck.join(", ")
                )
            }
            HwRunError::RespawnExhausted { pid, crashes } => write!(
                f,
                "{pid}'s respawn budget exhausted after {crashes} crash(es): \
                 the victim is crash-looping and the trial was aborted"
            ),
        }
    }
}

impl std::error::Error for HwRunError {}

impl From<RunError> for HwRunError {
    fn from(e: RunError) -> HwRunError {
        HwRunError::Run(e)
    }
}

/// Why one process thread gave up without a result.
enum ThreadStop {
    /// Burned its `max_steps` budget.
    Diverged,
    /// Saw the watchdog's abort flag.
    Aborted,
    /// Was killed more times than its respawn budget covers.
    RespawnExhausted {
        /// Crashes delivered, the final unrecovered one included.
        crashes: u64,
    },
}

fn drive_one(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    pid: ProcessId,
    max_steps: u64,
    abort: &AtomicBool,
    supervisor: Option<&CrashSupervisor>,
    first_step_at: &mut Option<u64>,
) -> Result<HwProcessResult, ThreadStop> {
    let invoked_at = mem.stamp();
    let ops_before = mem.shared_accesses(pid);
    let rmrs_before = mem.dsm_rmrs(pid);
    let mut program = alg.spawn(pid, mem.n());
    let mut feedback = Feedback::Start;
    for _ in 0..max_steps {
        if abort.load(Ordering::Relaxed) {
            return Err(ThreadStop::Aborted);
        }
        if let Some(sup) = supervisor {
            if sup.tick(pid) {
                // The incarnation dies here: the unwind drops the
                // program (and this whole frame), and the supervised
                // wrapper below catches the typed payload.
                CrashSupervisor::crash_now();
            }
        }
        let action = program.next(feedback);
        // Owned by the caller so the stamp survives crash/respawn: a
        // revived victim "showed up" at its first incarnation's first
        // step (the simulator's history keeps that step too), and the
        // wakeup condition is judged against that instant.
        if first_step_at.is_none() {
            *first_step_at = Some(mem.stamp());
        }
        feedback = match action {
            Action::Toss => Feedback::Coin(mem.toss(pid)),
            Action::Invoke(op) => Feedback::Response(mem.apply(pid, &op)),
            Action::Return(value) => {
                let responded_at = mem.stamp();
                return Ok(HwProcessResult {
                    pid,
                    response: value,
                    ops: mem.shared_accesses(pid) - ops_before,
                    dsm_rmrs: mem.dsm_rmrs(pid) - rmrs_before,
                    invoked_at,
                    first_step_at: *first_step_at,
                    responded_at,
                });
            }
        };
    }
    Err(ThreadStop::Diverged)
}

/// How many cooperative yields a respawning victim waits for the
/// logical clock to advance before concluding its peers are done too —
/// the clock only ticks on memory activity, so a lone survivor must not
/// wait out a delay nobody can deliver.
const RECOVERY_STALL_YIELDS: u32 = 50_000;

/// Realizes the recovery delay in *logical* time: the victim rejoins
/// once the global clock has advanced [`RecoverySpec::delay`] ticks past
/// its death (the hardware analogue of the simulator's
/// delay-in-events), bounded by an abort check and a stall limit.
fn recovery_pause(mem: &HwMemory, delay: u64, abort: &AtomicBool) {
    let resume_at = mem.clock_now().saturating_add(delay);
    let mut stalled = 0u32;
    while mem.clock_now() < resume_at && !abort.load(Ordering::Relaxed) {
        std::thread::yield_now();
        stalled += 1;
        if stalled > RECOVERY_STALL_YIELDS {
            return;
        }
    }
}

/// [`drive_one`] for a crash victim: incarnations run under
/// `catch_unwind`, the supervisor's typed kills tear down local state
/// and (within budget) respawn a fresh incarnation after the recovery
/// delay; genuine panics unwind onward to the normal
/// [`HwRunError::ThreadPanic`] containment.
fn drive_supervised(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    pid: ProcessId,
    max_steps: u64,
    abort: &AtomicBool,
    sup: &CrashSupervisor,
) -> Result<HwProcessResult, ThreadStop> {
    let invoked_at = mem.stamp();
    let ops_before = mem.shared_accesses(pid);
    let rmrs_before = mem.dsm_rmrs(pid);
    let mut first_step_at = None;
    loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            drive_one(
                alg,
                mem,
                pid,
                max_steps,
                abort,
                Some(sup),
                &mut first_step_at,
            )
        }));
        let payload = match attempt {
            Ok(done) => {
                return done.map(|mut result| {
                    // Bill the whole lifetime, crashed incarnations
                    // included — their wasted work *is* the recovery
                    // cost — and date the operation from the first
                    // incarnation's invocation.
                    result.ops = mem.shared_accesses(pid) - ops_before;
                    result.dsm_rmrs = mem.dsm_rmrs(pid) - rmrs_before;
                    result.invoked_at = invoked_at;
                    result
                });
            }
            Err(payload) => payload,
        };
        if payload.downcast_ref::<InjectedCrash>().is_none() {
            // A genuine algorithm panic: re-raise so the join path
            // reports ThreadPanic, not a phantom recovery.
            resume_unwind(payload);
        }
        let crashes = sup.crashes_of(pid);
        mem.clear_local(pid);
        mem.record_event(pid, HwEventKind::Killed { crashes });
        match sup.grant_respawn(pid) {
            None => {
                // Escalate: stop the peers through the watchdog's own
                // abort flag, then report the structured exhaustion.
                abort.store(true, Ordering::Relaxed);
                return Err(ThreadStop::RespawnExhausted { crashes });
            }
            Some(respawns_left) => {
                recovery_pause(mem, sup.recovery().delay, abort);
                if abort.load(Ordering::Relaxed) {
                    return Err(ThreadStop::Aborted);
                }
                mem.record_event(pid, HwEventKind::Respawned { respawns_left });
            }
        }
    }
}

/// Extracts the human-readable part of a `join()` panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How often stuck threads and the watchdog notice each other.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// Runs `alg` on `mem` with one OS thread per process, joining them all
/// and collecting per-process results. Each thread gives up after
/// `max_steps` actions ([`HwRunError::Run`] with
/// [`RunError::DivergedLocalBurst`]), so a non-terminating program
/// cannot wedge the harness, and a panicking program is contained as
/// [`HwRunError::ThreadPanic`] instead of aborting the caller.
///
/// Equivalent to [`run_threads_watchdog`] without a deadline. Prefer
/// the watchdog variant in harness loops: a livelocked trial under a
/// huge `max_steps` budget can still stall for a very long time here.
///
/// # Panics
///
/// Panics if `mem` was not built for `alg` (fewer processes than the
/// algorithm expects is fine; the run simply uses `mem.n()` processes).
pub fn run_threads(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    max_steps: u64,
) -> Result<HwRun, HwRunError> {
    run_threads_inner(alg, mem, max_steps, None, None)
}

/// [`run_threads`] with a wall-clock deadline: if any process has not
/// returned after `timeout`, every still-running thread is asked to
/// abandon the trial (they poll an abort flag once per action) and the
/// run fails with [`HwRunError::WatchdogTimeout`] naming the stuck
/// processes — the hardware mirror of the simulator harness's
/// `--trial-timeout-ms`, so a wedged trial fails cleanly instead of
/// hanging CI until the job-level kill.
pub fn run_threads_watchdog(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    max_steps: u64,
    timeout: Duration,
) -> Result<HwRun, HwRunError> {
    run_threads_inner(alg, mem, max_steps, Some(timeout), None)
}

/// [`run_threads_watchdog`] under the crash adversary: a
/// [`CrashSupervisor`] armed with `plan` and `recovery` kills each
/// victim's thread at its (per-process-rescaled) crash step via a typed
/// unwind, drops the incarnation's local state, and respawns it after
/// the recovery delay while the re-crash budget lasts. Kills and
/// respawns are stamped into the [`crate::HwEvent`] history; a victim
/// that outruns its budget aborts the trial and is reported as
/// [`HwRunError::RespawnExhausted`].
pub fn run_threads_supervised(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    max_steps: u64,
    timeout: Duration,
    plan: &CrashPlan,
    recovery: RecoverySpec,
) -> Result<HwRun, HwRunError> {
    let sup = CrashSupervisor::new(plan, recovery, mem.n());
    run_threads_inner(alg, mem, max_steps, Some(timeout), Some(&sup))
}

fn run_threads_inner(
    alg: &dyn Algorithm,
    mem: &HwMemory,
    max_steps: u64,
    watchdog: Option<Duration>,
    supervisor: Option<&CrashSupervisor>,
) -> Result<HwRun, HwRunError> {
    let n = mem.n();
    let started = Instant::now();
    let abort = AtomicBool::new(false);
    let live = AtomicUsize::new(n);
    type Joined = std::thread::Result<Result<HwProcessResult, ThreadStop>>;
    let joined: Vec<Joined> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let (abort, live) = (&abort, &live);
                scope.spawn(move || {
                    // Decrement `live` even on unwind, or a panicked
                    // worker would keep the watchdog polling until its
                    // deadline — and raise the abort flag, so peers
                    // blocked on the dead thread stop immediately
                    // instead of spinning until the watchdog masks the
                    // panic as a timeout.
                    struct Departing<'a> {
                        live: &'a AtomicUsize,
                        abort: &'a AtomicBool,
                    }
                    impl Drop for Departing<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                self.abort.store(true, Ordering::Relaxed);
                            }
                            self.live.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _departing = Departing { live, abort };
                    let pid = ProcessId(p);
                    match supervisor.filter(|s| s.is_victim(pid)) {
                        Some(sup) => drive_supervised(alg, mem, pid, max_steps, abort, sup),
                        None => drive_one(alg, mem, pid, max_steps, abort, None, &mut None),
                    }
                })
            })
            .collect();
        if let Some(timeout) = watchdog {
            let (abort, live) = (&abort, &live);
            scope.spawn(move || {
                while live.load(Ordering::Relaxed) > 0 {
                    if started.elapsed() >= timeout {
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(WATCHDOG_POLL);
                }
            });
        }
        handles.into_iter().map(|h| h.join()).collect()
    });
    let wall = started.elapsed();

    let mut results = Vec::with_capacity(n);
    let mut stuck = Vec::new();
    let mut diverged = None;
    let mut exhausted = None;
    for (p, outcome) in joined.into_iter().enumerate() {
        let pid = ProcessId(p);
        match outcome {
            Err(payload) => {
                return Err(HwRunError::ThreadPanic {
                    pid,
                    message: panic_message(payload),
                })
            }
            Ok(Err(ThreadStop::Aborted)) => stuck.push(pid),
            Ok(Err(ThreadStop::Diverged)) => {
                diverged.get_or_insert(pid);
            }
            Ok(Err(ThreadStop::RespawnExhausted { crashes })) => {
                exhausted.get_or_insert((pid, crashes));
            }
            Ok(Ok(result)) => results.push(result),
        }
    }
    // An exhausted respawn loop set the abort flag itself, so its peers
    // come back Aborted: the root cause outranks their symptom.
    if let Some((pid, crashes)) = exhausted {
        return Err(HwRunError::RespawnExhausted { pid, crashes });
    }
    if !stuck.is_empty() {
        return Err(HwRunError::WatchdogTimeout {
            timeout: watchdog.expect("threads only abort under a watchdog or after an escalation"),
            stuck,
        });
    }
    if let Some(pid) = diverged {
        return Err(HwRunError::Run(RunError::DivergedLocalBurst { pid }));
    }
    Ok(HwRun { results, wall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, fix, ll};
    use llsc_shmem::{FnAlgorithm, RegisterId, SeededTosses};
    use std::sync::Arc;

    /// A program that LLs register 0 forever — livelocked, never returns.
    fn spinner() -> impl Algorithm {
        FnAlgorithm::new("spinner", |_pid, _n| {
            fix(|(), again| ll(RegisterId(0), move |_| again.call(())), ()).into_program()
        })
    }

    #[test]
    fn panicked_thread_is_reported_not_fatal() {
        let alg = FnAlgorithm::new("panicker", |pid: ProcessId, _n| {
            assert!(pid.0 != 1, "injected panic in p1");
            done(Value::from(0i64)).into_program()
        });
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        match run_threads(&alg, &mem, 1_000) {
            Err(HwRunError::ThreadPanic { pid, message }) => {
                assert_eq!(pid, ProcessId(1));
                assert!(message.contains("injected panic in p1"), "{message}");
            }
            other => panic!("expected ThreadPanic, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_stops_a_livelocked_trial() {
        let alg = spinner();
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        let started = Instant::now();
        match run_threads_watchdog(&alg, &mem, u64::MAX, Duration::from_millis(50)) {
            Err(HwRunError::WatchdogTimeout { timeout, stuck }) => {
                assert_eq!(timeout, Duration::from_millis(50));
                assert_eq!(stuck, vec![ProcessId(0), ProcessId(1)]);
            }
            other => panic!("expected WatchdogTimeout, got {other:?}"),
        }
        // Cleanly stopped: well before any CI job-level timeout.
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn divergence_still_reported_under_a_generous_watchdog() {
        let alg = spinner();
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        let err = run_threads_watchdog(&alg, &mem, 200, Duration::from_secs(60)).unwrap_err();
        assert_eq!(
            err,
            HwRunError::Run(RunError::DivergedLocalBurst { pid: ProcessId(0) })
        );
    }

    #[test]
    fn watchdog_passthrough_on_a_terminating_run() {
        let alg = FnAlgorithm::new("trivial", |pid: ProcessId, _n| {
            done(Value::from(pid.0 as i64)).into_program()
        });
        let mem = HwMemory::for_algorithm(&alg, 3, Arc::new(SeededTosses::new(1)));
        let run = run_threads_watchdog(&alg, &mem, 1_000, Duration::from_secs(60))
            .expect("terminates well inside the deadline");
        assert_eq!(run.results.len(), 3);
    }

    /// A program of six LLs on register 0, then return — long enough to
    /// cross a small crash step.
    fn six_lls() -> impl Algorithm {
        FnAlgorithm::new("six-lls", |_pid, _n| {
            let r = RegisterId(0);
            ll(r, move |_| {
                ll(r, move |_| {
                    ll(r, move |_| {
                        ll(r, move |_| {
                            ll(r, move |_| ll(r, move |_| done(Value::from(1i64))))
                        })
                    })
                })
            })
            .into_program()
        })
    }

    #[test]
    fn supervised_victim_respawns_and_the_history_shows_it() {
        use llsc_shmem::{CrashPlan, RecoverySpec};

        let alg = six_lls();
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        // Global threshold 8 over n=2 → p1 crashes before its 5th
        // action; budget 1 means one kill, one respawn, then a clean
        // second incarnation.
        let plan = CrashPlan::at([(ProcessId(1), 8)]);
        let recovery = RecoverySpec {
            delay: 2,
            budget: 1,
        };
        let run =
            run_threads_supervised(&alg, &mem, 1_000, Duration::from_secs(60), &plan, recovery)
                .expect("victim recovers within budget");
        assert_eq!(run.results.len(), 2);
        let victim = run.results.iter().find(|r| r.pid == ProcessId(1)).unwrap();
        // 4 accesses wasted by the killed incarnation + 6 by the clean
        // one: the surcharge is the recovery cost, and it is
        // deterministic because the crash step is keyed on p1's private
        // step clock.
        assert_eq!(victim.ops, 10);

        let events = mem.take_events();
        let kills: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, crate::HwEventKind::Killed { .. }))
            .collect();
        let respawns: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, crate::HwEventKind::Respawned { .. }))
            .collect();
        assert_eq!(kills.len(), 1);
        assert_eq!(respawns.len(), 1);
        assert_eq!(kills[0].pid, ProcessId(1));
        assert_eq!(kills[0].kind, crate::HwEventKind::Killed { crashes: 1 });
        assert_eq!(respawns[0].pid, ProcessId(1));
        assert_eq!(
            respawns[0].kind,
            crate::HwEventKind::Respawned { respawns_left: 0 }
        );
        assert!(
            kills[0].at < respawns[0].at,
            "kill ({}) precedes recovery ({})",
            kills[0].at,
            respawns[0].at
        );
    }

    #[test]
    fn respawn_exhaustion_escalates_as_a_structured_error() {
        use llsc_shmem::{CrashPlan, RecoverySpec};

        let alg = six_lls();
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        // Budget 0: no respawn allowance at all, so p0's first kill
        // exhausts the loop and aborts the trial.
        let plan = CrashPlan::at([(ProcessId(0), 0)]);
        let recovery = RecoverySpec {
            delay: 1,
            budget: 0,
        };
        let err =
            run_threads_supervised(&alg, &mem, 1_000, Duration::from_secs(60), &plan, recovery)
                .unwrap_err();
        assert_eq!(
            err,
            HwRunError::RespawnExhausted {
                pid: ProcessId(0),
                crashes: 1
            }
        );
        // The kill still made it into the history before the escalation.
        assert!(mem
            .take_events()
            .iter()
            .any(|e| e.pid == ProcessId(0) && matches!(e.kind, crate::HwEventKind::Killed { .. })));
    }

    #[test]
    fn a_panicking_thread_aborts_stuck_peers_instead_of_waiting_for_the_watchdog() {
        // p0 spins forever, p1 panics immediately. Before the
        // panic-aborts fix, p0 would spin until the 60s deadline and
        // the report would be WatchdogTimeout; now the dying thread
        // raises the abort flag and the panic is reported in moments.
        let alg = FnAlgorithm::new("spin-or-panic", |pid: ProcessId, _n| {
            assert!(pid.0 != 1, "injected panic in p1");
            fix(|(), again| ll(RegisterId(0), move |_| again.call(())), ()).into_program()
        });
        let mem = HwMemory::for_algorithm(&alg, 2, Arc::new(SeededTosses::new(1)));
        let started = Instant::now();
        match run_threads_watchdog(&alg, &mem, u64::MAX, Duration::from_secs(60)) {
            Err(HwRunError::ThreadPanic { pid, message }) => {
                assert_eq!(pid, ProcessId(1));
                assert!(message.contains("injected panic in p1"), "{message}");
            }
            other => panic!("expected ThreadPanic, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the panic must not be masked until the watchdog deadline"
        );
    }

    #[test]
    fn errors_render_for_harness_reports() {
        let panic = HwRunError::ThreadPanic {
            pid: ProcessId(3),
            message: "boom".into(),
        };
        assert!(panic.to_string().contains("panicked: boom"));
        let wedged = HwRunError::WatchdogTimeout {
            timeout: Duration::from_secs(2),
            stuck: vec![ProcessId(0), ProcessId(2)],
        };
        let rendered = wedged.to_string();
        assert!(rendered.contains("watchdog fired"), "{rendered}");
        assert!(rendered.contains("never returned"), "{rendered}");
        let diverged: HwRunError = RunError::DivergedLocalBurst { pid: ProcessId(1) }.into();
        assert!(diverged.to_string().contains("diverged"));
        let exhausted = HwRunError::RespawnExhausted {
            pid: ProcessId(2),
            crashes: 3,
        };
        let rendered = exhausted.to_string();
        assert!(rendered.contains("respawn budget exhausted"), "{rendered}");
        assert!(rendered.contains("3 crash(es)"), "{rendered}");
    }
}
