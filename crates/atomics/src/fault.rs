//! The memory-fault adversary on real atomics: deterministic fault
//! streams for the hardware backend.
//!
//! The simulator injects faults off its global event counter — a number
//! that does not exist on the hardware backend, where the OS scheduler
//! decides the interleaving and the global logical clock is a race
//! outcome. What *is* deterministic per run is each process's own access
//! count: thread `p`'s `k`-th shared operation is the same operation in
//! every interleaving (of a per-process-deterministic program). This
//! module therefore re-times a simulator [`FaultPlan`] onto the
//! **per-process logical clock**:
//!
//! * [`split_plan`] deals the plan's global-event thresholds out to the
//!   `n` processes (entry `i` → process `i mod n`) and rescales each
//!   threshold from global event time to per-process access time
//!   (`t / n`, the expected share of a fair interleaving), deriving a
//!   decorrelated per-process value seed;
//! * [`HwFaultLayer`] arms one [`FaultInjector`] per process; the
//!   injectors never contend (each is touched only by its owner's
//!   thread) and their delivery decisions depend only on the owner's
//!   access count — so the delivered fault stream is a pure function of
//!   `(algorithm, plan, n)`, byte-identical across thread interleavings.
//!
//! The hooks themselves live in [`HwMemory::apply`](crate::HwMemory):
//! corruption rewrites the register an operation is about to observe,
//! and a due spurious entry suppresses the first SC whose link is still
//! valid — exactly the simulator's two weak-LL/SC failure modes.

use llsc_shmem::{FaultInjector, FaultPlan, FaultStats, ProcessId};
use std::sync::{Mutex, MutexGuard};

/// Domain separation for per-process value-mutation seeds, so the `n`
/// replacement-value streams are decorrelated even though they derive
/// from one plan seed.
const PER_PROCESS_VALUE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Re-times a simulator [`FaultPlan`] (thresholds in global event time)
/// into `n` per-process plans (thresholds in per-process access time).
///
/// Entry `i` of each sorted threshold list goes to process `i mod n`,
/// with its threshold divided by `n`: under a fair interleaving a global
/// event count of `t` corresponds to roughly `t / n` accesses by each
/// process, so the rescaled plan fires in the same phase of the run.
/// The result is a pure function of `(plan, n)` — hardware fault sweeps
/// are as seed-deterministic as simulator ones.
pub fn split_plan(plan: &FaultPlan, n: usize) -> Vec<FaultPlan> {
    let n = n.max(1);
    let mut spurious: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (i, &t) in plan.spurious().iter().enumerate() {
        spurious[i % n].push(t / n as u64);
    }
    let mut corruptions: Vec<Vec<(u64, bool)>> = vec![Vec::new(); n];
    for (i, &(t, clear)) in plan.corruptions().iter().enumerate() {
        corruptions[i % n].push((t / n as u64, clear));
    }
    (0..n)
        .map(|p| {
            let seed = plan
                .value_seed()
                .wrapping_add(PER_PROCESS_VALUE_SALT.wrapping_mul(p as u64 + 1));
            FaultPlan::at(
                std::mem::take(&mut spurious[p]),
                std::mem::take(&mut corruptions[p]),
                seed,
            )
        })
        .collect()
}

/// One armed [`FaultInjector`] per process, for the hardware backend.
///
/// Each injector is only ever touched by its owning process's thread
/// (the mutexes exist to keep the backend `Sync` inside
/// `#![forbid(unsafe_code)]`, not for contention), and every delivery
/// decision is keyed on the owner's private access count — see the
/// module docs for why that makes hardware fault streams deterministic.
#[derive(Debug)]
pub struct HwFaultLayer {
    per_process: Vec<Mutex<FaultInjector>>,
}

impl HwFaultLayer {
    /// Arms `plan` for `n` processes by [`split_plan`].
    pub fn new(plan: &FaultPlan, n: usize) -> HwFaultLayer {
        HwFaultLayer::from_assignments(split_plan(plan, n))
    }

    /// Arms an explicit per-process plan assignment (one plan per
    /// process, in process order) — the targeted form tests and the
    /// conformance suite use to aim a fault at a specific process.
    pub fn from_assignments<I>(plans: I) -> HwFaultLayer
    where
        I: IntoIterator<Item = FaultPlan>,
    {
        HwFaultLayer {
            per_process: plans
                .into_iter()
                .map(|plan| Mutex::new(FaultInjector::new(plan)))
                .collect(),
        }
    }

    /// The number of per-process injectors.
    pub fn processes(&self) -> usize {
        self.per_process.len()
    }

    /// The injector owned by `p` (panics if `p` is out of range — the
    /// memory constructs the layer for exactly its own `n`).
    pub(crate) fn injector(&self, p: ProcessId) -> MutexGuard<'_, FaultInjector> {
        self.per_process[p.0]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Faults actually delivered so far, summed over every process.
    pub fn stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for inj in &self.per_process {
            let s = inj.lock().unwrap_or_else(|e| e.into_inner()).stats();
            total.spurious_sc += s.spurious_sc;
            total.corruptions += s.corruptions;
        }
        total
    }

    /// `true` iff no per-process plan schedules any fault.
    pub fn is_empty(&self) -> bool {
        self.per_process.iter().all(|inj| {
            inj.lock()
                .unwrap_or_else(|e| e.into_inner())
                .plan()
                .is_empty()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_deals_entries_round_robin_and_rescales() {
        let plan = FaultPlan::at([0, 10, 20], [(30, true), (40, false)], 7);
        let split = split_plan(&plan, 2);
        assert_eq!(split.len(), 2);
        // Sorted spurious [0, 10, 20]: entries 0 and 2 land on p0,
        // entry 1 on p1; thresholds halve.
        assert_eq!(split[0].spurious(), &[0, 10]);
        assert_eq!(split[1].spurious(), &[5]);
        // Sorted corruptions [(30, true), (40, false)] deal the same way.
        assert_eq!(split[0].corruptions(), &[(15, true)]);
        assert_eq!(split[1].corruptions(), &[(20, false)]);
        // Value seeds are decorrelated but deterministic.
        assert_ne!(split[0].value_seed(), split[1].value_seed());
        let again = split_plan(&plan, 2);
        assert_eq!(split, again);
    }

    #[test]
    fn split_preserves_the_total_fault_count() {
        for n in [1, 3, 7] {
            let plan = FaultPlan::seeded(11, 9, 5, 64);
            let split = split_plan(&plan, n);
            let spurious: usize = split.iter().map(|p| p.spurious().len()).sum();
            let corruptions: usize = split.iter().map(|p| p.corruptions().len()).sum();
            assert_eq!(spurious, 9, "n={n}");
            assert_eq!(corruptions, 5, "n={n}");
        }
    }

    #[test]
    fn layer_aggregates_stats_across_processes() {
        let layer = HwFaultLayer::from_assignments([
            FaultPlan::at([0], [], 1),
            FaultPlan::at([], [(0, true)], 2),
        ]);
        assert_eq!(layer.processes(), 2);
        assert!(!layer.is_empty());
        assert_eq!(
            layer.stats(),
            FaultStats::default(),
            "nothing delivered yet"
        );
        {
            let mut inj = layer.injector(ProcessId(0));
            assert!(inj.spurious_due(0));
            inj.consume_spurious();
        }
        {
            let mut inj = layer.injector(ProcessId(1));
            assert_eq!(inj.take_corruption(0), Some(true));
        }
        let stats = layer.stats();
        assert_eq!(stats.spurious_sc, 1);
        assert_eq!(stats.corruptions, 1);
        assert_eq!(stats.total(), 2);
        assert!(HwFaultLayer::new(&FaultPlan::none(), 4).is_empty());
    }
}
