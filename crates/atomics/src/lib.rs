//! Real-hardware execution backend for the Jayanti PODC'98 reproduction.
//!
//! The simulator in `llsc-shmem` gives the paper's model exactly —
//! deterministic schedules, strong LL/SC, per-access counting — but it
//! never exercises a real memory system. This crate is the other half of
//! the backend-generic story: the same five operations
//! (LL/SC/validate/swap/move), the same [`llsc_shmem::Algorithm`]
//! programs, executed by real OS threads against registers built from
//! pointer-width compare-and-swap in the style of Blelloch–Wei
//! (arXiv:1911.09671).
//!
//! * [`HwMemory`] — the CAS-based memory, implementing
//!   [`llsc_shmem::ExecutionBackend`]; see its module docs for the
//!   version-tag construction and why it is ABA-safe.
//! * [`run_threads`] / [`run_threads_watchdog`] — the thread-per-process
//!   driver, stamping every invocation and response on a global logical
//!   clock so runs can be linearizability-checked after the fact. A
//!   panicking program or a wedged trial comes back as a structured
//!   [`HwRunError`], never as a harness abort; the watchdog variant adds
//!   a wall-clock deadline for CI.
//! * [`fault`] / [`CrashSupervisor`] — the simulator's fault stack,
//!   ported to real threads: a [`llsc_shmem::FaultPlan`] re-timed onto
//!   each process's private access clock injects spurious SC failures
//!   and register corruption deterministically
//!   ([`HwMemory::with_faults`]), and a
//!   [`llsc_shmem::CrashPlan`]-driven supervisor kills victim threads
//!   at their crash step (panic-based teardown), respawns them after
//!   the recovery delay with a re-crash budget, and reports budget
//!   exhaustion as a structured [`HwRunError::RespawnExhausted`]
//!   ([`run_threads_supervised`]). Every delivery is stamped into the
//!   [`HwEvent`] history.
//!
//! The crate deliberately depends on `llsc-shmem` alone: history
//! checking against sequential specifications lives downstream in
//! `llsc-bench`, which owns the simulator ⇄ hardware cross-validation
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
pub mod fault;
mod memory;
mod supervisor;

pub use driver::{
    run_threads, run_threads_supervised, run_threads_watchdog, HwProcessResult, HwRun, HwRunError,
};
pub use fault::{split_plan, HwFaultLayer};
pub use memory::{HwEvent, HwEventKind, HwMemory};
pub use supervisor::CrashSupervisor;
