//! LL/SC/VL/swap/move from pointer-width CAS: the hardware memory.
//!
//! The paper's strong LL/SC is not what real machines offer, but it can be
//! *built* from single-word compare-and-swap the way Blelloch–Wei
//! (arXiv:1911.09671) build LL/SC from pointer-width CAS: publish values
//! indirectly through a version-tagged word, and let tag equality stand in
//! for link validity.
//!
//! Each register is one `AtomicU64` **tag** packing `version | slot`:
//!
//! * `slot` indexes a pool of `Mutex<Value>` cells holding the actual
//!   (unbounded, structured) register contents — the "pointer" half of a
//!   tagged pointer, realized as a pool index so the whole backend stays
//!   inside `#![forbid(unsafe_code)]`;
//! * `version` increments on every install, so a tag value can never
//!   recur (no ABA).
//!
//! The paper's semantics then fall out of tag arithmetic:
//!
//! * **LL(r)** — atomically read the tag, clone the slot it names, and
//!   cache `(tag, value)` locally as the link;
//! * **VL(r)** — the link is valid iff the current tag still equals the
//!   cached one (any successful SC/swap/move changed it);
//! * **SC(r, v)** — write `v` into a slot owned by the calling process,
//!   then `compare_exchange` the tag from the cached link to a fresh
//!   `(version+1, slot)`; the CAS is the linearization point, its success
//!   is exactly "no install since my LL", and the cached LL value is then
//!   the paper-mandated previous value;
//! * **swap / move** — unconditional installs: read-then-CAS retry loops.
//!
//! Torn reads are impossible (slot contents are mutex-guarded and a read
//! revalidates the tag after cloning), and a process alternates between
//! two private slots per register, so a slot named by the *current* tag is
//! never overwritten: an owner only rewrites a slot after an intervening
//! install of its other slot, which moved the tag — and versions never
//! repeat, so the tag cannot move back.

use crate::fault::HwFaultLayer;
use llsc_shmem::{
    dsm_cost, ExecutionBackend, FaultInjector, FaultPlan, FaultStats, OpKind, Operation, ProcessId,
    RegisterId, Response, TossAssignment, Value,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One timestamped record in the hardware backend's history. Stamps come
/// from the backend's global logical clock: a `fetch_add` total order
/// that respects real time, so sorting by `at` yields a valid
/// linearization order for the run's accesses — and interleaves the
/// fault and crash adversaries' deliveries with the operations they hit.
#[derive(Clone, Debug, PartialEq)]
pub struct HwEvent {
    /// Logical-clock stamp of the record.
    pub at: u64,
    /// The process the record belongs to (the performer of an operation,
    /// the victim of a fault or crash).
    pub pid: ProcessId,
    /// What happened.
    pub kind: HwEventKind,
}

impl HwEvent {
    /// `true` iff this record is a shared-memory operation (as opposed
    /// to an adversary delivery).
    pub fn is_op(&self) -> bool {
        matches!(self.kind, HwEventKind::Op { .. })
    }
}

/// What one [`HwEvent`] records: a shared-memory operation, a
/// memory-fault delivery, or a crash-adversary action on the owning
/// thread.
#[derive(Clone, Debug, PartialEq)]
pub enum HwEventKind {
    /// A shared-memory operation the process performed.
    Op {
        /// Which of the five operations ran.
        op: OpKind,
        /// The operation's target register (`dst` for moves).
        target: RegisterId,
        /// The response the process observed.
        response: Response,
    },
    /// The fault layer suppressed an SC whose link was still valid — the
    /// weak-LL/SC spurious failure. The suppressed operation itself is
    /// recorded as the next [`HwEventKind::Op`] with a failed response.
    SpuriousSc {
        /// The SC's target register.
        target: RegisterId,
    },
    /// The fault layer corrupted the register this process's next
    /// operation observes.
    Corruption {
        /// The corrupted register.
        target: RegisterId,
        /// Whether the corruption also invalidated every outstanding
        /// link (the hardware realization of the simulator's
        /// clear-`Pset` flag: a corrupted value is *installed*, moving
        /// the tag, instead of rewritten in place).
        cleared: bool,
    },
    /// The crash supervisor killed this process's thread at its crash
    /// step (panic-based teardown; links dropped).
    Killed {
        /// How many crashes this victim has now suffered, this one
        /// included.
        crashes: u64,
    },
    /// The crash supervisor respawned this process after its recovery
    /// delay.
    Respawned {
        /// Respawns left in the victim's re-crash budget after this one.
        respawns_left: u64,
    },
}

/// One register: the version-tagged word plus its slot pool.
#[derive(Debug)]
struct HwRegister {
    /// `version << slot_bits | slot`, the single CAS-able word.
    tag: AtomicU64,
    /// Install-version allocator; versions are unique per register.
    version: AtomicU64,
    /// Slot 0 holds the initial value; process `p` owns slots `1 + 2p`
    /// and `2 + 2p` and alternates between them.
    slots: Vec<Mutex<Value>>,
}

impl HwRegister {
    fn new(n: usize, initial: Value) -> HwRegister {
        let mut slots = Vec::with_capacity(2 * n + 1);
        slots.push(Mutex::new(initial));
        for _ in 0..2 * n {
            slots.push(Mutex::new(Value::Unit));
        }
        HwRegister {
            // Initial tag: version 0, slot 0.
            tag: AtomicU64::new(0),
            version: AtomicU64::new(0),
            slots,
        }
    }

    fn slot_of(&self, tag: u64, slot_mask: u64) -> usize {
        (tag & slot_mask) as usize
    }

    /// An atomic (tag, value) snapshot: clone the named slot, then check
    /// the tag did not move while we held the slot lock. A changed tag
    /// means the clone may belong to a newer install — retry.
    fn read(&self, slot_mask: u64) -> (u64, Value) {
        loop {
            let t1 = self.tag.load(Ordering::Acquire);
            let value = self.slots[self.slot_of(t1, slot_mask)]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            if self.tag.load(Ordering::Acquire) == t1 {
                return (t1, value);
            }
        }
    }
}

/// Per-process local state: the LL links (cached `(tag, value)` pairs)
/// and the slot-parity bit per register. Only the owning process's
/// thread touches its entry, so the mutex is uncontended.
#[derive(Debug, Default)]
struct LocalState {
    links: HashMap<RegisterId, (u64, Value)>,
    parity: HashMap<RegisterId, bool>,
}

/// The real-hardware [`ExecutionBackend`]: registers built from
/// `AtomicU64` CAS as described in the module docs, shared by one OS
/// thread per process (see [`crate::run_threads`]).
///
/// Unlike the simulator this backend is *not* deterministic — the OS
/// scheduler interleaves the threads — which is exactly what the
/// cross-validation harness wants to compare against simulator sweeps.
#[derive(Debug)]
pub struct HwMemory {
    n: usize,
    slot_bits: u32,
    slot_mask: u64,
    regs: RwLock<BTreeMap<RegisterId, Arc<HwRegister>>>,
    initial: BTreeMap<RegisterId, Value>,
    locals: Vec<Mutex<LocalState>>,
    accesses: Vec<AtomicU64>,
    dsm_rmrs: Vec<AtomicU64>,
    tosses: Vec<AtomicU64>,
    toss: Arc<dyn TossAssignment>,
    clock: AtomicU64,
    record: AtomicBool,
    events: Vec<Mutex<Vec<HwEvent>>>,
    faults: Option<HwFaultLayer>,
}

impl HwMemory {
    /// A hardware memory for `n` processes with every register initially
    /// `Value::Unit`, tosses answered by `toss` (indexed per process by
    /// call order, so seeded runs stay comparable across backends).
    pub fn new(n: usize, toss: Arc<dyn TossAssignment>) -> HwMemory {
        assert!(n >= 1, "at least one process");
        // Bits to address slots 0..=2n; versions take the remaining
        // (plentiful) high bits.
        let slot_bits = (u64::BITS - (2 * n as u64).leading_zeros()).max(1);
        HwMemory {
            n,
            slot_bits,
            slot_mask: (1u64 << slot_bits) - 1,
            regs: RwLock::new(BTreeMap::new()),
            initial: BTreeMap::new(),
            locals: (0..n).map(|_| Mutex::new(LocalState::default())).collect(),
            accesses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dsm_rmrs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tosses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            toss,
            clock: AtomicU64::new(0),
            record: AtomicBool::new(true),
            events: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            faults: None,
        }
    }

    /// Arms the memory-fault adversary: `plan`'s global-event thresholds
    /// are re-timed onto each process's private access clock (see
    /// [`crate::fault::split_plan`]), so the delivered fault stream is
    /// deterministic across thread interleavings. Stats are surfaced by
    /// [`HwMemory::fault_stats`] and every delivery is stamped into the
    /// [`HwEvent`] history.
    pub fn with_faults(mut self, plan: &FaultPlan) -> HwMemory {
        self.faults = Some(HwFaultLayer::new(plan, self.n));
        self
    }

    /// Arms an explicit per-process fault-plan assignment (thresholds
    /// already in per-process access time) — the targeted form the
    /// conformance tests use to aim a fault at a specific process.
    pub fn with_fault_assignments<I>(mut self, plans: I) -> HwMemory
    where
        I: IntoIterator<Item = FaultPlan>,
    {
        let layer = HwFaultLayer::from_assignments(plans);
        assert_eq!(
            layer.processes(),
            self.n,
            "one fault plan per process, in process order"
        );
        self.faults = Some(layer);
        self
    }

    /// Faults the armed adversary actually delivered so far (all zeros
    /// when no plan is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(HwFaultLayer::stats)
            .unwrap_or_default()
    }

    /// Sets the initial contents of registers (before first touch).
    pub fn with_initial<I>(mut self, initial: I) -> HwMemory
    where
        I: IntoIterator<Item = (RegisterId, Value)>,
    {
        assert!(
            self.regs
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "set initial values before any register is touched"
        );
        self.initial.extend(initial);
        self
    }

    /// A hardware memory seeded with `alg`'s initial layout for `n`
    /// processes.
    pub fn for_algorithm(
        alg: &dyn llsc_shmem::Algorithm,
        n: usize,
        toss: Arc<dyn TossAssignment>,
    ) -> HwMemory {
        HwMemory::new(n, toss).with_initial(alg.initial_memory(n))
    }

    /// Disables (or re-enables) per-operation history recording — the
    /// throughput benchmarks turn it off so the measured cost is the
    /// memory itself, not the log.
    pub fn set_recording(&self, on: bool) {
        self.record.store(on, Ordering::Relaxed);
    }

    /// Advances the global logical clock and returns the fresh stamp.
    /// The driver uses this to timestamp operation invocations and
    /// responses in the same total order as the memory accesses.
    pub fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// The global logical clock's current value, without advancing it.
    /// The crash supervisor polls this to realize recovery delays in
    /// logical time (clock ticks are memory activity by the surviving
    /// processes).
    pub fn clock_now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Drops `p`'s process-local memory state — its LL links. The crash
    /// supervisor calls this when it kills a victim thread, so the
    /// respawned incarnation starts with no reservations, exactly like
    /// the simulator's crash teardown. The slot-parity bits survive: they
    /// are an artifact of the memory's slot pool (resetting them could
    /// overwrite the currently published slot), not algorithm state.
    pub fn clear_local(&self, p: ProcessId) {
        self.local(p).links.clear();
    }

    /// Stamps `kind` into `p`'s history on the global logical clock.
    /// Used by the fault hooks below and by the crash supervisor for its
    /// kill/respawn records; respects the recording switch like every
    /// other history write.
    pub(crate) fn record_event(&self, p: ProcessId, kind: HwEventKind) {
        if self.record.load(Ordering::Relaxed) {
            let at = self.stamp();
            self.events[p.0]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(HwEvent { at, pid: p, kind });
        } else {
            self.stamp();
        }
    }

    /// Drains every process's recorded operation events, merged and
    /// sorted by clock stamp.
    pub fn take_events(&self) -> Vec<HwEvent> {
        let mut all = Vec::new();
        for per_process in &self.events {
            all.append(&mut per_process.lock().unwrap_or_else(|e| e.into_inner()));
        }
        all.sort_by_key(|e| e.at);
        all
    }

    fn reg(&self, r: RegisterId) -> Arc<HwRegister> {
        if let Some(reg) = self.regs.read().unwrap_or_else(|e| e.into_inner()).get(&r) {
            return reg.clone();
        }
        let mut regs = self.regs.write().unwrap_or_else(|e| e.into_inner());
        regs.entry(r)
            .or_insert_with(|| {
                let initial = self.initial.get(&r).cloned().unwrap_or_default();
                Arc::new(HwRegister::new(self.n, initial))
            })
            .clone()
    }

    fn local(&self, p: ProcessId) -> std::sync::MutexGuard<'_, LocalState> {
        self.locals[p.0].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn pack(&self, version: u64, slot: usize) -> u64 {
        (version << self.slot_bits) | slot as u64
    }

    /// The slot `p` installs into next on this register (alternating
    /// between its two private slots, so the currently published slot is
    /// never overwritten — see the module docs for why that is safe).
    fn next_own_slot(&self, p: ProcessId, r: RegisterId, local: &mut LocalState) -> usize {
        let flip = local.parity.entry(r).or_default();
        *flip = !*flip;
        1 + 2 * p.0 + usize::from(*flip)
    }

    /// Unconditional install (swap/move): read-then-CAS until it lands.
    /// Returns the value displaced by the install.
    fn install(&self, reg: &HwRegister, slot: usize, value: Value) -> Value {
        *reg.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = value;
        let version = reg.version.fetch_add(1, Ordering::Relaxed) + 1;
        let new_tag = self.pack(version, slot);
        loop {
            let (current, displaced) = reg.read(self.slot_mask);
            if reg
                .tag
                .compare_exchange(current, new_tag, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return displaced;
            }
        }
    }

    fn apply_inner(&self, p: ProcessId, op: &Operation) -> Response {
        match op {
            Operation::Ll(r) => {
                let reg = self.reg(*r);
                let (tag, value) = reg.read(self.slot_mask);
                self.local(p).links.insert(*r, (tag, value.clone()));
                Response::Value(value)
            }
            Operation::Validate(r) => {
                let reg = self.reg(*r);
                let (tag, value) = reg.read(self.slot_mask);
                let ok = self
                    .local(p)
                    .links
                    .get(r)
                    .is_some_and(|(link_tag, _)| *link_tag == tag);
                Response::Flagged { ok, value }
            }
            Operation::Sc(r, v) => {
                let reg = self.reg(*r);
                let link = {
                    let mut local = self.local(p);
                    local.links.remove(r)
                };
                let Some((link_tag, link_value)) = link else {
                    // Never linked: the SC fails, reporting the current
                    // value like the simulator's RegisterState does.
                    let (_, current) = reg.read(self.slot_mask);
                    return Response::Flagged {
                        ok: false,
                        value: current,
                    };
                };
                let slot = {
                    let mut local = self.local(p);
                    self.next_own_slot(p, *r, &mut local)
                };
                *reg.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = v.clone();
                let version = reg.version.fetch_add(1, Ordering::Relaxed) + 1;
                let new_tag = self.pack(version, slot);
                match reg.tag.compare_exchange(
                    link_tag,
                    new_tag,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    // Success means no install happened since the LL, so
                    // the linked value *is* the pre-SC value the paper's
                    // strong SC must report.
                    Ok(_) => Response::Flagged {
                        ok: true,
                        value: link_value,
                    },
                    Err(_) => {
                        let (_, current) = reg.read(self.slot_mask);
                        Response::Flagged {
                            ok: false,
                            value: current,
                        }
                    }
                }
            }
            Operation::Swap(r, v) => {
                let reg = self.reg(*r);
                let slot = {
                    let mut local = self.local(p);
                    self.next_own_slot(p, *r, &mut local)
                };
                let previous = self.install(&reg, slot, v.clone());
                Response::Value(previous)
            }
            Operation::Move { src, dst } => {
                let src_reg = self.reg(*src);
                let (_, moved) = src_reg.read(self.slot_mask);
                let dst_reg = self.reg(*dst);
                let slot = {
                    let mut local = self.local(p);
                    self.next_own_slot(p, *dst, &mut local)
                };
                self.install(&dst_reg, slot, moved);
                Response::Ack
            }
        }
    }

    /// Stamps one completed operation into the history (or just burns a
    /// clock tick when recording is off, keeping stamps dense either
    /// way).
    fn record_op(&self, p: ProcessId, op: &Operation, response: &Response) {
        if self.record.load(Ordering::Relaxed) {
            self.record_event(
                p,
                HwEventKind::Op {
                    op: op.kind(),
                    target: op.target(),
                    response: response.clone(),
                },
            );
        } else {
            self.stamp();
        }
    }

    /// Delivers one corruption to `r` on behalf of `p`'s fault injector.
    ///
    /// With `clear` set the corrupted value is *installed* through one
    /// of `p`'s own slots: the tag moves, so every outstanding link
    /// drops — the hardware realization of the simulator's clear-`Pset`
    /// flag. Without it the currently published slot is rewritten in
    /// place under tag validation: links stay valid but now vouch for a
    /// corrupted value, the sneakier of the two modes.
    fn inject_corruption(&self, p: ProcessId, r: RegisterId, clear: bool, inj: &mut FaultInjector) {
        let reg = self.reg(r);
        if clear {
            let (_, mut value) = reg.read(self.slot_mask);
            inj.corrupt_in_place(&mut value);
            let slot = {
                let mut local = self.local(p);
                self.next_own_slot(p, r, &mut local)
            };
            self.install(&reg, slot, value);
        } else {
            loop {
                let t1 = reg.tag.load(Ordering::Acquire);
                let mut slot = reg.slots[reg.slot_of(t1, self.slot_mask)]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if reg.tag.load(Ordering::Acquire) == t1 {
                    inj.corrupt_in_place(&mut slot);
                    return;
                }
            }
        }
    }

    /// The fault hooks of [`HwMemory::apply`]: due corruptions strike
    /// the register this operation is about to observe (the source of a
    /// move, the target of everything else — mirroring the simulator),
    /// then a due spurious entry suppresses an SC whose link is still
    /// valid (suppressing an already-failing SC would inject nothing).
    /// Returns the forced failure response when the SC was suppressed.
    fn apply_faulted(
        &self,
        faults: &HwFaultLayer,
        p: ProcessId,
        op: &Operation,
        ticks: u64,
    ) -> Option<Response> {
        let mut inj = faults.injector(p);
        while let Some(cleared) = inj.take_corruption(ticks) {
            let target = op.observed();
            self.inject_corruption(p, target, cleared, &mut inj);
            self.record_event(p, HwEventKind::Corruption { target, cleared });
        }
        let Operation::Sc(r, _) = op else { return None };
        if !inj.spurious_due(ticks) || !self.linked(p, *r) {
            return None;
        }
        inj.consume_spurious();
        drop(inj);
        // Drop only the caller's link, exactly like a lost reservation:
        // the register's value and every other process's link survive.
        self.local(p).links.remove(r);
        let (_, current) = self.reg(*r).read(self.slot_mask);
        let response = Response::Flagged {
            ok: false,
            value: current,
        };
        self.record_event(p, HwEventKind::SpuriousSc { target: *r });
        self.record_op(p, op, &response);
        Some(response)
    }
}

impl ExecutionBackend for HwMemory {
    fn backend_name(&self) -> &'static str {
        "atomic"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn apply(&self, p: ProcessId, op: &Operation) -> Response {
        // The previous count is `p`'s private logical clock — the
        // fault layer keys its thresholds on it, because it is the one
        // clock the OS scheduler cannot perturb (see `crate::fault`).
        let ticks = self.accesses[p.0].fetch_add(1, Ordering::Relaxed);
        // DSM remoteness is a pure function of (process, register, n) —
        // see `llsc_shmem::dsm_home` — so the hardware backend can bill
        // it locally per thread, with no cache state to share. The CC
        // model needs the coherence history and stays simulator-only.
        let dsm = dsm_cost(p, op, self.n);
        if dsm > 0 {
            self.dsm_rmrs[p.0].fetch_add(dsm, Ordering::Relaxed);
        }
        if let Some(faults) = &self.faults {
            if let Some(suppressed) = self.apply_faulted(faults, p, op, ticks) {
                return suppressed;
            }
        }
        let response = self.apply_inner(p, op);
        self.record_op(p, op, &response);
        response
    }

    fn toss(&self, p: ProcessId) -> u64 {
        let index = self.tosses[p.0].fetch_add(1, Ordering::Relaxed);
        self.toss.outcome(p, index)
    }

    fn shared_accesses(&self, p: ProcessId) -> u64 {
        self.accesses[p.0].load(Ordering::Relaxed)
    }

    fn dsm_rmrs(&self, p: ProcessId) -> u64 {
        self.dsm_rmrs[p.0].load(Ordering::Relaxed)
    }

    fn peek(&self, r: RegisterId) -> Value {
        self.reg(r).read(self.slot_mask).1
    }

    fn linked(&self, p: ProcessId, r: RegisterId) -> bool {
        let reg = self.reg(r);
        let current = reg.tag.load(Ordering::Acquire);
        self.local(p)
            .links
            .get(&r)
            .is_some_and(|(link_tag, _)| *link_tag == current)
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}
