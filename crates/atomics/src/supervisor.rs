//! The crash adversary on real threads: kill, respawn, escalate.
//!
//! The simulator's [`RecoveringCrashScheduler`] crashes a victim by
//! flipping a bookkeeping bit; here a crash is a real OS-thread death.
//! [`CrashSupervisor`] arms a [`CrashPlan`] for the thread-per-process
//! driver:
//!
//! * each victim's global-event crash threshold is re-timed onto its
//!   private step clock (`at / n`, the same convention as
//!   [`crate::fault::split_plan`]), so *when* a victim dies is
//!   deterministic across interleavings;
//! * the driver polls [`CrashSupervisor::tick`] once per action; a due
//!   crash unwinds the victim's thread via a typed panic
//!   ([`panic_any`] of an internal marker), which the driver catches,
//!   dropping the incarnation's entire local state (program, stack, LL
//!   links via [`HwMemory::clear_local`](crate::HwMemory::clear_local));
//! * after the recovery delay the driver asks
//!   [`CrashSupervisor::grant_respawn`]: within the
//!   [`RecoverySpec::budget`] the victim is re-spawned (and re-armed at
//!   `steps + period`, mirroring the simulator's re-crash cadence — the
//!   budget caps total crashes exactly like the simulator's
//!   `crashes_left`); a budget of 0 — unrepresentable in the simulator,
//!   which clamps to 1 — means *no respawn is possible*, so the first
//!   kill exhausts the loop and the supervisor escalates: the trial is
//!   aborted through the watchdog machinery and reported as the
//!   structured
//!   [`HwRunError::RespawnExhausted`](crate::HwRunError::RespawnExhausted).
//!
//! Kill and respawn are both stamped into the [`HwEvent`] history
//! ([`HwEventKind::Killed`] / [`HwEventKind::Respawned`]), so a crashed
//! trial's timeline is auditable after the fact.
//!
//! [`RecoveringCrashScheduler`]: llsc_shmem::RecoveringCrashScheduler
//! [`HwEvent`]: crate::HwEvent
//! [`HwEventKind::Killed`]: crate::HwEventKind::Killed
//! [`HwEventKind::Respawned`]: crate::HwEventKind::Respawned

use llsc_shmem::{CrashPlan, ProcessId, RecoverySpec};
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};

/// The typed panic payload of an injected crash, so the driver can tell
/// a supervisor kill from a genuine algorithm panic at `catch_unwind`.
pub(crate) struct InjectedCrash;

/// Suppresses the default panic hook's backtrace chatter for injected
/// crashes only — a supervised E20 sweep kills threads by the hundreds,
/// and each would otherwise print a spurious "thread panicked" report.
/// Genuine panics still reach the previous hook untouched.
fn silence_injected_crashes() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Per-victim crash state, touched only by the victim's own thread (the
/// mutex keeps the supervisor `Sync` inside `#![forbid(unsafe_code)]`).
#[derive(Debug)]
struct VictimState {
    /// Actions this victim has taken, across all incarnations.
    steps: u64,
    /// The step count the next crash fires at; `None` while disarmed
    /// (mid-teardown, or the budget's crash allowance is spent).
    next_at: Option<u64>,
    /// Re-arm distance after a respawn (the victim's own rescaled
    /// threshold, clamped to 1 — mirroring the simulator's period).
    period: u64,
    /// Crashes delivered to this victim so far.
    crashes: u64,
}

/// Drives a [`CrashPlan`] + [`RecoverySpec`] against the
/// thread-per-process driver — see the module docs for the lifecycle.
#[derive(Debug)]
pub struct CrashSupervisor {
    /// Indexed by process id; `None` for non-victims.
    victims: Vec<Option<Mutex<VictimState>>>,
    recovery: RecoverySpec,
    crashes: AtomicU64,
    respawns: AtomicU64,
}

impl CrashSupervisor {
    /// Arms `plan` for `n` processes under `recovery`. Each victim's
    /// global-event threshold `at` becomes the per-process step
    /// threshold `at / n` (its expected share of a fair interleaving).
    pub fn new(plan: &CrashPlan, recovery: RecoverySpec, n: usize) -> CrashSupervisor {
        silence_injected_crashes();
        let mut victims: Vec<Option<Mutex<VictimState>>> = (0..n).map(|_| None).collect();
        for &(pid, at) in plan.crashes() {
            assert!(pid.0 < n, "crash plan names {pid} but the run has n={n}");
            let threshold = at / n as u64;
            victims[pid.0] = Some(Mutex::new(VictimState {
                steps: 0,
                next_at: Some(threshold),
                period: threshold.max(1),
                crashes: 0,
            }));
        }
        CrashSupervisor {
            victims,
            recovery,
            crashes: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
        }
    }

    /// `true` iff the plan schedules a crash for `p`.
    pub fn is_victim(&self, p: ProcessId) -> bool {
        self.victims.get(p.0).is_some_and(Option::is_some)
    }

    /// The recovery regime this supervisor enforces.
    pub fn recovery(&self) -> RecoverySpec {
        self.recovery
    }

    /// Total crashes delivered across all victims.
    pub fn crashes_delivered(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Total respawns granted across all victims.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Called by the drive loop before each of `p`'s actions. Returns
    /// `true` when the victim must crash *now* — the caller unwinds via
    /// [`CrashSupervisor::crash_now`]. Otherwise the action is counted
    /// against the victim's step clock.
    pub(crate) fn tick(&self, p: ProcessId) -> bool {
        let Some(victim) = self.victims.get(p.0).and_then(Option::as_ref) else {
            return false;
        };
        let mut state = victim.lock().unwrap_or_else(|e| e.into_inner());
        if state.next_at.is_some_and(|at| state.steps >= at) {
            state.next_at = None;
            state.crashes += 1;
            self.crashes.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        state.steps += 1;
        false
    }

    /// Unwinds the calling (victim) thread with the typed crash payload.
    pub(crate) fn crash_now() -> ! {
        panic_any(InjectedCrash)
    }

    /// Crashes delivered to `p` so far (0 for non-victims).
    pub(crate) fn crashes_of(&self, p: ProcessId) -> u64 {
        self.victims
            .get(p.0)
            .and_then(Option::as_ref)
            .map(|v| v.lock().unwrap_or_else(|e| e.into_inner()).crashes)
            .unwrap_or(0)
    }

    /// Decides a killed victim's fate: `Some(respawns_left)` grants the
    /// respawn (re-arming the next crash while the budget's crash
    /// allowance lasts), `None` declares the respawn loop exhausted —
    /// the caller escalates.
    pub(crate) fn grant_respawn(&self, p: ProcessId) -> Option<u64> {
        let victim = self.victims.get(p.0).and_then(Option::as_ref)?;
        let mut state = victim.lock().unwrap_or_else(|e| e.into_inner());
        if state.crashes > self.recovery.budget {
            // Budget 0: the first kill already overruns the allowance.
            return None;
        }
        self.respawns.fetch_add(1, Ordering::Relaxed);
        if state.crashes < self.recovery.budget {
            state.next_at = Some(state.steps + state.period);
        }
        Some(self.recovery.budget - state.crashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(delay: u64, budget: u64) -> RecoverySpec {
        RecoverySpec { delay, budget }
    }

    #[test]
    fn non_victims_never_tick_into_a_crash() {
        let plan = CrashPlan::at([(ProcessId(1), 8)]);
        let sup = CrashSupervisor::new(&plan, spec(2, 1), 4);
        assert!(sup.is_victim(ProcessId(1)));
        assert!(!sup.is_victim(ProcessId(0)));
        for _ in 0..100 {
            assert!(!sup.tick(ProcessId(0)));
        }
        assert_eq!(sup.crashes_delivered(), 0);
    }

    #[test]
    fn victim_crashes_at_its_rescaled_threshold_and_rearms_within_budget() {
        // Global threshold 8 over n=4 → per-process step 2.
        let plan = CrashPlan::at([(ProcessId(0), 8)]);
        let sup = CrashSupervisor::new(&plan, spec(1, 2), 4);
        let p = ProcessId(0);
        assert!(!sup.tick(p), "step 0");
        assert!(!sup.tick(p), "step 1");
        assert!(sup.tick(p), "crash at step 2");
        assert_eq!(sup.crashes_of(p), 1);
        // First respawn: one crash left in the budget, re-armed.
        assert_eq!(sup.grant_respawn(p), Some(1));
        assert!(!sup.tick(p), "step 2 after respawn");
        assert!(!sup.tick(p), "step 3 after respawn");
        assert!(sup.tick(p), "re-armed at steps + period = 2 + 2");
        assert_eq!(sup.crashes_of(p), 2);
        // Budget spent: respawn granted, but no further crash is armed.
        assert_eq!(sup.grant_respawn(p), Some(0));
        for _ in 0..50 {
            assert!(!sup.tick(p), "budget caps total crashes like the sim");
        }
        assert_eq!(sup.crashes_delivered(), 2);
        assert_eq!(sup.respawns(), 2);
    }

    #[test]
    fn zero_budget_exhausts_on_the_first_kill() {
        let plan = CrashPlan::at([(ProcessId(2), 0)]);
        let sup = CrashSupervisor::new(&plan, spec(3, 0), 3);
        let p = ProcessId(2);
        assert!(sup.tick(p), "threshold 0 crashes before the first action");
        assert_eq!(sup.grant_respawn(p), None, "no respawn allowance at all");
        assert_eq!(sup.crashes_delivered(), 1);
        assert_eq!(sup.respawns(), 0);
    }
}
