//! Backend conformance suite: the paper's LL/SC/VL/swap/move semantics,
//! checked against *both* [`ExecutionBackend`] implementations — the
//! deterministic simulator (`SimBackend`) and the CAS-based hardware
//! memory (`HwMemory`). Each property test runs over every backend a
//! factory yields, so a divergence names the backend that broke it.

use llsc_atomics::{run_threads, HwMemory};
use llsc_shmem::{
    dsl, ConstantTosses, ExecutionBackend, FaultPlan, FnAlgorithm, Operation, ProcessId,
    RegisterId, Response, SeededTosses, SimBackend, TossAssignment, Value, ZeroTosses,
};
use std::sync::Arc;

const R: RegisterId = RegisterId(0);

fn p(i: usize) -> ProcessId {
    ProcessId(i)
}

fn both(n: usize) -> Vec<Box<dyn ExecutionBackend>> {
    let toss: Arc<dyn TossAssignment> = Arc::new(ZeroTosses);
    vec![
        Box::new(SimBackend::new(n, toss.clone())),
        Box::new(HwMemory::new(n, toss)),
    ]
}

fn ll(b: &dyn ExecutionBackend, pid: usize) -> Value {
    match b.apply(p(pid), &Operation::Ll(R)) {
        Response::Value(v) => v,
        other => panic!("[{}] LL returned {other:?}", b.backend_name()),
    }
}

fn sc(b: &dyn ExecutionBackend, pid: usize, v: i64) -> (bool, Value) {
    match b.apply(p(pid), &Operation::Sc(R, Value::from(v))) {
        Response::Flagged { ok, value } => (ok, value),
        other => panic!("[{}] SC returned {other:?}", b.backend_name()),
    }
}

fn vl(b: &dyn ExecutionBackend, pid: usize) -> (bool, Value) {
    match b.apply(p(pid), &Operation::Validate(R)) {
        Response::Flagged { ok, value } => (ok, value),
        other => panic!("[{}] validate returned {other:?}", b.backend_name()),
    }
}

#[test]
fn ll_sees_initial_value_and_sc_installs() {
    for b in both(2) {
        let name = b.backend_name();
        assert_eq!(ll(b.as_ref(), 0), Value::Unit, "[{name}] initial LL");
        let (ok, prev) = sc(b.as_ref(), 0, 7);
        assert!(ok, "[{name}] SC after own LL must succeed");
        assert_eq!(
            prev,
            Value::Unit,
            "[{name}] strong SC reports pre-write value"
        );
        assert_eq!(b.peek(R), Value::from(7i64), "[{name}] SC installed");
    }
}

#[test]
fn sc_without_ll_fails_with_current_value() {
    for b in both(2) {
        let name = b.backend_name();
        let (ok, current) = sc(b.as_ref(), 0, 3);
        assert!(!ok, "[{name}] SC with no link must fail");
        assert_eq!(
            current,
            Value::Unit,
            "[{name}] failed SC reports current value"
        );
        assert_eq!(b.peek(R), Value::Unit, "[{name}] failed SC writes nothing");
    }
}

#[test]
fn sc_after_conflicting_sc_fails() {
    for b in both(2) {
        let name = b.backend_name();
        ll(b.as_ref(), 0);
        ll(b.as_ref(), 1);
        let (ok, _) = sc(b.as_ref(), 1, 10);
        assert!(ok, "[{name}] first SC wins");
        let (ok, current) = sc(b.as_ref(), 0, 20);
        assert!(!ok, "[{name}] SC after conflicting SC must fail");
        assert_eq!(
            current,
            Value::from(10i64),
            "[{name}] failed SC reports the winner's value"
        );
        assert_eq!(
            b.peek(R),
            Value::from(10i64),
            "[{name}] loser wrote nothing"
        );
    }
}

#[test]
fn validate_tracks_link_validity() {
    for b in both(2) {
        let name = b.backend_name();
        // Unlinked: invalid.
        let (ok, _) = vl(b.as_ref(), 0);
        assert!(!ok, "[{name}] validate without LL is invalid");
        // Linked, no intervening write: valid, and non-destructive.
        ll(b.as_ref(), 0);
        let (ok, value) = vl(b.as_ref(), 0);
        assert!(ok, "[{name}] validate after own LL");
        assert_eq!(
            value,
            Value::Unit,
            "[{name}] validate reports current value"
        );
        let (ok, _) = vl(b.as_ref(), 0);
        assert!(ok, "[{name}] validate does not consume the link");
        // A conflicting SC invalidates, and validate sees the new value.
        ll(b.as_ref(), 1);
        let (ok, _) = sc(b.as_ref(), 1, 5);
        assert!(ok, "[{name}] conflicting SC");
        let (ok, value) = vl(b.as_ref(), 0);
        assert!(!ok, "[{name}] validate after conflicting SC is invalid");
        assert_eq!(
            value,
            Value::from(5i64),
            "[{name}] validate reports new value"
        );
        // ... and the stale link cannot SC.
        let (ok, _) = sc(b.as_ref(), 0, 6);
        assert!(!ok, "[{name}] stale link cannot SC");
    }
}

#[test]
fn swap_returns_previous_and_breaks_links() {
    for b in both(2) {
        let name = b.backend_name();
        ll(b.as_ref(), 0);
        let prev = match b.apply(p(1), &Operation::Swap(R, Value::from(9i64))) {
            Response::Value(v) => v,
            other => panic!("[{name}] swap returned {other:?}"),
        };
        assert_eq!(prev, Value::Unit, "[{name}] swap reports previous value");
        assert_eq!(b.peek(R), Value::from(9i64), "[{name}] swap installs");
        let (ok, _) = vl(b.as_ref(), 0);
        assert!(!ok, "[{name}] swap invalidates every link");
    }
}

#[test]
fn move_copies_src_to_dst_and_breaks_dst_links() {
    let src = RegisterId(1);
    for b in both(2) {
        let name = b.backend_name();
        // Seed src with a value via swap; link process 0 on dst (= R).
        b.apply(p(0), &Operation::Swap(src, Value::from(42i64)));
        ll(b.as_ref(), 0);
        match b.apply(p(1), &Operation::Move { src, dst: R }) {
            Response::Ack => {}
            other => panic!("[{name}] move returned {other:?}"),
        }
        assert_eq!(
            b.peek(R),
            Value::from(42i64),
            "[{name}] move copied src to dst"
        );
        assert_eq!(
            b.peek(src),
            Value::from(42i64),
            "[{name}] move leaves src alone"
        );
        let (ok, _) = vl(b.as_ref(), 0);
        assert!(!ok, "[{name}] move invalidates dst links");
    }
}

#[test]
fn toss_is_deterministic_in_sim_mode_and_indexed_per_process() {
    let seed = 0xC0FFEE;
    let sim_a = SimBackend::new(3, Arc::new(SeededTosses::new(seed)));
    let sim_b = SimBackend::new(3, Arc::new(SeededTosses::new(seed)));
    assert!(sim_a.is_deterministic());
    let reference = SeededTosses::new(seed);
    for pid in 0..3 {
        for index in 0..8u64 {
            let a = sim_a.toss(p(pid));
            assert_eq!(a, sim_b.toss(p(pid)), "same seed, same toss stream");
            assert_eq!(a, reference.outcome(p(pid), index), "per-process indexing");
        }
    }
    // The hardware backend answers from the same assignment (so seeded
    // runs stay comparable) but advertises nondeterministic execution.
    let hw = HwMemory::new(3, Arc::new(SeededTosses::new(seed)));
    assert!(!hw.is_deterministic());
    for pid in 0..3 {
        for index in 0..8u64 {
            assert_eq!(hw.toss(p(pid)), reference.outcome(p(pid), index));
        }
    }
}

#[test]
fn initial_memory_and_constant_tosses_flow_through() {
    let toss: Arc<dyn TossAssignment> = Arc::new(ConstantTosses(3));
    let initial = vec![(RegisterId(4), Value::from(11i64))];
    let sim = SimBackend::new(2, toss.clone());
    let hw = HwMemory::new(2, toss).with_initial(initial);
    assert_eq!(hw.peek(RegisterId(4)), Value::from(11i64));
    assert_eq!(hw.toss(p(0)), 3);
    assert_eq!(sim.toss(p(0)), 3);
    // Registers outside the initial layout start at Unit on both.
    assert_eq!(sim.peek(RegisterId(4)), Value::Unit);
    assert_eq!(hw.peek(RegisterId(5)), Value::Unit);
}

/// ProcMask round-trip through the trait beyond one mask word: with
/// n = 130 processes every LL must register as linked (`linked(p, r)`
/// reads the Pset through the backend), and a single successful SC must
/// clear all 130 at once. On the simulator side this exercises the
/// multi-word ProcMask spill; on hardware, tag-equality as the implicit
/// Pset.
#[test]
fn pset_roundtrip_at_n_beyond_mask_word() {
    let n = 130;
    for b in both(n) {
        let name = b.backend_name();
        for pid in 0..n {
            assert!(!b.linked(p(pid), R), "[{name}] nobody linked before LL");
        }
        for pid in 0..n {
            ll(b.as_ref(), pid);
        }
        for pid in 0..n {
            assert!(b.linked(p(pid), R), "[{name}] p{pid} linked after LL");
        }
        let (ok, _) = sc(b.as_ref(), 129, 1);
        assert!(ok, "[{name}] SC by p129 succeeds");
        for pid in 0..n {
            assert!(
                !b.linked(p(pid), R),
                "[{name}] p{pid} unlinked after conflicting SC"
            );
        }
        assert_eq!(
            b.shared_accesses(p(129)),
            2,
            "[{name}] access counter: one LL + one SC"
        );
        assert_eq!(
            b.shared_accesses(p(0)),
            1,
            "[{name}] access counter: one LL"
        );
    }
}

/// The classic LL/SC counter under genuine multi-thread contention: n
/// threads each retry LL;SC(+1) until they land `rounds` increments.
/// Every SC success is an atomic increment, so the final value must be
/// exactly `n * rounds` — lost updates would betray a broken SC.
#[test]
fn hardware_llsc_counter_loses_no_updates() {
    let n = 4;
    let rounds = 200i64;
    let counter = FnAlgorithm::new("llsc-counter", move |_pid, _n| {
        fn attempt(left: i64) -> dsl::Step {
            if left == 0 {
                return dsl::done(Value::Unit);
            }
            dsl::ll(R, move |v| {
                let next = v.as_int().unwrap_or(0) + 1;
                dsl::sc(R, Value::from(next), move |ok, _| {
                    attempt(if ok { left - 1 } else { left })
                })
            })
        }
        attempt(rounds).into_program()
    });
    let mem = HwMemory::for_algorithm(&counter, n, Arc::new(ZeroTosses));
    mem.set_recording(false);
    let run = run_threads(&counter, &mem, 10_000_000).expect("counter terminates");
    assert_eq!(
        mem.peek(R),
        Value::from(n as i64 * rounds),
        "no increment may be lost"
    );
    assert!(
        run.max_ops() >= 2 * rounds as u64,
        "at least LL+SC per round"
    );
    for r in &run.results {
        assert!(r.first_step_at.is_some());
        assert!(r.invoked_at < r.responded_at, "clock stamps are ordered");
    }
}

/// A spurious SC failure behaves exactly like a lost reservation, even
/// past one ProcMask word: with n = 130 every process links, the
/// targeted process's SC is suppressed (fails, writes nothing, drops
/// only its own link — the other 129 links survive the spill word), and
/// the consumed entry lets the retried SC through.
#[test]
fn spurious_sc_beyond_mask_word_drops_only_the_victims_link() {
    let n = 130;
    let victim = 129;
    let mem = HwMemory::new(n, Arc::new(ZeroTosses)).with_fault_assignments((0..n).map(|i| {
        if i == victim {
            FaultPlan::at([0], [], 1)
        } else {
            FaultPlan::none()
        }
    }));
    for pid in 0..n {
        ll(&mem, pid);
    }
    let (ok, current) = sc(&mem, victim, 7);
    assert!(!ok, "the armed entry suppresses the SC");
    assert_eq!(
        current,
        Value::Unit,
        "a suppressed SC reports the current value"
    );
    assert_eq!(mem.peek(R), Value::Unit, "a suppressed SC writes nothing");
    assert_eq!(mem.fault_stats().spurious_sc, 1, "one delivery recorded");
    assert!(
        !mem.linked(p(victim), R),
        "the victim's own link is consumed"
    );
    for pid in 0..victim {
        assert!(
            mem.linked(p(pid), R),
            "p{pid}'s link survives a peer's spurious failure"
        );
    }
    // The entry is spent: the retried LL;SC goes through and clears the
    // whole 130-process Pset.
    ll(&mem, victim);
    let (ok, _) = sc(&mem, victim, 7);
    assert!(ok, "the retry after the consumed entry succeeds");
    assert_eq!(mem.peek(R), Value::from(7i64));
    for pid in 0..n {
        assert!(!mem.linked(p(pid), R), "p{pid} unlinked by the real SC");
    }
}

/// Injected corruption mutates the stored value *within its type* (an
/// Int stays an Int, a Bool flips), in both delivery modes: the
/// in-place rewrite leaves outstanding links valid (they now vouch for
/// a corrupted value), the clearing install moves the tag and drops
/// them.
#[test]
fn corruption_preserves_value_type_in_both_modes() {
    let int_r = RegisterId(0);
    let bool_r = RegisterId(1);
    let mem = HwMemory::new(2, Arc::new(ZeroTosses)).with_fault_assignments([
        FaultPlan::at([], [(0, false), (1, true)], 9),
        FaultPlan::none(),
    ]);
    mem.apply(p(1), &Operation::Swap(int_r, Value::from(42i64)));
    mem.apply(p(1), &Operation::Swap(bool_r, Value::Bool(true)));
    mem.apply(p(1), &Operation::Ll(int_r));
    mem.apply(p(1), &Operation::Ll(bool_r));
    // p0's first access observes int_r: the non-clearing entry rewrites
    // the published slot in place.
    let observed = match mem.apply(p(0), &Operation::Ll(int_r)) {
        Response::Value(v) => v,
        other => panic!("LL returned {other:?}"),
    };
    assert!(
        matches!(observed, Value::Int(_)),
        "corruption keeps the Int type, got {observed:?}"
    );
    assert_ne!(observed, Value::from(42i64), "the value did change");
    assert_eq!(mem.peek(int_r), observed, "rewritten in place, no install");
    assert!(
        mem.linked(p(1), int_r),
        "in-place corruption leaves links valid (vouching for a corrupted value)"
    );
    // p0's second access observes bool_r: the clearing entry installs
    // the corrupted value, so the tag moves and p1's link drops.
    mem.apply(p(0), &Operation::Validate(bool_r));
    assert_eq!(
        mem.peek(bool_r),
        Value::Bool(false),
        "a corrupted Bool is the flipped Bool"
    );
    assert!(
        !mem.linked(p(1), bool_r),
        "the clearing mode invalidates outstanding links"
    );
    assert_eq!(mem.fault_stats().corruptions, 2);
}

/// The delivered fault stream is a pure function of `(algorithm, plan,
/// n)`: two multi-threaded runs of a contention-free program (each
/// process owns its register, so its operation sequence cannot depend
/// on the OS interleaving) deliver byte-identical per-process fault
/// histories, final register values included — the property `split_plan`
/// exists to provide.
#[test]
fn fault_delivery_is_seed_deterministic_across_interleavings() {
    let n = 4;
    let rounds = 10i64;
    let own_counter = FnAlgorithm::new("own-register-counter", move |pid, _n| {
        let own = RegisterId(pid.0 as u64);
        fn attempt(own: RegisterId, left: i64) -> dsl::Step {
            if left == 0 {
                return dsl::done(Value::Unit);
            }
            dsl::ll(own, move |v| {
                let next = v.as_int().unwrap_or(0) + 1;
                dsl::sc(own, Value::from(next), move |ok, _| {
                    attempt(own, if ok { left - 1 } else { left })
                })
            })
        }
        attempt(own, rounds).into_program()
    });
    let plan = FaultPlan::seeded(0xE20, 8, 4, 200);
    let run_once = || {
        let mem = HwMemory::for_algorithm(&own_counter, n, Arc::new(ZeroTosses)).with_faults(&plan);
        run_threads(&own_counter, &mem, 100_000).expect("terminates");
        let stats = mem.fault_stats();
        // Per-process (kind, payload) subsequences — the global stamps
        // are a race outcome, the per-process streams must not be.
        let events = mem.take_events();
        let per_process: Vec<Vec<String>> = (0..n)
            .map(|pid| {
                events
                    .iter()
                    .filter(|e| e.pid == p(pid))
                    .map(|e| format!("{:?}", e.kind))
                    .collect()
            })
            .collect();
        let finals: Vec<Value> = (0..n).map(|pid| mem.peek(RegisterId(pid as u64))).collect();
        (stats, per_process, finals)
    };
    let (stats_a, events_a, finals_a) = run_once();
    let (stats_b, events_b, finals_b) = run_once();
    assert!(stats_a.total() > 0, "the plan must actually deliver faults");
    assert_eq!(stats_a, stats_b, "same deliveries in both runs");
    assert_eq!(finals_a, finals_b, "same final registers in both runs");
    for pid in 0..n {
        assert_eq!(
            events_a[pid], events_b[pid],
            "p{pid}'s event stream must not depend on the interleaving"
        );
    }
}

/// The recorded hardware history is stamped in a total order consistent
/// with per-process program order.
#[test]
fn hardware_history_stamps_respect_program_order() {
    let alg = FnAlgorithm::new("two-steps", |_pid, _n| {
        dsl::ll(R, |_| {
            dsl::sc(R, Value::from(1i64), |_, _| dsl::done(Value::Unit))
        })
        .into_program()
    });
    let mem = HwMemory::for_algorithm(&alg, 3, Arc::new(ZeroTosses));
    run_threads(&alg, &mem, 1000).expect("terminates");
    let events = mem.take_events();
    assert_eq!(events.len(), 6, "three processes, two accesses each");
    assert!(
        events.windows(2).all(|w| w[0].at < w[1].at),
        "stamps unique & sorted"
    );
    for pid in 0..3 {
        let mine: Vec<_> = events.iter().filter(|e| e.pid == p(pid)).collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].at < mine[1].at, "program order preserved");
    }
}
