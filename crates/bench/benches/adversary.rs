//! Wall-clock benchmarks for the Section-5 machinery: building
//! `(All, A)`-runs (the five-phase adversary plus `UP` tracking) and
//! `(S, A)`-runs, across wakeup algorithms and system sizes.

use llsc_bench::harness::time_case;
use llsc_core::{build_all_run, build_s_run, AdversaryConfig, ProcSet};
use llsc_shmem::{ProcessId, ZeroTosses};
use llsc_wakeup::{CounterWakeup, TournamentWakeup};
use std::sync::Arc;

fn main() {
    let cfg = AdversaryConfig::default();
    for n in [16usize, 64, 256] {
        time_case(&format!("build_all_run/counter/{n}"), 10, || {
            build_all_run(&CounterWakeup, n, Arc::new(ZeroTosses), &cfg)
        });
        time_case(&format!("build_all_run/tournament/{n}"), 10, || {
            build_all_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &cfg)
        });
    }
    for n in [16usize, 64] {
        let all = build_all_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &cfg)
            .expect("the tournament adversary run stays within the default budgets");
        let s: ProcSet = (0..n / 2).map(ProcessId).collect();
        time_case(&format!("build_s_run/{n}"), 10, || {
            build_s_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &s, &all, &cfg)
        });
    }
}
