//! Wall-clock benchmarks for the Section-5 machinery: building
//! `(All, A)`-runs (the five-phase adversary plus `UP` tracking) and
//! `(S, A)`-runs, across wakeup algorithms and system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llsc_core::{build_all_run, build_s_run, AdversaryConfig, ProcSet};
use llsc_shmem::{ProcessId, ZeroTosses};
use llsc_wakeup::{CounterWakeup, TournamentWakeup};
use std::sync::Arc;

fn bench_all_run(c: &mut Criterion) {
    let cfg = AdversaryConfig::default();
    let mut group = c.benchmark_group("build_all_run");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("counter", n), &n, |b, &n| {
            b.iter(|| build_all_run(&CounterWakeup, n, Arc::new(ZeroTosses), &cfg));
        });
        group.bench_with_input(BenchmarkId::new("tournament", n), &n, |b, &n| {
            b.iter(|| build_all_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &cfg));
        });
    }
    group.finish();
}

fn bench_s_run(c: &mut Criterion) {
    let cfg = AdversaryConfig::default();
    let mut group = c.benchmark_group("build_s_run");
    group.sample_size(10);
    for n in [16usize, 64] {
        let all = build_all_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &cfg);
        let s: ProcSet = (0..n / 2).map(ProcessId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                build_s_run(&TournamentWakeup, n, Arc::new(ZeroTosses), &s, &all, &cfg)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_run, bench_s_run);
criterion_main!(benches);
