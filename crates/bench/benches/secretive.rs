//! Wall-clock benchmarks for the Section-4 machinery: constructing
//! secretive complete schedules (Lemma 4.1) and evaluating source/movers
//! flows. Complements experiment E1, which checks correctness; this
//! measures the cost of the constructive algorithm itself.

use llsc_bench::harness::time_case;
use llsc_core::{movers, random_move_config, secretive_complete_schedule};

fn main() {
    for n in [16usize, 64, 256, 1024] {
        let cfg = random_move_config(n, (n as u64 / 2).max(2), 7);
        time_case(&format!("secretive_complete_schedule/{n}"), 20, || {
            secretive_complete_schedule(std::hint::black_box(&cfg))
        });
    }
    for n in [64usize, 1024] {
        let cfg = random_move_config(n, (n as u64 / 2).max(2), 11);
        let sigma = secretive_complete_schedule(&cfg);
        let dests: Vec<_> = cfg.destinations().into_iter().collect();
        time_case(&format!("movers_flow_evaluation/{n}"), 20, || {
            for &r in &dests {
                std::hint::black_box(movers(r, &sigma, &cfg));
            }
        });
    }
}
