//! Wall-clock benchmarks for the Section-4 machinery: constructing
//! secretive complete schedules (Lemma 4.1) and evaluating source/movers
//! flows. Complements experiment E1, which checks correctness; this
//! measures the cost of the constructive algorithm itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llsc_bench::random_move_config;
use llsc_core::{movers, secretive_complete_schedule};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("secretive_complete_schedule");
    group.sample_size(20);
    for n in [16usize, 64, 256, 1024] {
        let cfg = random_move_config(n, (n as u64 / 2).max(2), 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| secretive_complete_schedule(std::hint::black_box(cfg)));
        });
    }
    group.finish();
}

fn bench_movers_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("movers_flow_evaluation");
    group.sample_size(20);
    for n in [64usize, 1024] {
        let cfg = random_move_config(n, (n as u64 / 2).max(2), 11);
        let sigma = secretive_complete_schedule(&cfg);
        let dests: Vec<_> = cfg.destinations().into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for &r in &dests {
                    std::hint::black_box(movers(r, &sigma, &cfg));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_movers_evaluation);
criterion_main!(benches);
