//! Wall-clock benchmarks for the universal constructions: one full
//! `n`-process single-use execution per iteration, under the Figure-2
//! adversary. The interesting output is in the `table_e8` binary (shared
//! ops per operation); this tracks simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llsc_objects::FetchIncrement;
use llsc_universal::{
    measure, AdtTreeUniversal, DirectLlSc, HerlihyUniversal, MeasureConfig, ScheduleKind,
};
use std::sync::Arc;

fn bench_constructions(c: &mut Criterion) {
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    let mut group = c.benchmark_group("construction_full_run");
    group.sample_size(10);
    for n in [16usize, 64] {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        group.bench_with_input(BenchmarkId::new("adt-tree", n), &n, |b, &n| {
            let imp = AdtTreeUniversal::new(spec.clone());
            b.iter(|| measure(&imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg));
        });
        group.bench_with_input(BenchmarkId::new("herlihy", n), &n, |b, &n| {
            let imp = HerlihyUniversal::new(spec.clone());
            b.iter(|| measure(&imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg));
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            let imp = DirectLlSc::new(spec.clone());
            b.iter(|| measure(&imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg));
        });
    }
    group.finish();
}

fn bench_linearizability_check(c: &mut Criterion) {
    let cfg = MeasureConfig::default();
    let mut group = c.benchmark_group("measure_with_linearizability");
    group.sample_size(10);
    let n = 12;
    let spec = Arc::new(FetchIncrement::new(32));
    let ops = vec![FetchIncrement::op(); n];
    group.bench_function(BenchmarkId::new("adt-tree+lincheck", n), |b| {
        let imp = AdtTreeUniversal::new(spec.clone());
        b.iter(|| measure(&imp, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg));
    });
    group.finish();
}

criterion_group!(benches, bench_constructions, bench_linearizability_check);
criterion_main!(benches);
