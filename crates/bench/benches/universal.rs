//! Wall-clock benchmarks for the universal constructions: one full
//! `n`-process single-use execution per iteration, under the Figure-2
//! adversary. The interesting output is in the `table_e8` binary (shared
//! ops per operation); this tracks simulator throughput.

use llsc_bench::harness::time_case;
use llsc_objects::FetchIncrement;
use llsc_universal::{
    measure, AdtTreeUniversal, DirectLlSc, HerlihyUniversal, MeasureConfig, ScheduleKind,
};
use std::sync::Arc;

fn main() {
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    for n in [16usize, 64] {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let adt = AdtTreeUniversal::new(spec.clone());
        time_case(&format!("construction_full_run/adt-tree/{n}"), 10, || {
            measure(&adt, spec.as_ref(), n, &ops, ScheduleKind::Adversary, &cfg)
        });
        let herlihy = HerlihyUniversal::new(spec.clone());
        time_case(&format!("construction_full_run/herlihy/{n}"), 10, || {
            measure(
                &herlihy,
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::Adversary,
                &cfg,
            )
        });
        let direct = DirectLlSc::new(spec.clone());
        time_case(&format!("construction_full_run/direct/{n}"), 10, || {
            measure(
                &direct,
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::Adversary,
                &cfg,
            )
        });
    }

    let lincheck_cfg = MeasureConfig::default();
    let n = 12;
    let spec = Arc::new(FetchIncrement::new(32));
    let ops = vec![FetchIncrement::op(); n];
    let adt = AdtTreeUniversal::new(spec.clone());
    time_case(
        "measure_with_linearizability/adt-tree+lincheck/12",
        10,
        || {
            measure(
                &adt,
                spec.as_ref(),
                n,
                &ops,
                ScheduleKind::Adversary,
                &lincheck_cfg,
            )
        },
    );
}
