//! E18: throughput/latency under genuine multi-core contention, on both
//! execution backends.
//!
//! Runs a wakeup algorithm (`CounterWakeup`) and a universal
//! construction (`DirectLlSc` over fetch&increment) on the deterministic
//! simulator and on the CAS-based hardware backend (one OS thread per
//! process), at several process counts, and writes a `BENCH_pr6.json`
//! artifact with per-case wall-clock min/mean, shared-access counts, and
//! DSM RMR totals (billed identically on both backends, so the column is
//! directly comparable across `sim` and `atomic` rows).
//!
//! A failed case — a diverged run, a panicked hardware thread, the
//! hardware trial watchdog — is reported on stderr and recorded in the
//! artifact's `"failures"` array; the remaining cases still run and the
//! binary exits nonzero.
//!
//! On a single-core host the atomic-backend numbers measure
//! synchronization *overhead* (threads time-slice on one CPU), not
//! scaling — see the E18 entry in EXPERIMENTS.md.
//!
//! Usage: `bench_e18 [--out PATH] [--samples N] [--ns 2,4]
//! [--backend sim|atomic|both]` (defaults: `BENCH_pr6.json`, 5 samples,
//! n ∈ {2, 4}, both backends).

use llsc_bench::xcheck::{e18_case, BackendKind, E18Row, XcheckError};
use llsc_objects::FetchIncrement;
use llsc_shmem::{json, Value};
use llsc_universal::{DirectLlSc, ImplAlgorithm};
use llsc_wakeup::CounterWakeup;
use std::process::ExitCode;
use std::sync::Arc;

const MAX_STEPS: u64 = 10_000_000;

/// One case that failed to produce a row: workload, backend, n, error.
type FailedCase = (&'static str, BackendKind, usize, String);

fn main() -> ExitCode {
    let mut out = String::from("BENCH_pr6.json");
    let mut samples: u32 = 5;
    let mut ns: Vec<usize> = vec![2, 4];
    let mut backends = vec![BackendKind::Sim, BackendKind::Atomic];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a value")
                    .parse()
                    .expect("--samples must be a positive integer");
                assert!(samples > 0, "--samples must be >= 1");
            }
            "--ns" => {
                ns = args
                    .next()
                    .expect("--ns needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--ns entries must be integers"))
                    .collect();
                assert!(
                    !ns.is_empty() && ns.iter().all(|&n| n >= 1),
                    "--ns must list n >= 1"
                );
            }
            "--backend" => {
                let which = args.next().expect("--backend needs sim|atomic|both");
                backends = match which.as_str() {
                    "both" => vec![BackendKind::Sim, BackendKind::Atomic],
                    one => vec![BackendKind::parse(one)
                        .unwrap_or_else(|| panic!("unknown backend `{one}` (sim|atomic|both)"))],
                };
            }
            other => {
                eprintln!(
                    "error: unknown flag `{other}`\nusage: bench_e18 [--out PATH] [--samples N] [--ns 2,4] [--backend sim|atomic|both]"
                );
                std::process::exit(2);
            }
        }
    }

    let spec = Arc::new(FetchIncrement::new(64));
    let imp = DirectLlSc::new(spec);
    let mut rows: Vec<E18Row> = Vec::new();
    let mut failures: Vec<FailedCase> = Vec::new();
    let record = |case: Result<E18Row, XcheckError>,
                  workload: &'static str,
                  backend: BackendKind,
                  n: usize,
                  rows: &mut Vec<E18Row>,
                  failures: &mut Vec<FailedCase>| {
        match case {
            Ok(row) => {
                print_row(&row);
                rows.push(row);
            }
            Err(e) => {
                eprintln!(
                    "e18 {workload} backend={} n={n} FAILED: {e}",
                    backend.name()
                );
                failures.push((workload, backend, n, e.to_string()));
            }
        }
    };
    for &backend in &backends {
        for &n in &ns {
            let case = e18_case(
                "wakeup-counter",
                &CounterWakeup,
                backend,
                n,
                samples,
                MAX_STEPS,
            );
            record(case, "wakeup-counter", backend, n, &mut rows, &mut failures);

            let ops: Vec<Value> = vec![FetchIncrement::op(); n];
            let alg = ImplAlgorithm::new(&imp, &ops);
            let case = e18_case("universal-direct", &alg, backend, n, samples, MAX_STEPS);
            record(
                case,
                "universal-direct",
                backend,
                n,
                &mut rows,
                &mut failures,
            );
        }
    }

    let mut json = String::from("{\"bench\":\"pr6\",\"samples\":");
    json.push_str(&samples.to_string());
    json.push_str(",\"cases\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"experiment\":\"e18\",\"workload\":\"{}\",\"backend\":\"{}\",\"n\":{},\"wall_ms_min\":{:.3},\"wall_ms_mean\":{:.3},\"max_ops\":{},\"total_ops\":{},\"dsm_rmrs\":{}}}",
            r.workload,
            r.backend.name(),
            r.n,
            r.wall_ms_min,
            r.wall_ms_mean,
            r.max_ops,
            r.total_ops,
            r.dsm_rmrs
        ));
    }
    json.push_str("],\"failures\":[");
    for (i, (workload, backend, n, error)) in failures.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"workload\":\"{}\",\"backend\":\"{}\",\"n\":{},\"error\":",
            workload,
            backend.name(),
            n
        ));
        json::push_string(&mut json, error);
        json.push('}');
    }
    json.push_str("]}\n");
    llsc_shmem::atomic_write(std::path::Path::new(&out), json)
        .expect("cannot write the bench artifact");
    eprintln!("wrote {out}");
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} case(s) failed", failures.len());
        ExitCode::FAILURE
    }
}

fn print_row(r: &E18Row) {
    println!(
        "e18 {workload:<16} backend={backend:<6} n={n:<3} min {min:>9.3}ms mean {mean:>9.3}ms max_ops={max} total_ops={total} dsm_rmrs={dsm}",
        workload = r.workload,
        backend = r.backend.name(),
        n = r.n,
        min = r.wall_ms_min,
        mean = r.wall_ms_mean,
        max = r.max_ops,
        total = r.total_ops,
        dsm = r.dsm_rmrs
    );
}
