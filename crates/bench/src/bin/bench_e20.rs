//! E20: cross-backend chaos validation — degradation class and recovery
//! cost under injected faults, on the simulator and on real threads.
//!
//! Every trial seeds one [`ChaosPlan`] and tailors it to the
//! algorithm's capability arm (`llsc_bench::xcheck::chaos_arm`): the
//! hardened wakeup trio faces the memory-fault arm (spurious SC
//! failures + register corruption), the crash-recoverable trio faces
//! the crash-recovery arm (thread kills + spurious SC). The *same plan*
//! then runs on the deterministic simulator and on the CAS-based
//! hardware backend (one OS thread per process, crashes as real thread
//! deaths), and each run is classified with the shared degradation
//! vocabulary. The artifact records every row plus a `"divergence"`
//! array of (algorithm, intensity, seed) cells where the two backends
//! disagree on the class — expected occasionally, since the OS chooses
//! the hardware interleaving, but `silent-wrong` is never acceptable on
//! either backend.
//!
//! A trial that goes silently wrong, panics a thread, or exhausts its
//! respawn budget is recorded in the artifact's `"failures"` array and
//! the binary exits nonzero (`--respawn-budget 0` forces the
//! exhaustion path deliberately — CI uses it to prove the failure
//! machinery stays wired).
//!
//! On a single-core host the atomic-backend numbers measure
//! synchronization *overhead* (threads time-slice on one CPU), not
//! scaling — see the E20 entry in EXPERIMENTS.md.
//!
//! Usage: `bench_e20 [--out PATH] [--n 4] [--intensities 0,2,4]
//! [--trials 3] [--backend sim|atomic|both] [--respawn-budget N]`
//! (defaults: `BENCH_pr10.json`, n = 4, intensities {0, 2, 4},
//! 3 trials per cell, both backends, the arm's own budget).
//!
//! [`ChaosPlan`]: llsc_shmem::ChaosPlan

use llsc_bench::repro::run_case_with;
use llsc_bench::xcheck::{run_hw_chaos, BackendKind};
use llsc_bench::{e20_algorithm, e20_case, e20_recovery, E20_MAX_STEPS};
use llsc_shmem::{json, ProcessId, RecoverySpec, RunOutcome};
use std::process::ExitCode;

/// Per-trial event budget on the simulator side (the hardware side runs
/// under [`E20_MAX_STEPS`] and the trial deadline instead).
const SIM_MAX_EVENTS: u64 = 2_000_000;

/// Degradation classes that fail the bench outright, on either backend.
fn class_is_failure(class: &str) -> bool {
    matches!(class, "silent-wrong" | "panic" | "respawn-exhausted")
}

/// One classified trial row, from either backend.
struct Row {
    algorithm: String,
    arm: &'static str,
    backend: BackendKind,
    intensity: usize,
    seed: u64,
    class: String,
    max_ops: u64,
    max_dsm_rmrs: u64,
    spurious_sc: u64,
    corruptions: u64,
    crashes: u64,
    respawns: u64,
    detected: u64,
    outcome: String,
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_pr10.json");
    let mut n: usize = 4;
    let mut intensities: Vec<usize> = vec![0, 2, 4];
    let mut trials: u64 = 3;
    let mut backends = vec![BackendKind::Sim, BackendKind::Atomic];
    let mut respawn_budget: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--n" => {
                n = args
                    .next()
                    .expect("--n needs a value")
                    .parse()
                    .expect("--n must be a positive integer");
                assert!(n >= 2, "--n must be >= 2 (chaos needs a victim and a peer)");
            }
            "--intensities" => {
                intensities = args
                    .next()
                    .expect("--intensities needs a comma-separated list")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .expect("--intensities entries must be integers")
                    })
                    .collect();
                assert!(
                    !intensities.is_empty(),
                    "--intensities must list at least one"
                );
            }
            "--trials" => {
                trials = args
                    .next()
                    .expect("--trials needs a value")
                    .parse()
                    .expect("--trials must be a positive integer");
                assert!(trials >= 1, "--trials must be >= 1");
            }
            "--backend" => {
                let which = args.next().expect("--backend needs sim|atomic|both");
                backends = match which.as_str() {
                    "both" => vec![BackendKind::Sim, BackendKind::Atomic],
                    one => vec![BackendKind::parse(one)
                        .unwrap_or_else(|| panic!("unknown backend `{one}` (sim|atomic|both)"))],
                };
            }
            "--respawn-budget" => {
                respawn_budget = Some(
                    args.next()
                        .expect("--respawn-budget needs a value")
                        .parse()
                        .expect("--respawn-budget must be a non-negative integer"),
                );
            }
            other => {
                eprintln!(
                    "error: unknown flag `{other}`\nusage: bench_e20 [--out PATH] [--n 4] \
                     [--intensities 0,2,4] [--trials 3] [--backend sim|atomic|both] \
                     [--respawn-budget N]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    // Class disagreements between the two backends for the same
    // (algorithm, intensity, seed) cell.
    let mut divergence: Vec<(String, usize, u64, String, String)> = Vec::new();
    for a in 0..6 {
        let alg = e20_algorithm(a, n);
        let arm = if a < 3 {
            "memory-faults"
        } else {
            "crash-recovery"
        };
        // The hardware side may tighten the respawn budget (0 forces the
        // escalation path); the simulator side keeps the arm's own
        // regime — its recovery semantics have no budget-0 encoding.
        let hw_recovery = e20_recovery(a, n).map(|r| RecoverySpec {
            delay: r.delay,
            budget: respawn_budget.unwrap_or(r.budget),
        });
        for &intensity in &intensities {
            for seed in 1..=trials {
                let case = e20_case(a, n, intensity, seed, SIM_MAX_EVENTS);
                let mut cell: Vec<(BackendKind, String)> = Vec::new();
                for &backend in &backends {
                    let row = match backend {
                        BackendKind::Sim => {
                            let run = run_case_with(&case, alg.as_ref());
                            // Re-execute for the cost counters; the
                            // replay is deterministic, so the second
                            // drive sees the identical run.
                            let replayed = llsc_shmem::repro::execute(&case, alg.as_ref());
                            let counters = replayed.exec.run().counters();
                            let (spurious_sc, corruptions) = match replayed.outcome {
                                RunOutcome::FaultInjected {
                                    spurious_sc,
                                    corruptions,
                                } => (spurious_sc, corruptions),
                                _ => (0, 0),
                            };
                            let max_dsm = (0..n)
                                .map(|p| replayed.exec.run().dsm_rmrs(ProcessId(p)))
                                .max()
                                .unwrap_or(0);
                            Row {
                                algorithm: alg.name().to_string(),
                                arm,
                                backend,
                                intensity,
                                seed,
                                class: run.class.clone(),
                                max_ops: counters.max_ops(),
                                max_dsm_rmrs: max_dsm,
                                spurious_sc,
                                corruptions,
                                crashes: counters.total_crashes(),
                                respawns: counters.total_recoveries(),
                                detected: run.detected,
                                outcome: run.outcome_debug,
                            }
                        }
                        BackendKind::Atomic => {
                            let run = run_hw_chaos(
                                alg.as_ref(),
                                n,
                                seed,
                                &case.faults,
                                &case.crashes,
                                hw_recovery,
                                E20_MAX_STEPS,
                            );
                            Row {
                                algorithm: alg.name().to_string(),
                                arm,
                                backend,
                                intensity,
                                seed,
                                class: run.class.to_string(),
                                max_ops: run.max_ops,
                                max_dsm_rmrs: run.max_dsm_rmrs,
                                spurious_sc: run.spurious_sc,
                                corruptions: run.corruptions,
                                crashes: run.crashes,
                                respawns: run.respawns,
                                detected: run.detected,
                                outcome: run.outcome_text,
                            }
                        }
                    };
                    print_row(&row);
                    cell.push((backend, row.class.clone()));
                    rows.push(row);
                }
                if let [(BackendKind::Sim, sim_class), (BackendKind::Atomic, hw_class)] = &cell[..]
                {
                    if sim_class != hw_class {
                        divergence.push((
                            alg.name().to_string(),
                            intensity,
                            seed,
                            sim_class.clone(),
                            hw_class.clone(),
                        ));
                    }
                }
            }
        }
    }

    let failures: Vec<&Row> = rows.iter().filter(|r| class_is_failure(&r.class)).collect();

    let mut json = String::from("{\"bench\":\"pr10\",\"n\":");
    json.push_str(&n.to_string());
    json.push_str(",\"trials\":");
    json.push_str(&trials.to_string());
    json.push_str(",\"cases\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"experiment\":\"e20\",\"algorithm\":\"{}\",\"arm\":\"{}\",\"backend\":\"{}\",\
             \"intensity\":{},\"seed\":{},\"class\":\"{}\",\"max_ops\":{},\"max_dsm_rmrs\":{},\
             \"spurious_sc\":{},\"corruptions\":{},\"crashes\":{},\"respawns\":{},\"detected\":{}}}",
            r.algorithm,
            r.arm,
            r.backend.name(),
            r.intensity,
            r.seed,
            r.class,
            r.max_ops,
            r.max_dsm_rmrs,
            r.spurious_sc,
            r.corruptions,
            r.crashes,
            r.respawns,
            r.detected
        ));
    }
    json.push_str("],\"divergence\":[");
    for (i, (alg, intensity, seed, sim_class, hw_class)) in divergence.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"algorithm\":\"{alg}\",\"intensity\":{intensity},\"seed\":{seed},\
             \"sim_class\":\"{sim_class}\",\"hw_class\":\"{hw_class}\"}}"
        ));
    }
    json.push_str("],\"failures\":[");
    for (i, r) in failures.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"algorithm\":\"{}\",\"backend\":\"{}\",\"intensity\":{},\"seed\":{},\
             \"class\":\"{}\",\"outcome\":",
            r.algorithm,
            r.backend.name(),
            r.intensity,
            r.seed,
            r.class
        ));
        json::push_string(&mut json, &r.outcome);
        json.push('}');
    }
    json.push_str("]}\n");
    llsc_shmem::atomic_write(std::path::Path::new(&out), json)
        .expect("cannot write the bench artifact");
    eprintln!("wrote {out}");
    if !divergence.is_empty() {
        eprintln!(
            "{} cell(s) diverged between backends (recorded in the artifact)",
            divergence.len()
        );
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} trial(s) failed", failures.len());
        ExitCode::FAILURE
    }
}

fn print_row(r: &Row) {
    println!(
        "e20 {alg:<34} arm={arm:<14} backend={backend:<6} intensity={i} seed={seed} \
         class={class:<17} max_ops={ops:<6} max_dsm={dsm:<6} sc_fails={sc} corruptions={co} \
         crashes={cr} respawns={re} detected={de}",
        alg = r.algorithm,
        arm = r.arm,
        backend = r.backend.name(),
        i = r.intensity,
        seed = r.seed,
        class = r.class,
        ops = r.max_ops,
        dsm = r.max_dsm_rmrs,
        sc = r.spurious_sc,
        co = r.corruptions,
        cr = r.crashes,
        re = r.respawns,
        de = r.detected
    );
}
