//! Bench-smoke: wall-clock baselines for the subset-sweep hot path.
//!
//! Times E4 (Lemma 5.2 indistinguishability, exhaustive over subsets),
//! E6 (sampled randomized expectation), and E13 (appendix claims) with
//! [`llsc_bench::harness::measure_case`] — the exact workloads of the
//! corresponding `table_*` binaries — and writes a `BENCH_pr4.json`
//! artifact recording, per experiment: the id, min/mean wall-clock, and
//! (for the subset sweeps) simulated executor events per second plus how
//! many of those events were *replayed* from a Gray-code checkpoint
//! rather than re-executed.
//!
//! The replayed counts double as a counted-work regression gate: the
//! Gray-code incremental sweep must replay a nonzero share of each
//! subset sweep's events (i.e. execute strictly fewer events than a
//! from-scratch enumeration would). Event counts are deterministic, so
//! the gate is meaningful even on noisy shared CI runners where
//! wall-clock is trend-watching only. The binary exits nonzero if the
//! gate fails.
//!
//! Usage: `bench_smoke [--out PATH] [--samples N] [--label NAME]`
//! (defaults: `BENCH_pr4.json`, 10 samples, label `pr4`). Single-threaded
//! sweeps throughout, so the numbers are comparable on the 1-core
//! reference container.

use llsc_bench::harness::measure_case;
use llsc_shmem::Sweep;

struct Case {
    id: &'static str,
    min_ms: f64,
    mean_ms: f64,
    /// Total simulated executor events of one run, when the experiment
    /// reports them (the subset sweeps do; E6 rows do not).
    events: Option<u64>,
    /// Of `events`, how many were replayed from a checkpoint instead of
    /// re-executed (subset sweeps only).
    replayed: Option<u64>,
}

fn main() {
    let mut out = String::from("BENCH_pr4.json");
    let mut label = String::from("pr4");
    let mut samples: u32 = 10;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--label" => label = args.next().expect("--label needs a name"),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a value")
                    .parse()
                    .expect("--samples must be a positive integer");
                assert!(samples > 0, "--samples must be >= 1");
            }
            other => {
                eprintln!(
                    "error: unknown flag `{other}`\nusage: bench_smoke [--out PATH] [--samples N] [--label NAME]"
                );
                std::process::exit(2);
            }
        }
    }

    let sweep = Sweep::sequential();
    let mut cases = Vec::new();

    let e4 = llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], &sweep);
    let e4_events: u64 = e4.rows.iter().map(|r| r.events).sum();
    let e4_replayed: u64 = e4.rows.iter().map(|r| r.replayed).sum();
    let (min, mean) = measure_case(samples, || {
        llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], &sweep)
    });
    println!(
        "e4  min {min:>10.3?}  mean {mean:>10.3?}  ({e4_events} events/run, {e4_replayed} replayed)"
    );
    cases.push(Case {
        id: "e4",
        min_ms: min.as_secs_f64() * 1e3,
        mean_ms: mean.as_secs_f64() * 1e3,
        events: Some(e4_events),
        replayed: Some(e4_replayed),
    });

    let (min, mean) = measure_case(samples, || {
        llsc_bench::e6_randomized_expectation(&[4, 16, 64], 30, &sweep)
    });
    println!("e6  min {min:>10.3?}  mean {mean:>10.3?}");
    cases.push(Case {
        id: "e6",
        min_ms: min.as_secs_f64() * 1e3,
        mean_ms: mean.as_secs_f64() * 1e3,
        events: None,
        replayed: None,
    });

    let e13 = llsc_bench::e13_appendix_claims(&[4, 6], &sweep);
    let e13_events: u64 = e13.rows.iter().map(|r| r.events).sum();
    let e13_replayed: u64 = e13.rows.iter().map(|r| r.replayed).sum();
    let (min, mean) = measure_case(samples, || llsc_bench::e13_appendix_claims(&[4, 6], &sweep));
    println!(
        "e13 min {min:>10.3?}  mean {mean:>10.3?}  ({e13_events} events/run, {e13_replayed} replayed)"
    );
    cases.push(Case {
        id: "e13",
        min_ms: min.as_secs_f64() * 1e3,
        mean_ms: mean.as_secs_f64() * 1e3,
        events: Some(e13_events),
        replayed: Some(e13_replayed),
    });

    let mut json = format!("{{\"bench\":\"{label}\",\"samples\":");
    json.push_str(&samples.to_string());
    json.push_str(",\"cases\":[");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"experiment\":\"{}\",\"wall_ms_min\":{:.3},\"wall_ms_mean\":{:.3}",
            c.id, c.min_ms, c.mean_ms
        ));
        if let Some(events) = c.events {
            let eps = events as f64 / (c.min_ms / 1e3);
            json.push_str(&format!(
                ",\"events_per_run\":{events},\"events_per_sec\":{:.0}",
                eps
            ));
        }
        if let Some(replayed) = c.replayed {
            json.push_str(&format!(",\"replayed_events_per_run\":{replayed}"));
        }
        json.push('}');
    }
    json.push_str("]}\n");
    llsc_shmem::atomic_write(std::path::Path::new(&out), json)
        .expect("cannot write the bench artifact");
    eprintln!("wrote {out}");

    // Counted-work regression gate: every subset sweep must have replayed
    // a nonzero, strictly partial share of its events from checkpoints.
    let mut gate_ok = true;
    for c in &cases {
        if let (Some(events), Some(replayed)) = (c.events, c.replayed) {
            if replayed == 0 || replayed >= events {
                eprintln!(
                    "counted-work gate FAILED for {}: {replayed} of {events} events replayed \
                     (need 0 < replayed < events)",
                    c.id
                );
                gate_ok = false;
            }
        }
    }
    if !gate_ok {
        std::process::exit(1);
    }
}
