//! E1/E2/E11: secretive complete schedules (Lemmas 4.1 & 4.2).
fn main() {
    llsc_bench::e1_secretive_schedules(&[4, 16, 64, 256, 1024, 4096], 20);
}
