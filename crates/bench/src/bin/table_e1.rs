//! E1/E2/E11: secretive complete schedules (Lemmas 4.1 & 4.2).
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![llsc_bench::e1_secretive_schedules(&[4, 16, 64, 256, 1024, 4096], 20, sweep).table]
    })
}
