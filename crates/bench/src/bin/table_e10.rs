//! E10: the non-oblivious constant-time escape hatch.
fn main() {
    llsc_bench::e10_direct_escape_hatch(&[4, 16, 64, 256]);
    println!();
    llsc_bench::e10b_structural_escape_hatches(&[1, 16, 256, 4096]);
}
