//! E10: the non-oblivious escape hatches.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![
            llsc_bench::e10_direct_escape_hatch(&[4, 16, 64, 256], sweep).table,
            llsc_bench::e10b_structural_escape_hatches(&[1, 16, 256, 4096], sweep).table,
        ]
    })
}
