//! E12: k-use amortised costs of the direct LL/SC object.
fn main() {
    llsc_bench::e12_multi_use(&[2, 8, 32], &[1, 4, 16]);
}
