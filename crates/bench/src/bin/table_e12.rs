//! E12: k-use amortised costs of the direct object.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![llsc_bench::e12_multi_use(&[2, 8, 32], &[1, 4, 16], sweep).table]
    })
}
