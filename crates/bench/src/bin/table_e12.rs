//! E12: k-use amortised costs of the direct object.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e12_multi_use(&[2, 8, 32], &[1, 4, 16], &sweep);
    opts.emit(&[&exp.table])
}
