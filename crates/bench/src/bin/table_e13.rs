//! E13: the appendix claims, exhaustively over subsets.
fn main() {
    llsc_bench::e13_appendix_claims(&[4, 6]);
}
