//! E13: the appendix claims, exhaustive over subsets.
use llsc_bench::harness::HarnessOpts;
use llsc_bench::job::{table_job_mode, JobExperiment};
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--job-dir DIR [--resume] [--threads N]` switches to the
    // checkpointed, resumable job runner (see `llsc job --help`).
    if let Some(code) = table_job_mode(JobExperiment::E13) {
        return code;
    }
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| vec![llsc_bench::e13_appendix_claims(&[4, 6], sweep).table])
}
