//! E13: the appendix claims, exhaustive over subsets.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e13_appendix_claims(&[4, 6], &sweep);
    opts.emit(&[&exp.table])
}
