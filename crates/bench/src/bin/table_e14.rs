//! E14: the wakeup stress portfolio.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| vec![llsc_bench::e14_stress_portfolio(8, sweep).table])
}
