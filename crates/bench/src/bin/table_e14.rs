//! E14: the wakeup stress portfolio.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e14_stress_portfolio(8, &sweep);
    opts.emit(&[&exp.table])
}
