//! E14: the wakeup stress portfolio.
fn main() {
    llsc_bench::e14_stress_portfolio(8);
}
