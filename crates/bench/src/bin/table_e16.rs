//! E16: memory-fault degradation of the hardened wakeup solutions.
//!
//! Each trial arms a seeded fault plan (spurious SC failures plus
//! transient register corruption) against one retry/backoff-hardened
//! algorithm and classifies the result: recovered, detected-wrong,
//! silent-wrong, or stalled. Like `table_e15` this binary injects faults,
//! so it also accepts `--max-events N` (starving it exercises the
//! trial-failure path) and exits nonzero when any panic-isolated trial
//! fails, recording the failures in the JSON artifact's `"failures"`
//! array. Every `f = 0` trial additionally asserts the zero-cost
//! guarantee: the hardened algorithm's shared-access count must exactly
//! match its unhardened twin's.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

/// Default per-trial event budget: generous enough that only an honest
/// stall (or a deliberate `--max-events` starvation) keeps a trial from
/// finishing.
const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let max_events = opts.max_events.unwrap_or(DEFAULT_MAX_EVENTS);
    let (exp, failures) =
        llsc_bench::e16_fault_degradation(8, &[0, 1, 2, 4, 8], 6, max_events, &sweep);
    opts.emit_with_failures(&[&exp.table], &failures)
}
