//! E17: combined chaos mode — every adversary at once.
//!
//! Each trial composes crash faults, memory faults (spurious SC failures
//! plus transient register corruption), and a seeded random schedule
//! into one chaos plan, runs a hardened wakeup solution or its
//! unhardened twin under it, and classifies the result with the shared
//! failure-class vocabulary. Every non-recovered trial is packaged as a
//! replayable repro case and delta-debugged on the spot; each cell
//! reports the failure-class histogram plus the median
//! minimal-reproducer size. Like the other fault binaries this one
//! accepts `--max-events N` and exits nonzero when any panic-isolated
//! trial fails (every `intensity = 0` trial must recover), recording the
//! failures — with attached repro cases — in the JSON artifact's
//! `"failures"` array.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

/// Default per-trial event budget: generous enough that only an honest
/// stall (or a deliberate `--max-events` starvation) keeps a trial from
/// finishing.
const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let max_events = opts.max_events.unwrap_or(DEFAULT_MAX_EVENTS);
    let (exp, failures) = llsc_bench::e17_chaos_mode(6, &[0, 1, 2, 4], 4, max_events, &sweep);
    opts.emit_with_failures(&[&exp.table], &failures)
}
