//! E19: recovery cost vs crash intensity for the recoverable algorithms.
//!
//! Crashed processes are revived through their recovery sections (the
//! crash-recovery fault model), and every trial is billed in remote
//! memory references under both the CC and DSM cost models. Like the
//! other fault binaries it accepts `--max-events N` (starving it
//! exercises the budget-exhaustion and trial-failure paths) and exits
//! nonzero when any panic-isolated trial fails, recording the failures
//! in the JSON artifact's `"failures"` array.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

/// Default per-trial event budget: generous enough that only a stranded
/// run (or a deliberate `--max-events` starvation) keeps a trial from
/// finishing.
const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let max_events = opts.max_events.unwrap_or(DEFAULT_MAX_EVENTS);
    let (exp, failures) = llsc_bench::e19_recovery_sweep(8, &[0, 1, 2, 4], 6, max_events, &sweep);
    opts.emit_with_failures(&[&exp.table], &failures)
}
