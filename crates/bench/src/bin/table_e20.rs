//! E20 (simulator half): degradation class and recovery RMR cost vs
//! chaos intensity for both fault-model families.
//!
//! The hardened one-shot algorithms (E16) face the memory-fault arm of
//! the chaos plan (spurious SC failures + value corruption, no
//! crashes); the crash-recoverable algorithms (E19) face the
//! crash-recovery arm (crashes + spurious SC, no corruption). Only the
//! simulator rows are emitted here — they are deterministic and
//! thread-count invariant, so the artifact is goldenable. The
//! cross-backend comparison against real threads lives in `bench_e20`,
//! whose hardware timings are inherently nondeterministic.
//!
//! Accepts `--max-events N` (starving it exercises the trial-failure
//! paths) and exits nonzero when any panic-isolated trial fails,
//! recording the failures in the JSON artifact's `"failures"` array.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

/// Default per-trial event budget: generous enough that only a stranded
/// run (or a deliberate `--max-events` starvation) keeps a trial from
/// finishing.
const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let max_events = opts.max_events.unwrap_or(DEFAULT_MAX_EVENTS);
    let (exp, failures) =
        llsc_bench::e20_chaos_recovery_sweep(8, &[0, 1, 2, 4], 6, max_events, &sweep);
    opts.emit_with_failures(&[&exp.table], &failures)
}
