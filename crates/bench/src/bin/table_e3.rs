//! E3: UP-set growth (Lemma 5.1).
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| vec![llsc_bench::e3_up_growth(&[4, 16, 64, 256, 1024], sweep).table])
}
