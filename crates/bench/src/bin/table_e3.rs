//! E3: UP-set growth (Lemma 5.1).
fn main() {
    llsc_bench::e3_up_growth(&[4, 16, 64, 256, 1024]);
}
