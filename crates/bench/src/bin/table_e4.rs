//! E4: indistinguishability (Lemma 5.2).
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], &sweep);
    opts.emit(&[&exp.table])
}
