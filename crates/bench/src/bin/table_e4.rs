//! E4: indistinguishability (Lemma 5.2).
use llsc_bench::harness::HarnessOpts;
use llsc_bench::job::{table_job_mode, JobExperiment};
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--job-dir DIR [--resume] [--threads N]` switches to the
    // checkpointed, resumable job runner (see `llsc job --help`).
    if let Some(code) = table_job_mode(JobExperiment::E4) {
        return code;
    }
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], sweep).table]
    })
}
