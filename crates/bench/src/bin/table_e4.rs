//! E4: the Indistinguishability Lemma (Lemma 5.2), exhaustive over subsets.
fn main() {
    llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42]);
}
