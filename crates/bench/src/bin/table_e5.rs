//! E5: the wakeup lower bound (Theorem 6.1).
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![
            llsc_bench::e5_wakeup_lower_bound(&[4, 16, 64, 256, 1024], sweep).table,
            llsc_bench::e5_tournament_tightness(&[4, 16, 64, 256, 1024, 4096], sweep).table,
        ]
    })
}
