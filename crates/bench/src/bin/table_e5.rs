//! E5: the wakeup lower bound (Theorem 6.1).
fn main() {
    llsc_bench::e5_wakeup_lower_bound(&[4, 16, 64, 256, 1024]);
    println!();
    llsc_bench::e5_tournament_tightness(&[4, 16, 64, 256, 1024, 4096]);
}
