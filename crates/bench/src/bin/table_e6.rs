//! E6: randomized expected complexity (Lemma 3.1).
fn main() {
    llsc_bench::e6_randomized_expectation(&[4, 16, 64], 30);
}
