//! E6: randomized expected complexity (Lemma 3.1).
use llsc_bench::harness::HarnessOpts;
use llsc_bench::job::{table_job_mode, JobExperiment};
use std::process::ExitCode;

fn main() -> ExitCode {
    // `--job-dir DIR [--resume] [--threads N]` switches to the
    // checkpointed, resumable job runner (see `llsc job --help`).
    if let Some(code) = table_job_mode(JobExperiment::E6) {
        return code;
    }
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![llsc_bench::e6_randomized_expectation(&[4, 16, 64], 30, sweep).table]
    })
}
