//! E6: randomized expected complexity (Lemma 3.1).
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e6_randomized_expectation(&[4, 16, 64], 30, &sweep);
    opts.emit(&[&exp.table])
}
