//! E7: the Theorem 6.2 object reductions.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e7_reductions(&[4, 16, 64, 256], &sweep);
    opts.emit(&[&exp.table])
}
