//! E7: the Theorem 6.2 object reductions.
fn main() {
    llsc_bench::e7_reductions(&[4, 16, 64, 256]);
}
