//! E7: the Theorem 6.2 object reductions.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| vec![llsc_bench::e7_reductions(&[4, 16, 64, 256], sweep).table])
}
