//! E8/E9: universal-construction tightness sweep.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| {
        vec![
            llsc_bench::e8_universal_constructions(&[4, 8, 16, 32, 64, 128, 256, 512], sweep).table,
        ]
    })
}
