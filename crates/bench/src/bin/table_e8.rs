//! E8/E9: universal-construction complexity sweep (tightness).
fn main() {
    llsc_bench::e8_universal_constructions(&[4, 8, 16, 32, 64, 128, 256, 512]);
}
