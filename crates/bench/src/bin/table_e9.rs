//! E9: schedule ablation for the constructions.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    let sweep = opts.sweep();
    let exp = llsc_bench::e9_schedule_ablation(&[16, 64, 256], &sweep);
    opts.emit(&[&exp.table])
}
