//! E9: schedule ablation for the constructions.
use llsc_bench::harness::HarnessOpts;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = HarnessOpts::from_env();
    opts.emit_guarded(|sweep| vec![llsc_bench::e9_schedule_ablation(&[16, 64, 256], sweep).table])
}
