//! E9: schedule ablation for the universal constructions.
fn main() {
    llsc_bench::e9_schedule_ablation(&[16, 64, 256]);
}
