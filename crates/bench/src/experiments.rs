//! The experiment implementations behind the `table_*` binaries.
//!
//! Every function runs its independent trials on the shared [`Sweep`]
//! engine and returns an [`Experiment`] — the rendered table plus the
//! typed rows, so tests (and `EXPERIMENTS.md` updates) can consume the
//! numbers directly. All experiments are deterministic: fixed seeds, fixed
//! toss assignments, and trial results merged in index order, so the
//! tables are byte-identical at every thread count.

use crate::harness::Experiment;
use crate::table::Table;
use llsc_core::{
    build_all_run, ceil_log4, check_wakeup, estimate_expected_complexity_sweep, flow_report,
    indist_all_subsets, secretive_complete_schedule, verify_lower_bound, AdversaryConfig,
    MoveConfig, ProcSet,
};
// Re-exported for callers that predate the move of the seeding helpers
// into `llsc_core` (see `crates/core/src/secretive.rs`).
pub use llsc_core::random_move_config;
use llsc_objects::FetchIncrement;
use llsc_shmem::repro::{Provenance, RecoverySpec, ReproCase, ScheduleSpec, TossSpec};
use llsc_shmem::{
    Algorithm, ChaosPlan, CrashPlan, CrashScheduler, Executor, ExecutorConfig, FaultPlan,
    ProcessId, RecoveringCrashScheduler, RegisterId, RoundRobinScheduler, RunOutcome, SeededTosses,
    Sweep, TrialFailure, ZeroTosses,
};
use llsc_universal::{
    measure, AdtTreeUniversal, CombiningTreeUniversal, DirectLlSc, HardenedAdtTreeUniversal,
    HardenedCombiningTreeUniversal, HardenedDirectLlSc, HerlihyUniversal, MeasureConfig,
    ObjectImplementation, ScheduleKind,
};
use llsc_wakeup::{
    check_mutex_tokens, correct_algorithms, randomized_algorithms, CounterWakeup,
    HardenedCounterWakeup, HardenedRandomizedCounterWakeup, HardenedTournamentWakeup, ObjectWakeup,
    RandomizedCounterWakeup, RecoverableCounterWakeup, RecoverableMutex,
    RecoverableRandCounterWakeup, ReductionKind, TournamentWakeup,
};
use std::sync::Arc;

/// The E4 table title — shared with the job runner, whose assembled
/// artifact must match the `table_e4` binary's byte for byte.
pub const E4_TITLE: &str =
    "E4 - Lemma 5.2: (All,A)-run vs (S,A)-run indistinguishability, exhaustive over S";
/// The E6 table title (see [`E4_TITLE`] for why it is shared).
pub const E6_TITLE: &str =
    "E6 - randomized wakeup: sampled expected complexity vs c*log4(n) (Lemma 3.1)";
/// The E13 table title (see [`E4_TITLE`] for why it is shared).
pub const E13_TITLE: &str = "E13 - appendix claims A.2-A.9 + Lemma 5.2, exhaustive over subsets";

/// The E20 table title (see [`E4_TITLE`] for why it is shared).
pub fn e20_title(n: usize, reps: usize) -> String {
    format!(
        "E20 - cross-backend chaos: degradation class and recovery RMR cost vs fault \
         intensity (n = {n}, {reps} trials per cell, simulator backend)"
    )
}

/// The E20 table's column headers (see [`E4_TITLE`] for why they are
/// shared).
pub const E20_HEADERS: [&str; 16] = [
    "algorithm",
    "arm",
    "intensity",
    "trials",
    "recovered",
    "detected wrong",
    "silent wrong",
    "stalled",
    "crashed",
    "aborted",
    "crashes",
    "recoveries",
    "spurious SC",
    "corruptions",
    "CC RMRs",
    "DSM RMRs",
];

/// The `(algorithm index, n)` product used by the per-algorithm sweeps.
fn alg_size_pairs(algs: usize, ns: &[usize]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(algs * ns.len());
    for a in 0..algs {
        for &n in ns {
            pairs.push((a, n));
        }
    }
    pairs
}

/// One row of E1: secretive-schedule statistics for a configuration size.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Number of moving processes.
    pub n: usize,
    /// Configurations tried.
    pub configs: usize,
    /// Worst movers-list length over all registers and configurations
    /// (Lemma 4.1 caps this at 2).
    pub worst_movers: usize,
    /// Number of Lemma 4.2 restriction checks performed (all must hold).
    pub restriction_checks: usize,
}

/// E1/E2: Lemma 4.1 and 4.2 over random move configurations, plus the
/// Section-4 chain (E11). Random configurations fan out over the sweep.
pub fn e1_secretive_schedules(
    sizes: &[usize],
    configs_per_size: usize,
    sweep: &Sweep,
) -> Experiment<E1Row> {
    let mut table = Table::new(
        "E1/E2 - secretive complete schedules: Lemma 4.1 (movers <= 2) and Lemma 4.2 (restriction)",
        [
            "n",
            "configs",
            "worst movers",
            "Lemma 4.2 checks",
            "verdict",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        // Each random configuration is one independent trial returning its
        // (worst movers, restriction checks) tally.
        let tallies = sweep.run_indexed(configs_per_size, |trial| {
            let c = trial.index;
            let regs = (n as u64 / 2).max(2);
            let cfg = random_move_config(n, regs, c as u64 * 7919 + n as u64);
            let sigma = secretive_complete_schedule(&cfg);
            let flows = flow_report(&sigma, &cfg);
            let mut worst = 0usize;
            let mut restriction_checks = 0usize;
            for (&r, (src, m)) in &flows {
                assert!(m.len() <= 2, "Lemma 4.1 violated at {r}");
                worst = worst.max(m.len());
                // Lemma 4.2: restricting to exactly the movers preserves
                // the source.
                let keep: ProcSet = m.iter().copied().collect();
                let restricted = llsc_core::restrict(&sigma, &keep);
                let restricted_flows = flow_report(&restricted, &cfg);
                let restricted_src = restricted_flows.get(&r).map(|(s, _)| *s).unwrap_or(r);
                assert_eq!(restricted_src, *src, "Lemma 4.2 violated at {r}");
                restriction_checks += 1;
            }
            (worst, restriction_checks)
        });
        let worst = tallies.iter().map(|&(w, _)| w).max().unwrap_or(0);
        let restriction_checks: usize = tallies.iter().map(|&(_, c)| c).sum();
        // The paper's chain example as a fixed configuration.
        let chain = MoveConfig::from_iter(
            (0..n).map(|i| (ProcessId(i), RegisterId(i as u64), RegisterId(i as u64 + 1))),
        );
        let sigma = secretive_complete_schedule(&chain);
        assert!(llsc_core::is_secretive(&sigma, &chain));
        table.row([
            n.to_string(),
            (configs_per_size + 1).to_string(),
            worst.to_string(),
            restriction_checks.to_string(),
            "PASS".to_string(),
        ]);
        rows.push(E1Row {
            n,
            configs: configs_per_size + 1,
            worst_movers: worst,
            restriction_checks,
        });
    }
    Experiment { table, rows }
}

/// One row of E3: UP growth for one algorithm at one `n`.
#[derive(Clone, Debug)]
pub struct E3Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Rounds of the `(All, A)`-run.
    pub rounds: usize,
    /// The largest `|UP(X, r)|` observed (at the final round).
    pub max_up: usize,
    /// Whether `|UP(X, r)| <= 4^r` held at every round.
    pub lemma_5_1: bool,
}

/// E3: Lemma 5.1 — `|UP(X, r)| <= 4^r` across the shipped algorithms,
/// one `(algorithm, n)` run per trial.
pub fn e3_up_growth(ns: &[usize], sweep: &Sweep) -> Experiment<E3Row> {
    let mut table = Table::new(
        "E3 - Lemma 5.1: UP-set growth |UP(X, r)| <= 4^r under the Figure-2 adversary",
        ["algorithm", "n", "rounds", "max |UP|", "4^r cap ok"],
    );
    // Rolling UP tracking: Lemma 5.1 only needs per-round max sizes, and
    // full histories cost Θ(rounds · Σ|UP|) memory at n = 1024.
    let cfg = AdversaryConfig {
        track_up_history: false,
        ..AdversaryConfig::default()
    };
    let algs = correct_algorithms();
    let pairs = alg_size_pairs(algs.len(), ns);
    let rows = sweep.run(&pairs, |_trial, &(a, n)| {
        let alg = &algs[a];
        let all = build_all_run(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg)
            .expect("E3 runs stay within the default executor budgets");
        let rounds = all.base.num_rounds();
        let max_up = all.up.max_up_size(rounds);
        let ok = all.up.lemma_5_1_holds();
        assert!(ok, "{} n={n}", alg.name());
        E3Row {
            algorithm: alg.name().to_string(),
            n,
            rounds,
            max_up,
            lemma_5_1: ok,
        }
    });
    for r in &rows {
        table.row([
            r.algorithm.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            r.max_up.to_string(),
            r.lemma_5_1.to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E4: indistinguishability checking for one algorithm/n.
#[derive(Clone, Debug)]
pub struct E4Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Subsets `S` tested.
    pub subsets: usize,
    /// Individual state comparisons performed.
    pub comparisons: usize,
    /// Violations found (must be 0).
    pub violations: usize,
    /// Total simulated executor events across the sweeps behind this row.
    pub events: u64,
    /// Of [`E4Row::events`], how many were replayed from a Gray-code
    /// checkpoint instead of re-executed (see
    /// [`llsc_core::SubsetSweepReport::replayed_events`]).
    pub replayed: u64,
}

/// E4: Lemma 5.2 — `(All, A)` vs `(S, A)` indistinguishability over every
/// subset `S` (exhaustive; keep `n` small) and several toss assignments.
/// The `2^n` subsets of each run fan out over the sweep.
pub fn e4_indistinguishability(ns: &[usize], seeds: &[u64], sweep: &Sweep) -> Experiment<E4Row> {
    let mut table = Table::new(
        E4_TITLE,
        ["algorithm", "n", "subsets", "comparisons", "violations"],
    );
    let cfg = AdversaryConfig::default();
    let mut rows = Vec::new();
    let algs: Vec<Box<dyn Algorithm>> = correct_algorithms()
        .into_iter()
        .chain(randomized_algorithms())
        .collect();
    for alg in &algs {
        for &n in ns {
            let mut subsets = 0usize;
            let mut comparisons = 0usize;
            let mut violations = 0usize;
            let mut events = 0u64;
            let mut replayed = 0u64;
            for &seed in seeds {
                let toss: Arc<dyn llsc_shmem::TossAssignment> = if seed == 0 {
                    Arc::new(ZeroTosses)
                } else {
                    Arc::new(SeededTosses::new(seed))
                };
                let report = indist_all_subsets(alg.as_ref(), n, toss, &cfg, false, sweep)
                    .expect("E4 subset runs stay within the default executor budgets");
                subsets += report.subsets;
                comparisons += report.comparisons;
                violations += report.violations.len();
                events += report.events;
                replayed += report.replayed_events;
            }
            assert_eq!(violations, 0, "{} n={n}", alg.name());
            table.row([
                alg.name().to_string(),
                n.to_string(),
                subsets.to_string(),
                comparisons.to_string(),
                violations.to_string(),
            ]);
            rows.push(E4Row {
                algorithm: alg.name().to_string(),
                n,
                subsets,
                comparisons,
                violations,
                events,
                replayed,
            });
        }
    }
    Experiment { table, rows }
}

/// One row of E5: the wakeup lower bound for one algorithm at one `n`.
#[derive(Clone, Debug)]
pub struct E5Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// `ceil(log4 n)` — the Theorem 6.1 bound.
    pub bound: u64,
    /// The winner's measured shared-access step count.
    pub winner_steps: u64,
    /// `t(R)`: the worst process's step count.
    pub max_steps: u64,
    /// Whether the bound held.
    pub holds: bool,
}

/// E5: Theorem 6.1 — winner step counts vs `ceil(log4 n)`, one
/// `(algorithm, n)` verification per trial.
pub fn e5_wakeup_lower_bound(ns: &[usize], sweep: &Sweep) -> Experiment<E5Row> {
    let mut table = Table::new(
        "E5 - Theorem 6.1: wakeup winner's shared-access steps vs ceil(log4 n)",
        [
            "algorithm",
            "n",
            "ceil(log4 n)",
            "winner steps",
            "t(R)",
            "bound",
        ],
    );
    // Rolling UP tracking suffices for the bound (a terminated winner's
    // UP set is final); the refutation path rebuilds full history on
    // demand.
    let cfg = AdversaryConfig {
        track_up_history: false,
        ..AdversaryConfig::default()
    };
    let algs = correct_algorithms();
    let pairs = alg_size_pairs(algs.len(), ns);
    let rows = sweep.run(&pairs, |_trial, &(a, n)| {
        let alg = &algs[a];
        let rep = verify_lower_bound(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg)
            .expect("E5 runs stay within the default executor budgets");
        assert!(rep.wakeup.ok() && rep.bound_holds, "{} n={n}", alg.name());
        E5Row {
            algorithm: alg.name().to_string(),
            n,
            bound: ceil_log4(n),
            winner_steps: rep.winner_steps,
            max_steps: rep.max_steps,
            holds: rep.bound_holds,
        }
    });
    for r in &rows {
        table.row([
            r.algorithm.clone(),
            r.n.to_string(),
            r.bound.to_string(),
            r.winner_steps.to_string(),
            r.max_steps.to_string(),
            "HOLDS".to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E6: expected complexity of a randomized algorithm.
#[derive(Clone, Debug)]
pub struct E6Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Empirical termination rate `c`.
    pub termination_rate: f64,
    /// Mean winner steps over terminating runs.
    pub mean_winner_steps: f64,
    /// Minimum winner steps (the Lemma 3.1 `k`).
    pub min_winner_steps: u64,
    /// The Lemma 3.1 bound `c * k`.
    pub lemma_3_1_bound: f64,
    /// `log4 n`.
    pub log4_n: f64,
}

/// E6: the randomized bound — sampled expected complexity vs
/// `c * log4(n)` (Lemma 3.1 + Theorem 6.1). The toss-assignment samples
/// of each `(algorithm, n)` estimate fan out over the sweep.
pub fn e6_randomized_expectation(ns: &[usize], samples: u64, sweep: &Sweep) -> Experiment<E6Row> {
    let mut table = Table::new(
        E6_TITLE,
        [
            "algorithm",
            "n",
            "c",
            "E[winner]",
            "min winner",
            "c*k",
            "log4(n)",
        ],
    );
    let cfg = AdversaryConfig {
        max_rounds: 10_000,
        ..AdversaryConfig::default()
    };
    let seeds: Vec<u64> = (0..samples).collect();
    let mut rows = Vec::new();
    for alg in randomized_algorithms() {
        for &n in ns {
            let rep = estimate_expected_complexity_sweep(alg.as_ref(), n, &seeds, &cfg, sweep)
                .expect("E6 sampled runs stay within the default executor budgets");
            assert!(rep.all_meet_bound, "{} n={n}", alg.name());
            table.row([
                alg.name().to_string(),
                n.to_string(),
                format!("{:.2}", rep.termination_rate),
                format!("{:.1}", rep.mean_winner_steps),
                rep.min_winner_steps.to_string(),
                format!("{:.2}", rep.lemma_3_1_bound),
                format!("{:.2}", rep.log4_n),
            ]);
            rows.push(E6Row {
                algorithm: alg.name().to_string(),
                n,
                termination_rate: rep.termination_rate,
                mean_winner_steps: rep.mean_winner_steps,
                min_winner_steps: rep.min_winner_steps,
                lemma_3_1_bound: rep.lemma_3_1_bound,
                log4_n: rep.log4_n,
            });
        }
    }
    Experiment { table, rows }
}

/// One row of E7: a Theorem 6.2 reduction at one `n`.
#[derive(Clone, Debug)]
pub struct E7Row {
    /// The reduction (object type).
    pub kind: ReductionKind,
    /// Number of processes.
    pub n: usize,
    /// Ops per process on the object (`k` of Corollary 6.1).
    pub ops_per_process: u32,
    /// Winner's shared steps.
    pub winner_steps: u64,
    /// `ceil(log4 n)`.
    pub bound: u64,
    /// Whether wakeup held and the bound held.
    pub ok: bool,
}

/// E7: Theorem 6.2 — all eight wakeup-from-object reductions over the
/// direct LL/SC implementation of each object, one `(object, n)` run per
/// trial.
pub fn e7_reductions(ns: &[usize], sweep: &Sweep) -> Experiment<E7Row> {
    let mut table = Table::new(
        "E7 - Theorem 6.2: wakeup via one shared object (direct LL/SC implementation)",
        [
            "object",
            "n",
            "k (ops/proc)",
            "winner steps",
            "ceil(log4 n)",
            "verdict",
        ],
    );
    let cfg = AdversaryConfig::default();
    let kinds = ReductionKind::all();
    let mut cases = Vec::new();
    for kind in kinds {
        for &n in ns {
            cases.push((kind, n));
        }
    }
    let rows = sweep.run(&cases, |_trial, &(kind, n)| {
        let alg = ObjectWakeup::direct(kind, n);
        let rep = verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &cfg)
            .expect("E7 reduction runs stay within the default executor budgets");
        let ok = rep.wakeup.ok() && rep.bound_holds;
        assert!(ok, "{kind} n={n}");
        E7Row {
            kind,
            n,
            ops_per_process: kind.ops_per_process(),
            winner_steps: rep.winner_steps,
            bound: ceil_log4(n),
            ok,
        }
    });
    for r in &rows {
        table.row([
            r.kind.label().to_string(),
            r.n.to_string(),
            r.ops_per_process.to_string(),
            r.winner_steps.to_string(),
            r.bound.to_string(),
            "PASS".to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E8/E9: construction costs at one `n`.
#[derive(Clone, Debug)]
pub struct E8Row {
    /// Number of processes.
    pub n: usize,
    /// ADT Group-Update tree, adversary schedule.
    pub adt: u64,
    /// Naive LL/SC combining tree, adversary schedule.
    pub naive_tree: u64,
    /// Herlihy announce-and-help, adversary schedule.
    pub herlihy: u64,
    /// Direct LL/SC object, adversary schedule.
    pub direct: u64,
}

/// E8/E9: the tightness sweep — worst-case shared ops per operation for
/// every construction under the Figure-2 adversary. Each
/// `(n, construction)` measurement is one trial.
pub fn e8_universal_constructions(ns: &[usize], sweep: &Sweep) -> Experiment<E8Row> {
    let mut table = Table::new(
        "E8/E9 - worst-case shared ops per operation (fetch&increment under the adversary)",
        [
            "n",
            "adt-tree",
            "naive-tree",
            "herlihy",
            "direct",
            "log2(n)+2",
        ],
    );
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    const IMPS: usize = 4;
    let mut cases = Vec::new();
    for &n in ns {
        for imp in 0..IMPS {
            cases.push((n, imp));
        }
    }
    let costs = sweep.run(&cases, |_trial, &(n, imp)| {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let imp: Box<dyn ObjectImplementation> = match imp {
            0 => Box::new(AdtTreeUniversal::new(spec.clone())),
            1 => Box::new(CombiningTreeUniversal::new(spec.clone())),
            2 => Box::new(HerlihyUniversal::new(spec.clone())),
            _ => Box::new(DirectLlSc::new(spec.clone())),
        };
        measure(
            imp.as_ref(),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .expect("E8 measurements complete within the configured budgets")
        .max_ops
    });
    let mut rows = Vec::new();
    for (group, &n) in costs.chunks_exact(IMPS).zip(ns) {
        let row = E8Row {
            n,
            adt: group[0],
            naive_tree: group[1],
            herlihy: group[2],
            direct: group[3],
        };
        table.row([
            n.to_string(),
            row.adt.to_string(),
            row.naive_tree.to_string(),
            row.herlihy.to_string(),
            row.direct.to_string(),
            ((n as f64).log2() as u64 + 2).to_string(),
        ]);
        rows.push(row);
    }
    Experiment { table, rows }
}

/// One row of E9: one construction under every schedule.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// The construction's name.
    pub implementation: String,
    /// Number of processes.
    pub n: usize,
    /// Worst-case ops under the contention-free sequential schedule
    /// (`None` where the schedule is unsupported — the ADT tree's
    /// followers poll and need fairness).
    pub sequential: Option<u64>,
    /// Worst-case ops under round-robin.
    pub round_robin: u64,
    /// Worst-case ops under a seeded random interleaving.
    pub random: u64,
    /// Worst-case ops under the Figure-2 adversary.
    pub adversary: u64,
}

/// E9: schedule ablation — how each construction's worst-case cost depends
/// on the schedule, complementing E8's adversary-only sweep. Each
/// `(n, construction)` row (four measurements) is one trial.
pub fn e9_schedule_ablation(ns: &[usize], sweep: &Sweep) -> Experiment<E9Row> {
    let mut table = Table::new(
        "E9 - schedule ablation: worst-case shared ops per operation (fetch&increment)",
        [
            "construction",
            "n",
            "sequential",
            "round-robin",
            "random",
            "adversary",
        ],
    );
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    const IMPS: usize = 4;
    let mut cases = Vec::new();
    for &n in ns {
        for imp in 0..IMPS {
            cases.push((n, imp));
        }
    }
    let rows = sweep.run(&cases, |_trial, &(n, imp)| {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let (imp, supports_sequential): (Box<dyn ObjectImplementation>, bool) = match imp {
            0 => (Box::new(AdtTreeUniversal::new(spec.clone())), false),
            1 => (Box::new(CombiningTreeUniversal::new(spec.clone())), true),
            2 => (Box::new(HerlihyUniversal::new(spec.clone())), true),
            _ => (Box::new(DirectLlSc::new(spec.clone())), true),
        };
        let run = |kind: ScheduleKind| {
            measure(imp.as_ref(), spec.as_ref(), n, &ops, kind, &cfg)
                .expect("E9 measurements complete within the configured budgets")
                .max_ops
        };
        E9Row {
            implementation: imp.name(),
            n,
            sequential: supports_sequential.then(|| run(ScheduleKind::Sequential)),
            round_robin: run(ScheduleKind::RoundRobin),
            random: run(ScheduleKind::RandomInterleave { seed: 17 }),
            adversary: run(ScheduleKind::Adversary),
        }
    });
    for row in &rows {
        table.row([
            row.implementation.clone(),
            row.n.to_string(),
            row.sequential
                .map(|v| v.to_string())
                .unwrap_or_else(|| "n/a".into()),
            row.round_robin.to_string(),
            row.random.to_string(),
            row.adversary.to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E10: direct-implementation costs.
#[derive(Clone, Debug)]
pub struct E10Row {
    /// Number of processes.
    pub n: usize,
    /// Solo (sequential-schedule) cost.
    pub solo: u64,
    /// Contended (adversary-schedule) cost.
    pub contended: u64,
    /// The oblivious `O(log n)` tree under the adversary, for contrast.
    pub oblivious_tree: u64,
}

/// E10: the non-oblivious escape hatch — the direct LL/SC object costs a
/// constant 2 ops solo (below any growing bound), at the price of `Θ(n)`
/// under full contention. One `n` per trial.
pub fn e10_direct_escape_hatch(ns: &[usize], sweep: &Sweep) -> Experiment<E10Row> {
    let mut table = Table::new(
        "E10 - semantics-exploiting direct LL/SC object: solo vs contended",
        [
            "n",
            "direct solo",
            "direct contended",
            "adt-tree (adversary)",
        ],
    );
    let cfg = MeasureConfig {
        check_linearizability: false,
        ..MeasureConfig::default()
    };
    let rows = sweep.run(ns, |_trial, &n| {
        let spec = Arc::new(FetchIncrement::new(32));
        let ops = vec![FetchIncrement::op(); n];
        let direct = DirectLlSc::new(spec.clone());
        let solo = measure(
            &direct,
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Sequential,
            &cfg,
        )
        .expect("E10 solo runs complete within the configured budgets")
        .max_ops;
        let contended = measure(
            &direct,
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .expect("E10 adversary runs complete within the configured budgets")
        .max_ops;
        let tree = measure(
            &AdtTreeUniversal::new(spec.clone()),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            &cfg,
        )
        .expect("E10 tree runs complete within the configured budgets")
        .max_ops;
        assert_eq!(solo, 2, "solo cost is constant");
        E10Row {
            n,
            solo,
            contended,
            oblivious_tree: tree,
        }
    });
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.solo.to_string(),
            r.contended.to_string(),
            r.oblivious_tree.to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E10b: structural implementations' solo cost vs data size.
#[derive(Clone, Debug)]
pub struct E10bRow {
    /// Implementation name.
    pub implementation: String,
    /// Initial items in the structure.
    pub initial: usize,
    /// Solo shared ops for one operation.
    pub solo_ops: u64,
}

/// E10b: the *structural* escape hatches — pointer-based LL/SC queue and
/// stack whose solo per-operation cost is a small constant regardless of
/// structure size (contrast with every oblivious construction's Ω(log n)).
/// Each initial size (queue + stack measurement) is one trial.
pub fn e10b_structural_escape_hatches(sizes: &[usize], sweep: &Sweep) -> Experiment<E10bRow> {
    use llsc_objects::{Queue, Stack};
    use llsc_universal::{MsQueue, TreiberStack};
    let mut table = Table::new(
        "E10b - structural LL/SC implementations: solo ops per operation vs structure size",
        ["implementation", "initial items", "solo ops"],
    );
    let cfg = MeasureConfig::default();
    let pairs = sweep.run(sizes, |_trial, &initial| {
        let spec = Arc::new(Queue::with_numbered_items(initial));
        let imp = MsQueue::new(Queue::with_numbered_items(initial));
        let ops = vec![Queue::dequeue_op()];
        let r = measure(&imp, spec.as_ref(), 1, &ops, ScheduleKind::Sequential, &cfg)
            .expect("E10b solo queue runs complete within the configured budgets");
        assert!(r.linearizable);
        let queue_row = E10bRow {
            implementation: imp.name(),
            initial,
            solo_ops: r.max_ops,
        };

        let spec = Arc::new(Stack::with_numbered_items(initial));
        let imp = TreiberStack::new(Stack::with_numbered_items(initial));
        let ops = vec![Stack::pop_op()];
        let r = measure(&imp, spec.as_ref(), 1, &ops, ScheduleKind::Sequential, &cfg)
            .expect("E10b solo stack runs complete within the configured budgets");
        assert!(r.linearizable);
        let stack_row = E10bRow {
            implementation: imp.name(),
            initial,
            solo_ops: r.max_ops,
        };
        [queue_row, stack_row]
    });
    let rows: Vec<E10bRow> = pairs.into_iter().flatten().collect();
    for r in &rows {
        table.row([
            r.implementation.clone(),
            r.initial.to_string(),
            r.solo_ops.to_string(),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E12: multi-use amortised costs of the direct object.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// Number of processes.
    pub n: usize,
    /// Operations per process.
    pub k: usize,
    /// Amortised worst cost, solo schedule.
    pub solo: f64,
    /// Amortised worst cost, adversary schedule.
    pub adversary: f64,
}

/// E12: `k`-use amortised shared-access cost of the direct LL/SC object
/// (Corollary 6.1's `k`-use setting, measured from the other side). One
/// `(n, k)` cell per trial.
pub fn e12_multi_use(ns: &[usize], ks: &[usize], sweep: &Sweep) -> Experiment<E12Row> {
    use llsc_universal::measure_multi_use;
    let mut table = Table::new(
        "E12 - k-use amortised shared ops per operation (direct LL/SC fetch&increment)",
        ["n", "k", "solo", "adversary"],
    );
    let mut cases = Vec::new();
    for &n in ns {
        for &k in ks {
            cases.push((n, k));
        }
    }
    let rows = sweep.run(&cases, |_trial, &(n, k)| {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp: Arc<dyn ObjectImplementation> = Arc::new(DirectLlSc::new(spec.clone()));
        let ops: Vec<Vec<llsc_shmem::Value>> =
            (0..n).map(|_| vec![FetchIncrement::op(); k]).collect();
        let solo = measure_multi_use(
            Arc::clone(&imp),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Sequential,
            100_000_000,
        )
        .expect("E12 solo runs complete within the step budget");
        let adv = measure_multi_use(
            Arc::clone(&imp),
            spec.as_ref(),
            n,
            &ops,
            ScheduleKind::Adversary,
            100_000_000,
        )
        .expect("E12 adversary runs complete within the step budget");
        assert!(solo.responses_consistent && adv.responses_consistent);
        E12Row {
            n,
            k,
            solo: solo.max_amortised,
            adversary: adv.max_amortised,
        }
    });
    for r in &rows {
        table.row([
            r.n.to_string(),
            r.k.to_string(),
            format!("{:.2}", r.solo),
            format!("{:.2}", r.adversary),
        ]);
    }
    Experiment { table, rows }
}

/// One row of E13: appendix-claims checking for one algorithm.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processes (subsets are exhaustive).
    pub n: usize,
    /// Total violations over all subsets (claims + Lemma 5.2).
    pub violations: usize,
    /// Total simulated executor events across the sweep behind this row.
    pub events: u64,
    /// Of [`E13Row::events`], how many were replayed from a Gray-code
    /// checkpoint instead of re-executed (see
    /// [`llsc_core::SubsetSweepReport::replayed_events`]).
    pub replayed: u64,
}

/// E13: the appendix claims (A.2-A.9) plus Lemma 5.2, exhaustively over
/// subsets, for every shipped wakeup algorithm. The `2^n` subsets of each
/// check fan out over the sweep.
pub fn e13_appendix_claims(ns: &[usize], sweep: &Sweep) -> Experiment<E13Row> {
    let mut table = Table::new(E13_TITLE, ["algorithm", "n", "subsets", "violations"]);
    let cfg = AdversaryConfig::default();
    let mut rows = Vec::new();
    for alg in correct_algorithms()
        .into_iter()
        .chain(randomized_algorithms())
    {
        for &n in ns {
            let report =
                indist_all_subsets(alg.as_ref(), n, Arc::new(ZeroTosses), &cfg, true, sweep)
                    .expect("E13 subset runs stay within the default executor budgets");
            let violations = report.violations.len();
            assert_eq!(violations, 0, "{} n={n}", alg.name());
            table.row([
                alg.name().to_string(),
                n.to_string(),
                (1u64 << n).to_string(),
                violations.to_string(),
            ]);
            rows.push(E13Row {
                algorithm: alg.name().to_string(),
                n,
                violations,
                events: report.events,
                replayed: report.replayed_events,
            });
        }
    }
    Experiment { table, rows }
}

/// One row of E14: stress-portfolio outcomes.
#[derive(Clone, Debug)]
pub struct E14Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Schedules tried.
    pub tried: usize,
    /// Schedules passed.
    pub passed: usize,
    /// Whether the algorithm is expected to pass everything.
    pub expected_clean: bool,
}

/// E14: the partial-schedule stress portfolio over correct algorithms and
/// strawmen — what the Figure-2 adversary alone cannot show. Each
/// algorithm's portfolio schedules fan out over the sweep.
pub fn e14_stress_portfolio(n: usize, sweep: &Sweep) -> Experiment<E14Row> {
    use llsc_core::{standard_portfolio, stress_wakeup_sweep};
    use llsc_wakeup::strawman_algorithms;
    let mut table = Table::new(
        "E14 - wakeup stress portfolio (partition/sequential/random schedules)",
        ["algorithm", "tried", "passed", "verdict"],
    );
    let portfolio = standard_portfolio(n, 4);
    let mut rows = Vec::new();
    let cases: Vec<(Box<dyn Algorithm>, bool)> = correct_algorithms()
        .into_iter()
        .map(|a| (a, true))
        .chain(strawman_algorithms().into_iter().map(|a| (a, false)))
        .collect();
    for (alg, expected_clean) in cases {
        let report = stress_wakeup_sweep(
            alg.as_ref(),
            n,
            Arc::new(ZeroTosses),
            &portfolio,
            5_000_000,
            sweep,
        )
        .expect("E14 stress schedules stay within the default executor budgets");
        if expected_clean {
            assert!(report.ok(), "{}: {report}", alg.name());
        } else {
            assert!(!report.ok(), "{} should fail stress", alg.name());
        }
        table.row([
            alg.name().to_string(),
            report.schedules_tried.to_string(),
            report.passed.to_string(),
            if report.ok() { "clean" } else { "caught" }.to_string(),
        ]);
        rows.push(E14Row {
            algorithm: alg.name().to_string(),
            tried: report.schedules_tried,
            passed: report.passed,
            expected_clean,
        });
    }
    Experiment { table, rows }
}

/// E5 extra: the tournament winner across a wide sweep — the tightness
/// witness for the wakeup problem itself. One `n` per trial.
pub fn e5_tournament_tightness(ns: &[usize], sweep: &Sweep) -> Experiment<(usize, u64, u64)> {
    let mut table = Table::new(
        "E5b - tournament wakeup: winner steps vs the log4 bound (tightness for wakeup)",
        ["n", "ceil(log4 n)", "winner steps", "ratio"],
    );
    let cfg = AdversaryConfig {
        track_up_history: false,
        ..AdversaryConfig::default()
    };
    let rows = sweep.run(ns, |_trial, &n| {
        let rep = verify_lower_bound(&TournamentWakeup, n, Arc::new(ZeroTosses), &cfg)
            .expect("E5b runs stay within the default executor budgets");
        assert!(rep.wakeup.ok() && rep.bound_holds);
        (n, ceil_log4(n), rep.winner_steps)
    });
    for &(n, bound, winner_steps) in &rows {
        table.row([
            n.to_string(),
            bound.to_string(),
            winner_steps.to_string(),
            format!("{:.2}", winner_steps as f64 / bound.max(1) as f64),
        ]);
    }
    Experiment { table, rows }
}

/// Attaches a serialized [`ReproCase`] to every isolated trial failure.
///
/// `case_for` rebuilds the failing trial's inputs (plans re-derived from
/// the failure's final-attempt seed); this helper stamps the provenance,
/// re-executes the case once through the panic-isolated classifier to
/// record its ground-truth outcome and failure class, and stores the
/// JSON on the failure row so `--repro-dir` (and the artifact) can ship
/// it to `llsc replay` / `llsc shrink`.
fn attach_repro(
    failures: &mut [TrialFailure],
    sweep: &Sweep,
    mut case_for: impl FnMut(&TrialFailure) -> ReproCase,
) {
    for failure in failures {
        let mut case = case_for(failure);
        case.provenance = Some(Provenance {
            sweep_seed: sweep.seed,
            trial_index: failure.index,
            attempt: failure.attempts.saturating_sub(1),
        });
        if let Some(alg) = crate::repro::resolve_algorithm(&case.algorithm, case.n) {
            let run = crate::repro::run_case_with(&case, alg.as_ref());
            case.outcome = run.outcome_debug;
            case.class = run.class;
        }
        failure.repro = Some(case.to_json());
    }
}

/// One row of E15: how one wakeup solution degrades when `crashed`
/// processes are crash-faulted mid-run.
#[derive(Clone, Debug)]
pub struct E15Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of crash-faulted processes (`k`).
    pub crashed: usize,
    /// Trials run for this `(algorithm, k)` cell.
    pub trials: usize,
    /// Trials that completed anyway (every victim's crash point fell
    /// after its termination, so nobody actually died).
    pub completed: usize,
    /// Trials the executor correctly classified as
    /// [`RunOutcome::Crashed`].
    pub crash_reported: usize,
    /// Trials that exhausted the event budget while survivors spun on a
    /// dead process.
    pub budget_exhausted: usize,
    /// Whether every trial's run prefix satisfied the checkable wakeup
    /// conditions (no premature winner, binary returns).
    pub safety_ok: bool,
}

/// The algorithms E15 degrades: the three wakeup solutions the paper's
/// bound covers plus the oblivious universal construction solving wakeup
/// through the fetch&increment reduction.
pub(crate) fn e15_algorithm(idx: usize, n: usize) -> Box<dyn Algorithm> {
    match idx {
        0 => Box::new(TournamentWakeup),
        1 => Box::new(CounterWakeup),
        2 => Box::new(RandomizedCounterWakeup),
        3 => {
            let kind = ReductionKind::FetchIncrement;
            Box::new(ObjectWakeup::new(
                kind,
                n,
                Arc::new(AdtTreeUniversal::new(kind.spec_for(n))),
            ))
        }
        _ => unreachable!("E15 has 4 algorithms"),
    }
}

/// The step cap [`CrashScheduler::drive`] runs each E15 trial under; runs
/// a crash leaves spinning stop here (and classify as `Crashed`) unless
/// the event budget fires first.
const E15_MAX_STEPS: u64 = 40_000;

/// E15: graceful degradation under crash faults. Each trial runs one
/// wakeup algorithm under a round-robin schedule with `k` processes
/// crash-faulted at seeded points ([`CrashPlan::seeded`]), then classifies
/// the result with [`Executor::run_outcome`] and checks the surviving run
/// prefix against the wakeup specification. `k = 0` trials must complete —
/// a starved `max_events` makes them panic, which the panic-isolated
/// sweep reports as [`TrialFailure`]s instead of aborting the experiment.
///
/// Trials fan out over the sweep; rows and failures are merged in index
/// order, so the output is byte-identical at every thread count.
pub fn e15_crash_degradation(
    n: usize,
    ks: &[usize],
    reps: usize,
    max_events: u64,
    sweep: &Sweep,
) -> (Experiment<E15Row>, Vec<TrialFailure>) {
    const ALGS: usize = 4;
    assert!(reps >= 1, "need at least one repetition per cell");
    let mut items = Vec::with_capacity(ALGS * ks.len() * reps);
    for a in 0..ALGS {
        for &k in ks {
            for rep in 0..reps {
                items.push((a, k, rep));
            }
        }
    }

    let names: Vec<String> = (0..ALGS)
        .map(|a| e15_algorithm(a, n).name().to_string())
        .collect();
    let outcomes = sweep.run_fallible_with(
        &items,
        |trial, &(a, k, _rep)| {
            let alg = e15_algorithm(a, n);
            let cfg = ExecutorConfig {
                max_events,
                ..ExecutorConfig::default()
            };
            let mut exec = Executor::new(
                alg.as_ref(),
                n,
                Arc::new(SeededTosses::new(trial.seed)),
                cfg,
            );
            // Crash points land inside the early part of the run, where every
            // algorithm still has live waiters to strand.
            let plan = CrashPlan::seeded(trial.seed, n, k, 8 * n as u64);
            let mut sched = CrashScheduler::new(RoundRobinScheduler::new(), plan);
            // A budget/burst fault is sticky, so `run_outcome` reports it;
            // the drive result itself carries no extra information here.
            let _ = sched.drive(&mut exec, E15_MAX_STEPS);
            let outcome = exec.run_outcome();
            if k == 0 {
                assert!(
                    matches!(outcome, RunOutcome::Completed),
                    "{}: fault-free trial must complete, got {outcome} (seed {:#018x})",
                    alg.name(),
                    trial.seed
                );
            }
            let check = check_wakeup(&exec.into_run());
            (outcome, check.ok())
        },
        |trial, &(a, k, _rep)| {
            format!(
                "alg={} n={n} crash-plan:k={k},window={} tosses=seeded:{:#018x}",
                names[a],
                8 * n as u64,
                trial.seed
            )
        },
    );
    let mut failures = Vec::new();
    let mut cells: Vec<E15Row> = Vec::new();
    for ((a, k, _rep), result) in items.iter().zip(outcomes) {
        if cells
            .last()
            .is_none_or(|c| c.algorithm != names[*a] || c.crashed != *k)
        {
            cells.push(E15Row {
                algorithm: names[*a].clone(),
                crashed: *k,
                trials: 0,
                completed: 0,
                crash_reported: 0,
                budget_exhausted: 0,
                safety_ok: true,
            });
        }
        let cell = cells.last_mut().expect("cell pushed above");
        match result {
            Ok((outcome, safe)) => {
                cell.trials += 1;
                cell.safety_ok &= safe;
                match outcome {
                    RunOutcome::Completed => cell.completed += 1,
                    RunOutcome::Crashed { .. } => cell.crash_reported += 1,
                    RunOutcome::BudgetExhausted { .. } => cell.budget_exhausted += 1,
                    RunOutcome::DivergedLocalBurst { pid } => {
                        unreachable!("E15 local sections are finite, yet {pid} diverged")
                    }
                    RunOutcome::FaultInjected { .. } => {
                        unreachable!("E15 injects crash faults only, never memory faults")
                    }
                }
            }
            Err(f) => failures.push(f),
        }
    }
    attach_repro(&mut failures, sweep, |failure| {
        let (a, k, _rep) = items[failure.index];
        ReproCase {
            experiment: "e15".to_string(),
            algorithm: names[a].clone(),
            n,
            toss: TossSpec::Seeded(failure.derived_seed),
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::seeded(failure.derived_seed, n, k, 8 * n as u64),
            recovery: None,
            faults: FaultPlan::none(),
            max_events,
            max_steps: E15_MAX_STEPS,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        }
    });

    let mut table = Table::new(
        format!("E15 - crash-fault degradation (n = {n}, {reps} trials per cell)"),
        [
            "algorithm",
            "crashed",
            "trials",
            "completed",
            "crash reported",
            "budget exhausted",
            "safety",
        ],
    );
    for r in &cells {
        table.row([
            r.algorithm.clone(),
            r.crashed.to_string(),
            r.trials.to_string(),
            r.completed.to_string(),
            r.crash_reported.to_string(),
            r.budget_exhausted.to_string(),
            if r.safety_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    (Experiment { table, rows: cells }, failures)
}

/// One row of E16: how one fault-hardened wakeup solution degrades as the
/// memory-fault budget grows.
#[derive(Clone, Debug)]
pub struct E16Row {
    /// Algorithm name (the hardened twin's).
    pub algorithm: String,
    /// Fault budget `f`: the plan schedules `f` spurious SC failures plus
    /// `f` register corruptions inside the early event window.
    pub faults: usize,
    /// Trials run for this `(algorithm, f)` cell.
    pub trials: usize,
    /// Trials that terminated with a correct wakeup answer (recovery).
    pub recovered: usize,
    /// Trials that terminated with a wrong answer *and* at least one
    /// published detection — the algorithm knew something was off.
    pub detected_wrong: usize,
    /// Trials that terminated with a wrong answer and no detection — the
    /// failure mode hardening exists to eliminate.
    pub silent_wrong: usize,
    /// Trials that exhausted their step/event budget (honest stalls, e.g.
    /// an orphaned follower polling a corrupted log).
    pub stalled: usize,
    /// Faults actually delivered across the cell's trials
    /// ([`llsc_shmem::FaultStats::total`]).
    pub injected: u64,
    /// Detections published to the telemetry registers across the cell.
    pub detected: u64,
    /// Mean shared-memory accesses per trial — the degradation curve's
    /// cost axis (extra accesses come from retries and backoff).
    pub mean_ops: f64,
}

/// The hardened algorithms E16 degrades: the three hardened wakeup
/// solutions plus the three hardened universal constructions solving
/// wakeup through the fetch&increment reduction.
pub(crate) fn e16_algorithm(idx: usize, n: usize) -> Box<dyn Algorithm> {
    let kind = ReductionKind::FetchIncrement;
    match idx {
        0 => Box::new(HardenedCounterWakeup),
        1 => Box::new(HardenedTournamentWakeup),
        2 => Box::new(HardenedRandomizedCounterWakeup),
        3 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(HardenedDirectLlSc::new(kind.spec_for(n))),
        )),
        4 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(HardenedCombiningTreeUniversal::new(kind.spec_for(n))),
        )),
        5 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(HardenedAdtTreeUniversal::new(kind.spec_for(n))),
        )),
        _ => unreachable!("E16 has 6 algorithms"),
    }
}

/// The unhardened twin of [`e16_algorithm`]`(idx, _)` — the zero-cost
/// baseline every `f = 0` trial is compared against, access for access.
pub(crate) fn e16_unhardened_twin(idx: usize, n: usize) -> Box<dyn Algorithm> {
    let kind = ReductionKind::FetchIncrement;
    match idx {
        0 => Box::new(CounterWakeup),
        1 => Box::new(TournamentWakeup),
        2 => Box::new(RandomizedCounterWakeup),
        3 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(DirectLlSc::new(kind.spec_for(n))),
        )),
        4 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(CombiningTreeUniversal::new(kind.spec_for(n))),
        )),
        5 => Box::new(ObjectWakeup::new(
            kind,
            n,
            Arc::new(AdtTreeUniversal::new(kind.spec_for(n))),
        )),
        _ => unreachable!("E16 has 6 algorithms"),
    }
}

/// The step cap each E16 trial's round-robin drive runs under; orphaned
/// followers polling a corrupted log stop here and classify as stalled.
const E16_MAX_STEPS: u64 = 40_000;

/// Drives `alg` under a round-robin schedule with `plan`'s memory faults
/// armed and returns `(outcome, total shared accesses, published
/// detections, faults delivered, wakeup check passed)`.
fn e16_trial(
    alg: &dyn Algorithm,
    n: usize,
    seed: u64,
    plan: FaultPlan,
    max_events: u64,
) -> (RunOutcome, u64, u64, u64, bool) {
    let cfg = ExecutorConfig {
        max_events,
        ..ExecutorConfig::default()
    };
    let mut exec = Executor::new(alg, n, Arc::new(SeededTosses::new(seed)), cfg);
    exec.set_fault_plan(plan);
    let _ = exec.drive(&mut RoundRobinScheduler::new(), E16_MAX_STEPS);
    let outcome = exec.run_outcome();
    let ops = exec.memory().stats().total();
    // Both telemetry ranges: the hardened wakeup algorithms publish at
    // one base, the hardened universal constructions at another.
    let detected: u64 = (0..n)
        .map(ProcessId)
        .map(|p| {
            let wakeup = exec.memory().peek(llsc_wakeup::hardened_detect_reg(p));
            let universal = exec.memory().peek(llsc_universal::hardened_detect_reg(p));
            wakeup.as_int().unwrap_or(0).max(0) as u64
                + universal.as_int().unwrap_or(0).max(0) as u64
        })
        .sum();
    let injected = exec.fault_stats().total();
    let safe = check_wakeup(&exec.into_run()).ok();
    (outcome, ops, detected, injected, safe)
}

/// E16: graceful degradation under memory faults. Each trial runs one
/// *hardened* wakeup solution under a round-robin schedule with a seeded
/// [`FaultPlan`] delivering up to `f` spurious SC failures and `f`
/// register corruptions inside the early event window, then classifies
/// the result: **recovered** (terminated, correct answer),
/// **detected-wrong** (wrong answer, but the algorithm published a
/// detection), **silent-wrong** (wrong answer, no detection), or
/// **stalled** (budget exhausted, e.g. an orphaned follower honestly
/// polling a corrupted log).
///
/// Every `f = 0` trial must recover *and* spend exactly as many shared
/// accesses as its unhardened twin under the same seed — the zero-cost
/// guarantee. A violation panics, which the panic-isolated sweep reports
/// as a [`TrialFailure`] (with the fault plan in its context) instead of
/// aborting the experiment. Rows and failures merge in index order, so
/// the output is byte-identical at every thread count.
pub fn e16_fault_degradation(
    n: usize,
    fs: &[usize],
    reps: usize,
    max_events: u64,
    sweep: &Sweep,
) -> (Experiment<E16Row>, Vec<TrialFailure>) {
    const ALGS: usize = 6;
    assert!(reps >= 1, "need at least one repetition per cell");
    let mut items = Vec::with_capacity(ALGS * fs.len() * reps);
    for a in 0..ALGS {
        for &f in fs {
            for rep in 0..reps {
                items.push((a, f, rep));
            }
        }
    }

    // The reduction wrapper's name alone does not say which hardened
    // construction backs it, so the three `ObjectWakeup` rows carry
    // explicit labels.
    let names: Vec<String> = (0..ALGS)
        .map(|a| match a {
            3 => "wakeup-from-fetch&increment[hardened-direct-llsc]".to_string(),
            4 => "wakeup-from-fetch&increment[hardened-combining-tree]".to_string(),
            5 => "wakeup-from-fetch&increment[hardened-adt-group-update]".to_string(),
            _ => e16_algorithm(a, n).name().to_string(),
        })
        .collect();
    // Fault times land inside the early part of the run, where every
    // algorithm still has SCs in flight and registers worth corrupting.
    let plan_for = |seed: u64, f: usize| FaultPlan::seeded(seed, f, f, 4 * n as u64);
    let outcomes = sweep.run_fallible_with(
        &items,
        |trial, &(a, f, _rep)| {
            let alg = e16_algorithm(a, n);
            let plan = plan_for(trial.seed, f);
            let (outcome, ops, detected, injected, safe) =
                e16_trial(alg.as_ref(), n, trial.seed, plan, max_events);
            if f == 0 {
                assert!(
                    matches!(outcome, RunOutcome::Completed) && safe,
                    "{}: fault-free trial must complete correctly, got {outcome} \
                     (seed {:#018x})",
                    alg.name(),
                    trial.seed
                );
                let twin = e16_unhardened_twin(a, n);
                let (_, twin_ops, _, _, _) =
                    e16_trial(twin.as_ref(), n, trial.seed, FaultPlan::none(), max_events);
                assert_eq!(
                    ops,
                    twin_ops,
                    "{}: hardening must be zero-cost without faults, but spent {ops} \
                     accesses vs the twin's {twin_ops} (seed {:#018x})",
                    alg.name(),
                    trial.seed
                );
            }
            (outcome, ops, detected, safe, injected)
        },
        |trial, &(a, f, _rep)| {
            format!(
                "alg={} n={n} {} tosses=seeded:{:#018x}",
                names[a],
                plan_for(trial.seed, f).summary(),
                trial.seed
            )
        },
    );

    let mut failures = Vec::new();
    let mut cells: Vec<E16Row> = Vec::new();
    let mut cell_ops: Vec<u64> = Vec::new();
    for ((a, f, _rep), result) in items.iter().zip(outcomes) {
        if cells
            .last()
            .is_none_or(|c| c.algorithm != names[*a] || c.faults != *f)
        {
            cells.push(E16Row {
                algorithm: names[*a].clone(),
                faults: *f,
                trials: 0,
                recovered: 0,
                detected_wrong: 0,
                silent_wrong: 0,
                stalled: 0,
                injected: 0,
                detected: 0,
                mean_ops: 0.0,
            });
            cell_ops.push(0);
        }
        let cell = cells.last_mut().expect("cell pushed above");
        let ops_sum = cell_ops.last_mut().expect("pushed alongside the cell");
        match result {
            Ok((outcome, ops, detected, safe, injected)) => {
                cell.trials += 1;
                cell.injected += injected;
                cell.detected += detected;
                *ops_sum += ops;
                match outcome {
                    RunOutcome::Completed | RunOutcome::FaultInjected { .. } => {
                        if safe {
                            cell.recovered += 1;
                        } else if detected > 0 {
                            cell.detected_wrong += 1;
                        } else {
                            cell.silent_wrong += 1;
                        }
                    }
                    RunOutcome::BudgetExhausted { .. } => cell.stalled += 1,
                    RunOutcome::Crashed { pid } => {
                        unreachable!("E16 injects memory faults only, yet {pid} crashed")
                    }
                    RunOutcome::DivergedLocalBurst { pid } => {
                        unreachable!("E16 local sections are finite, yet {pid} diverged")
                    }
                }
            }
            Err(fail) => failures.push(fail),
        }
    }
    for (cell, &ops) in cells.iter_mut().zip(&cell_ops) {
        cell.mean_ops = if cell.trials == 0 {
            0.0
        } else {
            ops as f64 / cell.trials as f64
        };
    }
    attach_repro(&mut failures, sweep, |failure| {
        let (a, f, _rep) = items[failure.index];
        ReproCase {
            experiment: "e16".to_string(),
            algorithm: names[a].clone(),
            n,
            toss: TossSpec::Seeded(failure.derived_seed),
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::none(),
            recovery: None,
            faults: plan_for(failure.derived_seed, f),
            max_events,
            max_steps: E16_MAX_STEPS,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        }
    });

    let mut table = Table::new(
        format!("E16 - memory-fault degradation (n = {n}, {reps} trials per cell)"),
        [
            "algorithm",
            "faults",
            "trials",
            "recovered",
            "detected wrong",
            "silent wrong",
            "stalled",
            "injected",
            "detected",
            "mean ops",
        ],
    );
    for r in &cells {
        table.row([
            r.algorithm.clone(),
            r.faults.to_string(),
            r.trials.to_string(),
            r.recovered.to_string(),
            r.detected_wrong.to_string(),
            r.silent_wrong.to_string(),
            r.stalled.to_string(),
            r.injected.to_string(),
            r.detected.to_string(),
            format!("{:.1}", r.mean_ops),
        ]);
    }
    (Experiment { table, rows: cells }, failures)
}

/// One row of E17: the failure-class histogram of one algorithm at one
/// chaos intensity, plus the median minimal-reproducer size.
#[derive(Clone, Debug)]
pub struct E17Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Chaos intensity: the [`ChaosPlan`] schedules `intensity / 2` crash
    /// victims plus `intensity` spurious SC failures and `intensity`
    /// register corruptions, under a seeded random schedule.
    pub intensity: usize,
    /// Trials run for this `(algorithm, intensity)` cell.
    pub trials: usize,
    /// Trials that terminated with a correct wakeup answer.
    pub recovered: usize,
    /// Trials that terminated wrong with a published detection.
    pub detected_wrong: usize,
    /// Trials that terminated wrong with no detection.
    pub silent_wrong: usize,
    /// Trials that exhausted their step/event budget.
    pub stalled: usize,
    /// Trials the executor classified as [`RunOutcome::Crashed`].
    pub crashed: usize,
    /// Trials that aborted (local-burst divergence or a panic inside the
    /// isolated execution).
    pub aborted: usize,
    /// Median size (lower median) of the minimal reproducers shrunk from
    /// this cell's non-recovered trials; `None` when every trial
    /// recovered.
    pub median_shrunk: Option<usize>,
}

/// The algorithms E17 stresses: the three hardened wakeup solutions and
/// their unhardened twins, side by side under identical chaos plans.
pub(crate) fn e17_algorithm(idx: usize, n: usize) -> Box<dyn Algorithm> {
    if idx < 3 {
        e16_algorithm(idx, n)
    } else {
        e16_unhardened_twin(idx - 3, n)
    }
}

/// The step cap each E17 trial's random-schedule drive runs under.
const E17_MAX_STEPS: u64 = 20_000;

/// The per-trial replay budget [`crate::repro::shrink_case`] gets when
/// minimizing a failing chaos trial.
const E17_SHRINK_BUDGET: usize = 160;

/// E17: combined chaos mode. Each trial composes every adversary the
/// fault experiments exercise separately — crash faults, memory faults
/// (spurious SC failures and register corruption), and a seeded random
/// schedule — into one [`ChaosPlan`], runs a hardened wakeup solution or
/// its unhardened twin under it, and classifies the result with the
/// shared failure-class vocabulary ([`crate::repro::classify`]).
///
/// Every non-recovered trial is packaged as a [`ReproCase`] and shrunk
/// on the spot ([`crate::repro::shrink_case`]); the cell reports the
/// median minimal-reproducer size — how small the schedule/fault
/// evidence for each failure mode gets. `intensity = 0` trials must
/// recover; a violation panics, which the panic-isolated sweep reports
/// as a [`TrialFailure`] with an attached reproducer. Rows and failures
/// merge in index order, so the output is byte-identical at every thread
/// count.
pub fn e17_chaos_mode(
    n: usize,
    intensities: &[usize],
    reps: usize,
    max_events: u64,
    sweep: &Sweep,
) -> (Experiment<E17Row>, Vec<TrialFailure>) {
    const ALGS: usize = 6;
    assert!(reps >= 1, "need at least one repetition per cell");
    let mut items = Vec::with_capacity(ALGS * intensities.len() * reps);
    for a in 0..ALGS {
        for &intensity in intensities {
            for rep in 0..reps {
                items.push((a, intensity, rep));
            }
        }
    }

    let names: Vec<String> = (0..ALGS)
        .map(|a| e17_algorithm(a, n).name().to_string())
        .collect();
    let case_for = |a: usize, intensity: usize, seed: u64| {
        ChaosPlan::seeded(seed, n, intensity, 8 * n as u64).to_case(
            "e17",
            &names[a],
            n,
            TossSpec::Seeded(seed),
            max_events,
            E17_MAX_STEPS,
        )
    };
    let outcomes = sweep.run_fallible_with(
        &items,
        |trial, &(a, intensity, _rep)| {
            let alg = e17_algorithm(a, n);
            let mut case = case_for(a, intensity, trial.seed);
            let run = crate::repro::run_case_with(&case, alg.as_ref());
            if intensity == 0 {
                assert!(
                    run.class == "recovered",
                    "{}: chaos-free trial must recover, got {} ({}) (seed {:#018x})",
                    names[a],
                    run.class,
                    run.outcome_debug,
                    trial.seed
                );
            }
            let shrunk = if run.class == "recovered" {
                None
            } else {
                case.outcome = run.outcome_debug.clone();
                case.class = run.class.clone();
                let report = crate::repro::shrink_case(&case, E17_SHRINK_BUDGET)
                    .expect("E17 algorithm names resolve through the registry");
                Some(report.final_size)
            };
            (run.class, shrunk)
        },
        |trial, &(a, intensity, _rep)| {
            format!(
                "alg={} n={n} {} tosses=seeded:{:#018x}",
                names[a],
                ChaosPlan::seeded(trial.seed, n, intensity, 8 * n as u64).summary(),
                trial.seed
            )
        },
    );

    let mut failures = Vec::new();
    let mut cells: Vec<E17Row> = Vec::new();
    let mut cell_shrunk: Vec<Vec<usize>> = Vec::new();
    for ((a, intensity, _rep), result) in items.iter().zip(outcomes) {
        if cells
            .last()
            .is_none_or(|c| c.algorithm != names[*a] || c.intensity != *intensity)
        {
            cells.push(E17Row {
                algorithm: names[*a].clone(),
                intensity: *intensity,
                trials: 0,
                recovered: 0,
                detected_wrong: 0,
                silent_wrong: 0,
                stalled: 0,
                crashed: 0,
                aborted: 0,
                median_shrunk: None,
            });
            cell_shrunk.push(Vec::new());
        }
        let cell = cells.last_mut().expect("cell pushed above");
        let shrunk = cell_shrunk.last_mut().expect("pushed alongside the cell");
        match result {
            Ok((class, size)) => {
                cell.trials += 1;
                match class.as_str() {
                    "recovered" => cell.recovered += 1,
                    "detected-wrong" => cell.detected_wrong += 1,
                    "silent-wrong" => cell.silent_wrong += 1,
                    "stalled" => cell.stalled += 1,
                    "crashed" => cell.crashed += 1,
                    _ => cell.aborted += 1,
                }
                shrunk.extend(size);
            }
            Err(fail) => failures.push(fail),
        }
    }
    for (cell, sizes) in cells.iter_mut().zip(&mut cell_shrunk) {
        sizes.sort_unstable();
        cell.median_shrunk = if sizes.is_empty() {
            None
        } else {
            Some(sizes[(sizes.len() - 1) / 2])
        };
    }
    attach_repro(&mut failures, sweep, |failure| {
        let (a, intensity, _rep) = items[failure.index];
        case_for(a, intensity, failure.derived_seed)
    });

    let mut table = Table::new(
        format!("E17 - combined chaos mode (n = {n}, {reps} trials per cell)"),
        [
            "algorithm",
            "intensity",
            "trials",
            "recovered",
            "detected wrong",
            "silent wrong",
            "stalled",
            "crashed",
            "aborted",
            "median shrunk size",
        ],
    );
    for r in &cells {
        table.row([
            r.algorithm.clone(),
            r.intensity.to_string(),
            r.trials.to_string(),
            r.recovered.to_string(),
            r.detected_wrong.to_string(),
            r.silent_wrong.to_string(),
            r.stalled.to_string(),
            r.crashed.to_string(),
            r.aborted.to_string(),
            r.median_shrunk
                .map_or_else(|| "-".to_string(), |m| m.to_string()),
        ]);
    }
    (Experiment { table, rows: cells }, failures)
}

/// One row of E19: how one recoverable algorithm's completion rate and
/// remote-memory-reference bill grow with crash intensity under the
/// crash-*recovery* adversary.
#[derive(Clone, Debug)]
pub struct E19Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of crash-recovery victims (`k`, the crash intensity).
    pub crashed: usize,
    /// Trials run for this `(algorithm, k)` cell.
    pub trials: usize,
    /// Trials that completed (every process terminated, possibly after
    /// one or more crash/recovery cycles).
    pub completed: usize,
    /// Trials whose step cap fired while a victim was still down.
    pub crash_reported: usize,
    /// Trials that exhausted their event or step budget with every
    /// process live.
    pub budget_exhausted: usize,
    /// Crashes actually delivered across the cell's trials (re-crashes
    /// under the per-victim budget included).
    pub crashes: u64,
    /// Recoveries performed across the cell's trials.
    pub recoveries: u64,
    /// Total remote memory references under the cache-coherent cost
    /// model across the cell (recovery cold-restarts the victim's cache,
    /// so this is the CC-side recovery-cost curve).
    pub cc_rmrs: u64,
    /// Total remote memory references under the distributed-shared-memory
    /// cost model across the cell.
    pub dsm_rmrs: u64,
    /// Whether every trial satisfied its algorithm's safety property
    /// (wakeup conditions, or token distinctness for the mutex).
    pub safety_ok: bool,
}

/// The recoverable algorithms E19 sweeps: the recoverable mutex and the
/// two recoverable wakeup variants.
pub(crate) fn e19_algorithm(idx: usize) -> Box<dyn Algorithm> {
    match idx {
        0 => Box::new(RecoverableMutex),
        1 => Box::new(RecoverableCounterWakeup),
        2 => Box::new(RecoverableRandCounterWakeup),
        _ => unreachable!("E19 has 3 algorithms"),
    }
}

/// The step cap each E19 trial's recovering drive runs under.
const E19_MAX_STEPS: u64 = 40_000;

/// The crash-recovery parameters every E19 trial (and its attached
/// [`ReproCase`]) runs with: victims come back `n` events after each
/// crash and may be re-crashed once (two crashes per victim in total) —
/// enough to land re-crashes inside recovery sections without making
/// completion hopeless.
pub(crate) fn e19_recovery_spec(n: usize) -> RecoverySpec {
    RecoverySpec {
        delay: n as u64,
        budget: 2,
    }
}

/// E19: recovery cost vs crash intensity. Each trial runs one
/// *recoverable* algorithm under a round-robin schedule with `k`
/// processes crash-faulted at seeded points and revived by the
/// [`RecoveringCrashScheduler`] (crashed processes lose their local state
/// and re-enter through the algorithm's recovery section), then
/// classifies the outcome and bills the run's remote memory references
/// under both the CC and DSM cost models. `k = 0` trials must complete —
/// a starved `max_events` makes them panic, which the panic-isolated
/// sweep reports as [`TrialFailure`]s (each carrying a replayable
/// [`ReproCase`] with its [`RecoverySpec`]) instead of aborting.
///
/// Safety is checked per algorithm: the wakeup variants against the
/// checkable wakeup conditions, the mutex against token distinctness
/// ([`check_mutex_tokens`]). Rows and failures merge in index order, so
/// the output is byte-identical at every thread count.
pub fn e19_recovery_sweep(
    n: usize,
    ks: &[usize],
    reps: usize,
    max_events: u64,
    sweep: &Sweep,
) -> (Experiment<E19Row>, Vec<TrialFailure>) {
    const ALGS: usize = 3;
    assert!(reps >= 1, "need at least one repetition per cell");
    let mut items = Vec::with_capacity(ALGS * ks.len() * reps);
    for a in 0..ALGS {
        for &k in ks {
            for rep in 0..reps {
                items.push((a, k, rep));
            }
        }
    }

    let names: Vec<String> = (0..ALGS)
        .map(|a| e19_algorithm(a).name().to_string())
        .collect();
    let spec = e19_recovery_spec(n);
    let outcomes = sweep.run_fallible_with(
        &items,
        |trial, &(a, k, _rep)| {
            let alg = e19_algorithm(a);
            let cfg = ExecutorConfig {
                max_events,
                ..ExecutorConfig::default()
            };
            let mut exec = Executor::new(
                alg.as_ref(),
                n,
                Arc::new(SeededTosses::new(trial.seed)),
                cfg,
            );
            let plan = CrashPlan::seeded(trial.seed, n, k, 8 * n as u64);
            let mut sched = RecoveringCrashScheduler::new(
                RoundRobinScheduler::new(),
                &plan,
                spec.delay,
                spec.budget,
            );
            let _ = sched.drive(&mut exec, alg.as_ref(), E19_MAX_STEPS);
            let outcome = exec.run_outcome();
            if k == 0 {
                assert!(
                    matches!(outcome, RunOutcome::Completed),
                    "{}: crash-free trial must complete, got {outcome} (seed {:#018x})",
                    alg.name(),
                    trial.seed
                );
            }
            let safe = if a == 0 {
                check_mutex_tokens((0..n).map(|i| exec.verdict(ProcessId(i))), n).is_ok()
            } else {
                check_wakeup(exec.run()).ok()
            };
            let counters = exec.run().counters();
            (
                outcome,
                safe,
                counters.total_crashes(),
                counters.total_recoveries(),
                counters.total_cc_rmrs(),
                counters.total_dsm_rmrs(),
            )
        },
        |trial, &(a, k, _rep)| {
            format!(
                "alg={} n={n} recovery-crash-plan:k={k},window={},delay={},budget={} \
                 tosses=seeded:{:#018x}",
                names[a],
                8 * n as u64,
                spec.delay,
                spec.budget,
                trial.seed
            )
        },
    );
    let mut failures = Vec::new();
    let mut cells: Vec<E19Row> = Vec::new();
    for ((a, k, _rep), result) in items.iter().zip(outcomes) {
        if cells
            .last()
            .is_none_or(|c| c.algorithm != names[*a] || c.crashed != *k)
        {
            cells.push(E19Row {
                algorithm: names[*a].clone(),
                crashed: *k,
                trials: 0,
                completed: 0,
                crash_reported: 0,
                budget_exhausted: 0,
                crashes: 0,
                recoveries: 0,
                cc_rmrs: 0,
                dsm_rmrs: 0,
                safety_ok: true,
            });
        }
        let cell = cells.last_mut().expect("cell pushed above");
        match result {
            Ok((outcome, safe, crashes, recoveries, cc, dsm)) => {
                cell.trials += 1;
                cell.safety_ok &= safe;
                cell.crashes += crashes;
                cell.recoveries += recoveries;
                cell.cc_rmrs += cc;
                cell.dsm_rmrs += dsm;
                match outcome {
                    RunOutcome::Completed => cell.completed += 1,
                    RunOutcome::Crashed { .. } => cell.crash_reported += 1,
                    RunOutcome::BudgetExhausted { .. } => cell.budget_exhausted += 1,
                    RunOutcome::DivergedLocalBurst { pid } => {
                        unreachable!("E19 local sections are finite, yet {pid} diverged")
                    }
                    RunOutcome::FaultInjected { .. } => {
                        unreachable!("E19 injects crash faults only, never memory faults")
                    }
                }
            }
            Err(f) => failures.push(f),
        }
    }
    attach_repro(&mut failures, sweep, |failure| {
        let (a, k, _rep) = items[failure.index];
        ReproCase {
            experiment: "e19".to_string(),
            algorithm: names[a].clone(),
            n,
            toss: TossSpec::Seeded(failure.derived_seed),
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::seeded(failure.derived_seed, n, k, 8 * n as u64),
            recovery: Some(spec),
            faults: FaultPlan::none(),
            max_events,
            max_steps: E19_MAX_STEPS,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        }
    });

    let mut table = Table::new(
        format!(
            "E19 - recovery cost vs crash intensity (n = {n}, {reps} trials per cell, \
             recovery delay {}, crash budget {})",
            spec.delay, spec.budget
        ),
        [
            "algorithm",
            "crashed",
            "trials",
            "completed",
            "crash reported",
            "budget exhausted",
            "crashes",
            "recoveries",
            "CC RMRs",
            "DSM RMRs",
            "safety",
        ],
    );
    for r in &cells {
        table.row([
            r.algorithm.clone(),
            r.crashed.to_string(),
            r.trials.to_string(),
            r.completed.to_string(),
            r.crash_reported.to_string(),
            r.budget_exhausted.to_string(),
            r.crashes.to_string(),
            r.recoveries.to_string(),
            r.cc_rmrs.to_string(),
            r.dsm_rmrs.to_string(),
            if r.safety_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    (Experiment { table, rows: cells }, failures)
}

/// One row of E20: how one algorithm family degrades — and what its
/// recovery costs — as chaos intensity grows, on the simulator backend.
/// The hardware half of E20 lives in `bench_e20` / `llsc bench`
/// (`BENCH_pr10.json`), which runs the same seeded plans through the
/// thread-per-process driver and records sim-vs-hardware divergence.
#[derive(Clone, Debug)]
pub struct E20Row {
    /// Algorithm name.
    pub algorithm: String,
    /// The adversary arm the algorithm's family gets
    /// (`"memory-faults"` for the hardened trio, `"crash-recovery"`
    /// for the recoverable trio — see [`crate::xcheck::chaos_arm`]).
    pub arm: &'static str,
    /// Chaos intensity (scales every armed layer at once).
    pub intensity: usize,
    /// Trials run for this `(algorithm, intensity)` cell.
    pub trials: usize,
    /// Trials that terminated with a correct answer.
    pub recovered: usize,
    /// Trials that terminated wrong with a published detection.
    pub detected_wrong: usize,
    /// Trials that terminated wrong with no detection — the class the
    /// chaos-validated families must never produce (the goldens pin it
    /// at 0).
    pub silent_wrong: usize,
    /// Trials that exhausted their step/event budget.
    pub stalled: usize,
    /// Trials classified [`RunOutcome::Crashed`] (a victim still down
    /// at the step cap).
    pub crashed: usize,
    /// Trials that aborted (local-burst divergence).
    pub aborted: usize,
    /// Crashes delivered across the cell's trials.
    pub crashes: u64,
    /// Recoveries performed across the cell's trials.
    pub recoveries: u64,
    /// Spurious SC failures delivered across the cell's trials.
    pub spurious_sc: u64,
    /// Register corruptions delivered across the cell's trials.
    pub corruptions: u64,
    /// Total CC-model remote memory references across the cell — with
    /// [`E20Row::dsm_rmrs`], the recovery-RMR-cost curve vs intensity.
    pub cc_rmrs: u64,
    /// Total DSM-model remote memory references across the cell.
    pub dsm_rmrs: u64,
}

/// The algorithms E20 stresses: the three hardened wakeup solutions
/// (memory-fault arm, indices 0–2) and the three crash-recoverable
/// algorithms (crash-recovery arm, indices 3–5).
pub fn e20_algorithm(idx: usize, n: usize) -> Box<dyn Algorithm> {
    if idx < 3 {
        e16_algorithm(idx, n)
    } else {
        e19_algorithm(idx - 3)
    }
}

/// The recovery regime of E20's crash-recovery arm (`None` for the
/// hardened trio's memory-fault arm).
pub fn e20_recovery(idx: usize, n: usize) -> Option<RecoverySpec> {
    (idx >= 3).then(|| e19_recovery_spec(n))
}

/// The step cap each E20 trial runs under, on both backends.
pub const E20_MAX_STEPS: u64 = 40_000;

/// Builds the replayable case one E20 trial runs: a chaos plan seeded
/// from `seed`, tailored to algorithm `idx`'s capability arm
/// ([`crate::xcheck::chaos_arm`]), with the arm's recovery regime
/// recorded — so `llsc replay` and the hardware side of E20 run exactly
/// the plan the simulator sweep did.
pub fn e20_case(idx: usize, n: usize, intensity: usize, seed: u64, max_events: u64) -> ReproCase {
    let chaos = ChaosPlan::seeded(seed, n, intensity, 8 * n as u64);
    let recovery = e20_recovery(idx, n);
    let (crashes, faults) = crate::xcheck::chaos_arm(&chaos, recovery);
    let mut case = chaos.to_case(
        "e20",
        e20_algorithm(idx, n).name(),
        n,
        TossSpec::Seeded(seed),
        max_events,
        E20_MAX_STEPS,
    );
    case.crashes = crashes;
    case.faults = faults;
    case.recovery = recovery;
    case
}

/// E20: cross-backend chaos validation, simulator half. Each trial
/// tailors a seeded [`ChaosPlan`] to its algorithm's capability arm
/// ([`crate::xcheck::chaos_arm`]): the hardened wakeup trio faces
/// spurious SC failures and register corruption under an adversarial
/// random schedule; the recoverable trio faces crash/recovery cycles
/// plus spurious SC failures. Every trial is classified with the shared
/// degradation vocabulary and billed under both RMR cost models, so the
/// table reads as *degradation class and recovery RMR cost vs fault
/// intensity*. `intensity = 0` trials must recover; a violation panics,
/// which the panic-isolated sweep reports as a [`TrialFailure`] with an
/// attached reproducer. Rows and failures merge in index order, so the
/// output is byte-identical at every thread count.
///
/// The hardware half runs the same plans through `llsc-atomics`
/// (`bench_e20`, `llsc bench`), where crashes are real thread kills and
/// the fault layer is re-timed onto per-process access clocks.
pub fn e20_chaos_recovery_sweep(
    n: usize,
    intensities: &[usize],
    reps: usize,
    max_events: u64,
    sweep: &Sweep,
) -> (Experiment<E20Row>, Vec<TrialFailure>) {
    const ALGS: usize = 6;
    assert!(reps >= 1, "need at least one repetition per cell");
    let mut items = Vec::with_capacity(ALGS * intensities.len() * reps);
    for a in 0..ALGS {
        for &intensity in intensities {
            for rep in 0..reps {
                items.push((a, intensity, rep));
            }
        }
    }

    let names: Vec<String> = (0..ALGS)
        .map(|a| e20_algorithm(a, n).name().to_string())
        .collect();
    let outcomes = sweep.run_fallible_with(
        &items,
        |trial, &(a, intensity, _rep)| {
            let alg = e20_algorithm(a, n);
            let case = e20_case(a, n, intensity, trial.seed, max_events);
            let run = crate::repro::run_case_with(&case, alg.as_ref());
            if intensity == 0 {
                assert!(
                    run.class == "recovered",
                    "{}: chaos-free trial must recover, got {} ({}) (seed {:#018x})",
                    names[a],
                    run.class,
                    run.outcome_debug,
                    trial.seed
                );
            }
            // Re-execute for the cost counters (run_case_with classifies
            // but does not bill); the replay is deterministic, so the
            // second drive sees the identical run.
            let replayed = llsc_shmem::repro::execute(&case, alg.as_ref());
            let counters = replayed.exec.run().counters();
            let (spurious_sc, corruptions) = match replayed.outcome {
                RunOutcome::FaultInjected {
                    spurious_sc,
                    corruptions,
                } => (spurious_sc, corruptions),
                _ => (0, 0),
            };
            (
                run.class,
                counters.total_crashes(),
                counters.total_recoveries(),
                spurious_sc,
                corruptions,
                counters.total_cc_rmrs(),
                counters.total_dsm_rmrs(),
            )
        },
        |trial, &(a, intensity, _rep)| {
            let recovery = e20_recovery(a, n);
            let arm = if recovery.is_some() {
                "crash-recovery"
            } else {
                "memory-faults"
            };
            format!(
                "alg={} n={n} arm={arm} {} tosses=seeded:{:#018x}",
                names[a],
                ChaosPlan::seeded(trial.seed, n, intensity, 8 * n as u64).summary(),
                trial.seed
            )
        },
    );

    let mut failures = Vec::new();
    let mut cells: Vec<E20Row> = Vec::new();
    for ((a, intensity, _rep), result) in items.iter().zip(outcomes) {
        if cells
            .last()
            .is_none_or(|c| c.algorithm != names[*a] || c.intensity != *intensity)
        {
            cells.push(E20Row {
                algorithm: names[*a].clone(),
                arm: if *a < 3 {
                    "memory-faults"
                } else {
                    "crash-recovery"
                },
                intensity: *intensity,
                trials: 0,
                recovered: 0,
                detected_wrong: 0,
                silent_wrong: 0,
                stalled: 0,
                crashed: 0,
                aborted: 0,
                crashes: 0,
                recoveries: 0,
                spurious_sc: 0,
                corruptions: 0,
                cc_rmrs: 0,
                dsm_rmrs: 0,
            });
        }
        let cell = cells.last_mut().expect("cell pushed above");
        match result {
            Ok((class, crashes, recoveries, sc, co, cc, dsm)) => {
                cell.trials += 1;
                match class.as_str() {
                    "recovered" => cell.recovered += 1,
                    "detected-wrong" => cell.detected_wrong += 1,
                    "silent-wrong" => cell.silent_wrong += 1,
                    "stalled" => cell.stalled += 1,
                    "crashed" => cell.crashed += 1,
                    _ => cell.aborted += 1,
                }
                cell.crashes += crashes;
                cell.recoveries += recoveries;
                cell.spurious_sc += sc;
                cell.corruptions += co;
                cell.cc_rmrs += cc;
                cell.dsm_rmrs += dsm;
            }
            Err(fail) => failures.push(fail),
        }
    }
    attach_repro(&mut failures, sweep, |failure| {
        let (a, intensity, _rep) = items[failure.index];
        e20_case(a, n, intensity, failure.derived_seed, max_events)
    });

    let mut table = Table::new(e20_title(n, reps), E20_HEADERS);
    for r in &cells {
        table.row([
            r.algorithm.clone(),
            r.arm.to_string(),
            r.intensity.to_string(),
            r.trials.to_string(),
            r.recovered.to_string(),
            r.detected_wrong.to_string(),
            r.silent_wrong.to_string(),
            r.stalled.to_string(),
            r.crashed.to_string(),
            r.aborted.to_string(),
            r.crashes.to_string(),
            r.recoveries.to_string(),
            r.spurious_sc.to_string(),
            r.corruptions.to_string(),
            r.cc_rmrs.to_string(),
            r.dsm_rmrs.to_string(),
        ]);
    }
    (Experiment { table, rows: cells }, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_arms_match_family_capabilities_with_zero_silent_wrong() {
        let (exp, failures) =
            e20_chaos_recovery_sweep(6, &[0, 2], 2, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 12, "6 algorithms x 2 intensities");
        for r in &exp.rows {
            assert_eq!(
                r.silent_wrong, 0,
                "{}: chaos-validated families never go silently wrong",
                r.algorithm
            );
            assert_eq!(r.trials, 2);
            assert!(
                r.cc_rmrs > 0 && r.dsm_rmrs > 0,
                "{}: RMRs billed",
                r.algorithm
            );
            if r.intensity == 0 {
                assert_eq!(
                    r.recovered, r.trials,
                    "{}: clean trials recover",
                    r.algorithm
                );
                assert_eq!((r.crashes, r.spurious_sc, r.corruptions), (0, 0, 0));
            }
            match r.arm {
                "memory-faults" => {
                    assert_eq!(
                        (r.crashes, r.recoveries),
                        (0, 0),
                        "{}: the hardened trio never faces the crash layer",
                        r.algorithm
                    );
                }
                "crash-recovery" => {
                    assert_eq!(
                        r.corruptions, 0,
                        "{}: the recoverable trio never faces corruption",
                        r.algorithm
                    );
                    assert_eq!(
                        r.recoveries, r.crashes,
                        "{}: every delivered crash is recovered",
                        r.algorithm
                    );
                }
                other => panic!("unknown arm {other}"),
            }
        }
        // The fault layers actually fire at intensity 2.
        let delivered: u64 = exp
            .rows
            .iter()
            .filter(|r| r.intensity > 0)
            .map(|r| r.crashes + r.spurious_sc + r.corruptions)
            .sum();
        assert!(delivered > 0, "intensity-2 cells must deliver faults");
    }

    #[test]
    fn e20_is_identical_across_thread_counts() {
        let (base, base_f) =
            e20_chaos_recovery_sweep(6, &[0, 2], 2, 2_000_000, &Sweep::sequential());
        for threads in [2, 4] {
            let (par, par_f) =
                e20_chaos_recovery_sweep(6, &[0, 2], 2, 2_000_000, &Sweep::with_threads(threads));
            assert_eq!(par.table.render(), base.table.render(), "threads={threads}");
            assert_eq!(par_f.len(), base_f.len());
        }
    }

    #[test]
    fn e19_recovers_crashes_and_bills_rmrs() {
        let (exp, failures) = e19_recovery_sweep(6, &[0, 2], 3, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 6, "3 algorithms x 2 crash counts");
        for r in &exp.rows {
            assert!(r.safety_ok, "{}: safety must survive recovery", r.algorithm);
            assert_eq!(r.trials, 3);
            assert_eq!(
                r.completed + r.crash_reported + r.budget_exhausted,
                r.trials,
                "{}: every trial classifies",
                r.algorithm
            );
            assert!(
                r.cc_rmrs > 0 && r.dsm_rmrs > 0,
                "{}: RMRs billed",
                r.algorithm
            );
            if r.crashed == 0 {
                assert_eq!(
                    r.completed, 3,
                    "{}: crash-free trials complete",
                    r.algorithm
                );
                assert_eq!((r.crashes, r.recoveries), (0, 0));
            } else {
                assert!(r.crashes > 0, "{}: victims actually crash", r.algorithm);
                assert_eq!(
                    r.recoveries, r.crashes,
                    "{}: every delivered crash is recovered",
                    r.algorithm
                );
            }
        }
    }

    #[test]
    fn e1_small_sweep_passes() {
        let exp = e1_secretive_schedules(&[4, 9], 5, &Sweep::sequential());
        assert_eq!(exp.rows.len(), 2);
        assert!(exp.rows.iter().all(|r| r.worst_movers <= 2));
    }

    #[test]
    fn e3_small_sweep_passes() {
        let exp = e3_up_growth(&[4, 8], &Sweep::sequential());
        assert!(exp.rows.iter().all(|r| r.lemma_5_1));
    }

    #[test]
    fn e5_small_sweep_passes() {
        let exp = e5_wakeup_lower_bound(&[4, 16], &Sweep::sequential());
        assert!(exp
            .rows
            .iter()
            .all(|r| r.holds && r.winner_steps >= r.bound));
    }

    #[test]
    fn e8_small_sweep_shows_separation() {
        let exp = e8_universal_constructions(&[16, 64], &Sweep::sequential());
        for r in &exp.rows {
            assert!(r.adt < r.herlihy);
            assert!(r.adt < r.naive_tree);
        }
    }

    #[test]
    fn e10_solo_cost_is_constant() {
        let exp = e10_direct_escape_hatch(&[4, 32], &Sweep::sequential());
        assert!(exp.rows.iter().all(|r| r.solo == 2));
        assert!(exp.rows.iter().all(|r| r.contended >= r.n as u64));
    }

    #[test]
    fn random_move_config_has_no_self_moves() {
        for seed in 0..10 {
            let cfg = random_move_config(12, 6, seed);
            for p in cfg.processes() {
                let (src, dst) = cfg.get(p).unwrap();
                assert_ne!(src, dst);
            }
        }
    }

    #[test]
    fn e15_classifies_crash_outcomes_and_stays_safe() {
        let (exp, failures) = e15_crash_degradation(8, &[0, 2], 3, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 8, "4 algorithms x 2 crash counts");
        let mut stranded = 0;
        for r in &exp.rows {
            assert!(
                r.safety_ok,
                "{}: wakeup safety must survive crashes",
                r.algorithm
            );
            assert_eq!(r.trials, 3);
            assert_eq!(
                r.completed + r.crash_reported + r.budget_exhausted,
                r.trials,
                "{}: every trial classifies",
                r.algorithm
            );
            if r.crashed == 0 {
                assert_eq!(
                    r.completed, 3,
                    "{}: fault-free trials complete",
                    r.algorithm
                );
            } else {
                stranded += r.crash_reported + r.budget_exhausted;
            }
        }
        // A victim that terminates before its crash point survives, so not
        // every k=2 trial strands a survivor — but some must.
        assert!(stranded > 0, "k=2 trials must strand some survivor");
    }

    #[test]
    fn e15_starved_budget_surfaces_isolated_failures() {
        let (exp, failures) = e15_crash_degradation(8, &[0], 2, 10, &Sweep::sequential());
        assert!(!failures.is_empty(), "starved k=0 trials must panic");
        assert!(failures
            .iter()
            .all(|f| f.payload.contains("fault-free trial must complete")));
        // Every failure carries its reproduction context: algorithm, crash
        // plan, and the toss seed.
        assert!(failures
            .iter()
            .all(|f| f.context.contains("crash-plan:k=0") && f.context.contains("tosses=seeded")));
        // Panics are isolated: the experiment still renders its table.
        assert!(exp.table.render().contains("E15"));
    }

    #[test]
    fn e15_is_identical_across_thread_counts() {
        let (base, base_f) = e15_crash_degradation(8, &[0, 1], 2, 2_000_000, &Sweep::sequential());
        for threads in [2, 4] {
            let (par, par_f) =
                e15_crash_degradation(8, &[0, 1], 2, 2_000_000, &Sweep::with_threads(threads));
            assert_eq!(par.table.render(), base.table.render(), "threads={threads}");
            assert_eq!(par_f.len(), base_f.len());
        }
    }

    #[test]
    fn e16_fault_free_trials_recover_at_twin_cost() {
        let (exp, failures) = e16_fault_degradation(8, &[0], 2, 2_000_000, &Sweep::sequential());
        // The zero-cost comparison runs inside each trial; a mismatch
        // would surface here as a failure.
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 6, "one f=0 cell per hardened algorithm");
        for r in &exp.rows {
            assert_eq!(r.recovered, r.trials, "{}: f=0 must recover", r.algorithm);
            assert_eq!(r.injected, 0, "{}: f=0 injects nothing", r.algorithm);
            assert_eq!(r.detected, 0, "{}: f=0 detects nothing", r.algorithm);
        }
    }

    #[test]
    fn e16_classifies_every_faulty_trial() {
        let (exp, failures) = e16_fault_degradation(8, &[1, 4], 3, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 12, "6 algorithms x 2 fault budgets");
        let mut injected_total = 0;
        for r in &exp.rows {
            assert_eq!(r.trials, 3);
            assert_eq!(
                r.recovered + r.detected_wrong + r.silent_wrong + r.stalled,
                r.trials,
                "{}: every trial classifies into exactly one bucket",
                r.algorithm
            );
            assert_eq!(
                r.silent_wrong, 0,
                "{}: hardened algorithms never fail silently",
                r.algorithm
            );
            injected_total += r.injected;
        }
        assert!(injected_total > 0, "some scheduled faults must land");
    }

    #[test]
    fn e16_is_identical_across_thread_counts() {
        let (base, base_f) = e16_fault_degradation(8, &[0, 2], 2, 2_000_000, &Sweep::sequential());
        for threads in [2, 4] {
            let (par, par_f) =
                e16_fault_degradation(8, &[0, 2], 2, 2_000_000, &Sweep::with_threads(threads));
            assert_eq!(par.table.render(), base.table.render(), "threads={threads}");
            assert_eq!(par_f.len(), base_f.len());
        }
    }

    #[test]
    fn e16_starved_budget_surfaces_isolated_failures_with_context() {
        let (exp, failures) = e16_fault_degradation(8, &[0], 1, 40, &Sweep::sequential());
        assert!(!failures.is_empty(), "starved f=0 trials must panic");
        assert!(failures
            .iter()
            .all(|f| f.context.contains("fault-plan:none") && f.context.contains("alg=")));
        assert!(exp.table.render().contains("E16"));
    }

    #[test]
    fn starved_failures_carry_replayable_reproducers() {
        let (_, failures) = e16_fault_degradation(8, &[0], 1, 40, &Sweep::sequential());
        assert!(!failures.is_empty(), "starved f=0 trials must panic");
        for f in &failures {
            let json = f.repro.as_ref().expect("failures carry a repro case");
            let case = ReproCase::from_json(json).expect("attached repro round-trips");
            assert_eq!(case.experiment, "e16");
            // The experiment-level assert panicked, but the underlying
            // execution is an honest stall — that's what the case records.
            assert_eq!(case.class, "stalled");
            let run = crate::repro::run_case(&case).expect("algorithm resolves");
            assert_eq!(run.outcome_debug, case.outcome, "replay is byte-identical");
            let prov = case.provenance.expect("provenance recorded");
            assert_eq!(prov.trial_index, f.index);
            assert_eq!(prov.attempt, f.attempts - 1);
        }
    }

    #[test]
    fn e17_classifies_chaos_trials_and_shrinks_reproducers() {
        let (exp, failures) = e17_chaos_mode(4, &[0, 3], 2, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(exp.rows.len(), 12, "6 algorithms x 2 intensities");
        let mut failing_cells = 0;
        for r in &exp.rows {
            assert_eq!(r.trials, 2);
            assert_eq!(
                r.recovered + r.detected_wrong + r.silent_wrong + r.stalled + r.crashed + r.aborted,
                r.trials,
                "{}: every trial classifies into exactly one bucket",
                r.algorithm
            );
            assert_eq!(
                r.median_shrunk.is_some(),
                r.recovered < r.trials,
                "{}: the median tracks exactly the failing trials",
                r.algorithm
            );
            if r.intensity == 0 {
                assert_eq!(
                    r.recovered, r.trials,
                    "{}: chaos-free trials recover",
                    r.algorithm
                );
            } else if r.recovered < r.trials {
                failing_cells += 1;
            }
        }
        assert!(failing_cells > 0, "intensity-3 chaos must break something");
    }

    #[test]
    fn e17_is_identical_across_thread_counts() {
        let (base, base_f) = e17_chaos_mode(4, &[0, 2], 1, 2_000_000, &Sweep::sequential());
        for threads in [2, 4] {
            let (par, par_f) =
                e17_chaos_mode(4, &[0, 2], 1, 2_000_000, &Sweep::with_threads(threads));
            assert_eq!(par.table.render(), base.table.render(), "threads={threads}");
            assert_eq!(par_f.len(), base_f.len());
        }
    }

    #[test]
    fn tables_are_identical_across_thread_counts() {
        let base = e1_secretive_schedules(&[4, 9], 6, &Sweep::sequential());
        for threads in [2, 4, 8] {
            let par = e1_secretive_schedules(&[4, 9], 6, &Sweep::with_threads(threads));
            assert_eq!(par.table.render(), base.table.render(), "threads={threads}");
            assert_eq!(par.table.render_json(), base.table.render_json());
        }
    }
}
