//! The shared command-line harness behind the `table_*` binaries.
//!
//! Every experiment binary accepts the same two flags:
//!
//! * `--threads N` — fan the experiment's independent trials out over `N`
//!   worker threads (default 1). Output is **byte-identical** at every
//!   thread count: trials are merged in index order by the
//!   [`Sweep`] engine, and neither the tables nor the JSON artifacts
//!   embed the thread count.
//! * `--json PATH` — additionally write the printed tables as a
//!   `{"tables":[…]}` JSON artifact (see [`Table::render_json`]).
//!
//! Fault-injection binaries additionally accept `--max-events N`, the
//! per-trial event budget (see [`HarnessOpts::max_events`]), and report
//! panic-isolated trial failures through
//! [`HarnessOpts::emit_with_failures`]: the failures are listed on
//! stderr, recorded in the JSON artifact's `"failures"` array, and turn
//! the exit code nonzero.
//!
//! Three resilience flags tune the sweep itself:
//!
//! * `--seed S` — the sweep's base seed (default 0); per-trial seeds are
//!   derived deterministically, so two runs with the same seed are
//!   byte-identical at any `--threads`.
//! * `--retries N` — re-run a panicking trial up to `N` extra times under
//!   deterministically derived seeds before recording a failure
//!   (default 0; see [`llsc_shmem::Sweep::with_retries`]).
//! * `--trial-timeout-ms MS` — a per-trial wall-clock deadline converting
//!   hung trials into structured failures (default off; see
//!   [`llsc_shmem::Sweep::with_trial_timeout`]).
//!
//! `--repro-dir DIR` additionally writes each failure's attached
//! [`llsc_shmem::ReproCase`] to `DIR/repro-trial<index>.json`, feeding
//! the `llsc replay` and `llsc shrink` subcommands.
//!
//! A binary's `main` is three lines:
//!
//! ```no_run
//! use llsc_bench::harness::HarnessOpts;
//! let opts = HarnessOpts::from_env();
//! let exp = llsc_bench::e3_up_growth(&[4, 16], &opts.sweep());
//! opts.emit(&[&exp.table]);
//! ```

use crate::table::Table;
pub use llsc_shmem::{Sweep, Trial, TrialFailure};
use std::path::PathBuf;
use std::process::ExitCode;

/// One experiment's output: the rendered table plus the typed rows behind
/// it (tests assert on the rows; the harness prints and serialises the
/// table).
#[derive(Clone, Debug)]
pub struct Experiment<R> {
    /// The rendered table.
    pub table: Table,
    /// The typed measurements, one per table row (or per logical unit).
    pub rows: Vec<R>,
}

/// The parsed common flags of a `table_*` binary.
#[derive(Clone, Debug, Default)]
pub struct HarnessOpts {
    /// Worker threads for the experiment's sweeps (default 1).
    pub threads: usize,
    /// Where to write the JSON artifact, if requested.
    pub json: Option<PathBuf>,
    /// Per-trial event budget override (`--max-events N`). Experiments
    /// that inject faults pass this to [`llsc_shmem::ExecutorConfig`];
    /// starving it is the supported way to exercise the
    /// budget-exhaustion path end to end.
    pub max_events: Option<u64>,
    /// The sweep's base seed (`--seed S`, default 0). Every per-trial
    /// seed derives from it, so artifacts record everything needed to
    /// reproduce a run.
    pub seed: u64,
    /// Deterministic re-runs of panicking trials (`--retries N`,
    /// default 0).
    pub retries: u32,
    /// Per-trial wall-clock deadline in milliseconds
    /// (`--trial-timeout-ms MS`, default off).
    pub trial_timeout_ms: Option<u64>,
    /// Where to write one repro-case file per trial failure
    /// (`--repro-dir DIR`, default off). Each failure that carries a
    /// serialized [`llsc_shmem::ReproCase`] lands in
    /// `DIR/repro-trial<index>.json`, ready for `llsc replay` /
    /// `llsc shrink`.
    pub repro_dir: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `--threads N` and `--json PATH` from an argument list
    /// (without the program name).
    pub fn parse<I, S>(args: I) -> Result<HarnessOpts, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut opts = HarnessOpts {
            threads: 1,
            json: None,
            max_events: None,
            seed: 0,
            retries: 0,
            trial_timeout_ms: None,
            repro_dir: None,
        };
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    opts.threads = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t >= 1)
                        .ok_or_else(|| format!("bad --threads value `{v}`"))?;
                }
                "--json" => {
                    let v = args.next().ok_or("--json needs a path")?;
                    opts.json = Some(PathBuf::from(v));
                }
                "--max-events" => {
                    let v = args.next().ok_or("--max-events needs a value")?;
                    opts.max_events = Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|&e| e >= 1)
                            .ok_or_else(|| format!("bad --max-events value `{v}`"))?,
                    );
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    opts.seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad --seed value `{v}`"))?;
                }
                "--retries" => {
                    let v = args.next().ok_or("--retries needs a value")?;
                    opts.retries = v
                        .parse::<u32>()
                        .map_err(|_| format!("bad --retries value `{v}`"))?;
                }
                "--trial-timeout-ms" => {
                    let v = args.next().ok_or("--trial-timeout-ms needs a value")?;
                    opts.trial_timeout_ms = Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|&ms| ms >= 1)
                            .ok_or_else(|| format!("bad --trial-timeout-ms value `{v}`"))?,
                    );
                }
                "--repro-dir" => {
                    let v = args.next().ok_or("--repro-dir needs a path")?;
                    opts.repro_dir = Some(PathBuf::from(v));
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// Parses the process's own arguments, exiting with usage on error.
    pub fn from_env() -> HarnessOpts {
        match HarnessOpts::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!(
                    "error: {e}\n\nusage: [--threads N] [--json PATH] [--max-events N] \
                     [--seed S] [--retries N] [--trial-timeout-ms MS] [--repro-dir DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The [`Sweep`] these options describe.
    pub fn sweep(&self) -> Sweep {
        let sweep = Sweep::with_threads(self.threads)
            .seeded(self.seed)
            .with_retries(self.retries);
        match self.trial_timeout_ms {
            Some(ms) => sweep.with_trial_timeout(std::time::Duration::from_millis(ms)),
            None => sweep,
        }
    }

    /// Prints each table to stdout and, when `--json` was given, writes
    /// the `{"tables":[…]}` artifact. Returns failure only on an
    /// artifact-write error.
    pub fn emit(&self, tables: &[&Table]) -> ExitCode {
        self.emit_with_failures(tables, &[])
    }

    /// [`HarnessOpts::emit`] for fault-tolerant experiments: prints the
    /// tables, lists every isolated trial failure on stderr, and — when
    /// `--json` was given — writes the
    /// `{"tables":[…],"failures":[…]}` artifact (the `failures` key is
    /// omitted when there are none, keeping clean artifacts
    /// byte-identical to [`HarnessOpts::emit`]'s). All files are written
    /// crash-safely (temp file + atomic rename, [`llsc_shmem::atomic_write`]),
    /// so an interrupted run never leaves a truncated artifact. Returns
    /// [`ExitCode::FAILURE`] iff any trial failed or the artifact could
    /// not be written — partial results are still emitted either way.
    pub fn emit_with_failures(&self, tables: &[&Table], failures: &[TrialFailure]) -> ExitCode {
        for table in tables {
            table.print();
        }
        for f in failures {
            eprintln!("trial failure: {f}");
        }
        if let Some(dir) = &self.repro_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for f in failures {
                let Some(repro) = &f.repro else { continue };
                let path = dir.join(format!("repro-trial{}.json", f.index));
                if let Err(e) = llsc_shmem::atomic_write(&path, repro) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
        }
        if let Some(path) = &self.json {
            let artifact = Table::render_json_artifact_with_failures(tables, failures);
            if let Err(e) = llsc_shmem::atomic_write(path, artifact) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
        if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            eprintln!("{} trial(s) failed", failures.len());
            ExitCode::FAILURE
        }
    }

    /// Runs an experiment body and emits its tables with a **unified
    /// failure contract**: if the body panics (a sweep re-raising an
    /// isolated trial failure, or an experiment-internal assertion), the
    /// panic is converted into a [`TrialFailure`] and emitted through
    /// [`HarnessOpts::emit_with_failures`] — so *every* `table_*` binary
    /// exits nonzero with a populated `failures` array in its artifact on
    /// any trial failure, instead of aborting with no artifact at all.
    pub fn emit_guarded(&self, build: impl FnOnce(&Sweep) -> Vec<Table>) -> ExitCode {
        let sweep = self.sweep();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build(&sweep))) {
            Ok(tables) => {
                let refs: Vec<&Table> = tables.iter().collect();
                self.emit_with_failures(&refs, &[])
            }
            Err(panic) => {
                let payload = if let Some(s) = panic.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = panic.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let failure = TrialFailure {
                    index: 0,
                    seed: self.seed,
                    derived_seed: self.seed,
                    payload,
                    context: "experiment aborted; no tables were produced".to_string(),
                    attempts: 1,
                    repro: None,
                };
                self.emit_with_failures(&[], &[failure])
            }
        }
    }
}

/// A minimal wall-clock micro-benchmark: one warm-up call, then `samples`
/// timed runs of `f`; prints the minimum and mean duration.
///
/// The `benches/` targets are plain `harness = false` binaries built on
/// this (the build environment has no registry access, so criterion is
/// deliberately not a dependency — see the workspace manifest).
pub fn time_case<T>(label: &str, samples: u32, f: impl FnMut() -> T) {
    let (best, mean) = measure_case(samples, f);
    println!("{label:<52} min {best:>12.3?}  mean {mean:>12.3?}");
}

/// The measurement behind [`time_case`]: one warm-up call, then `samples`
/// timed runs of `f`. Returns `(min, mean)` so callers (the bench-smoke
/// job) can serialise the numbers instead of only printing them.
pub fn measure_case<T>(
    samples: u32,
    mut f: impl FnMut() -> T,
) -> (std::time::Duration, std::time::Duration) {
    use std::time::{Duration, Instant};
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
    }
    (best, total / samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_flags_in_any_order() {
        let opts = HarnessOpts::parse([
            "--json",
            "out.json",
            "--max-events",
            "50",
            "--retries",
            "2",
            "--seed",
            "7",
            "--trial-timeout-ms",
            "250",
            "--repro-dir",
            "repros",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.json, Some(PathBuf::from("out.json")));
        assert_eq!(opts.repro_dir, Some(PathBuf::from("repros")));
        assert_eq!(opts.max_events, Some(50));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.retries, 2);
        assert_eq!(opts.trial_timeout_ms, Some(250));
        let sweep = opts.sweep();
        assert_eq!(sweep.threads, 4);
        assert_eq!(sweep.seed, 7);
        assert_eq!(sweep.retries, 2);
        assert_eq!(
            sweep.trial_timeout,
            Some(std::time::Duration::from_millis(250))
        );
    }

    #[test]
    fn defaults_are_sequential_and_no_artifact() {
        let opts = HarnessOpts::parse(Vec::<String>::new()).unwrap();
        assert_eq!(opts.threads, 1);
        assert!(opts.json.is_none());
        assert!(opts.max_events.is_none());
        assert_eq!(opts.seed, 0);
        assert_eq!(opts.retries, 0);
        assert!(opts.trial_timeout_ms.is_none());
        assert!(opts.repro_dir.is_none());
        assert!(opts.sweep().trial_timeout.is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(HarnessOpts::parse(["--threads"]).is_err());
        assert!(HarnessOpts::parse(["--threads", "0"]).is_err());
        assert!(HarnessOpts::parse(["--threads", "x"]).is_err());
        assert!(HarnessOpts::parse(["--json"]).is_err());
        assert!(HarnessOpts::parse(["--max-events"]).is_err());
        assert!(HarnessOpts::parse(["--max-events", "0"]).is_err());
        assert!(HarnessOpts::parse(["--max-events", "lots"]).is_err());
        assert!(HarnessOpts::parse(["--seed"]).is_err());
        assert!(HarnessOpts::parse(["--seed", "-1"]).is_err());
        assert!(HarnessOpts::parse(["--retries", "many"]).is_err());
        assert!(HarnessOpts::parse(["--trial-timeout-ms", "0"]).is_err());
        assert!(HarnessOpts::parse(["--repro-dir"]).is_err());
        assert!(HarnessOpts::parse(["--frobnicate"]).is_err());
    }

    #[test]
    fn emit_with_failures_writes_artifact_and_fails() {
        let dir = std::env::temp_dir().join("llsc-bench-harness-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("failures.json");
        let opts = HarnessOpts {
            threads: 1,
            json: Some(path.clone()),
            max_events: None,
            seed: 0,
            retries: 0,
            trial_timeout_ms: None,
            repro_dir: Some(dir.join("repros")),
        };
        let mut t = Table::new("t", ["c"]);
        t.row(["1"]);
        let failures = vec![TrialFailure {
            index: 3,
            seed: 9,
            derived_seed: 9,
            payload: "boom".into(),
            context: String::new(),
            attempts: 1,
            repro: Some("{\"version\":\"1\"}\n".into()),
        }];
        let code = opts.emit_with_failures(&[&t], &failures);
        assert_eq!(code, ExitCode::FAILURE);
        let artifact = std::fs::read_to_string(&path).unwrap();
        assert!(artifact.contains("\"failures\""));
        assert!(artifact.contains("boom"));
        // The attached repro case landed in the requested directory.
        let repro = std::fs::read_to_string(dir.join("repros/repro-trial3.json")).unwrap();
        assert_eq!(repro, "{\"version\":\"1\"}\n");
        std::fs::remove_dir_all(dir.join("repros")).ok();
        assert_eq!(Table::from_json_artifact(&artifact).unwrap().len(), 1);
        // A clean emit through the same path succeeds and omits the key.
        assert_eq!(opts.emit_with_failures(&[&t], &[]), ExitCode::SUCCESS);
        let artifact = std::fs::read_to_string(&path).unwrap();
        assert!(!artifact.contains("failures"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn emit_guarded_converts_a_panicking_experiment_into_a_failure_artifact() {
        let dir = std::env::temp_dir().join("llsc-bench-guarded-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guarded.json");
        let opts = HarnessOpts {
            json: Some(path.clone()),
            seed: 11,
            threads: 1,
            ..HarnessOpts::default()
        };

        let code = opts.emit_guarded(|_| panic!("trial 7 exploded"));
        assert_eq!(code, ExitCode::FAILURE);
        let artifact = std::fs::read_to_string(&path).unwrap();
        assert!(artifact.contains("\"failures\":[{\"trial\""));
        assert!(artifact.contains("trial 7 exploded"));
        assert!(artifact.contains("no tables were produced"));

        // A healthy build through the same path emits cleanly.
        let code = opts.emit_guarded(|_| {
            let mut t = Table::new("t", ["c"]);
            t.row(["1"]);
            vec![t]
        });
        assert_eq!(code, ExitCode::SUCCESS);
        let artifact = std::fs::read_to_string(&path).unwrap();
        assert!(!artifact.contains("failures"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
