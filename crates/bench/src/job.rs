//! Checkpointed, resumable sweep jobs.
//!
//! The `2^n` subset sweeps (E4/E13), the sampled expectation sweep
//! (E6), and the chaos degradation sweep (E20, simulator half) are the
//! repository's longest-running workloads, and a plain
//! `table_e*` invocation loses everything when the process dies. This
//! module wraps those sweeps in a *job*: the trial index space is
//! partitioned into contiguous chunks, each chunk executes through the
//! ordinary [`Sweep`] path, and after every chunk the accumulated
//! per-trial records are persisted as an atomic, checksummed checkpoint
//! ([`llsc_shmem::checkpoint`]). Because per-trial work is deterministic
//! in the spec alone, a job killed at *any* point — `SIGKILL` included —
//! resumes from its newest valid checkpoint and produces a final
//! artifact byte-identical to an uninterrupted run, at any thread count.
//!
//! The robustness semantics, in one place:
//!
//! * **chunk watchdog** — each chunk attempt runs under an optional
//!   wall-clock deadline; on expiry the runner raises the global sweep
//!   abort ([`llsc_shmem::sweep::request_sweep_abort`]), in-flight trials
//!   panic at their next executor poll, and the attempt is recorded as a
//!   timeout.
//! * **bounded retry with deterministic backoff** — a failed chunk
//!   attempt sleeps `backoff_ms · 2^attempt` and retries, up to the
//!   spec's retry budget.
//! * **interrupt flush** — a [`JobControl`] interrupt flag (wired to
//!   SIGINT/SIGTERM by the `llsc job` CLI) aborts the in-flight chunk,
//!   flushes a final checkpoint, and exits with the interrupted status;
//!   nothing completed is lost.
//! * **graceful degradation** — a chunk that exhausts its retry budget
//!   is recorded in the job manifest as failed; the job still completes,
//!   emitting a *partial* artifact (rows whose trials all finished) plus
//!   an explicit `incomplete` manifest and a nonzero exit.
//!
//! Layout of a job directory:
//!
//! ```text
//! <dir>/spec.json                  the JobSpec (written by `run`)
//! <dir>/checkpoints/ckpt-*.llsc    rolling checkpoints (2 newest kept)
//! <dir>/artifact.json              final {"tables":[…]} artifact
//! <dir>/manifest.json              status, chunk ledger, failures
//! ```

use crate::experiments::{e20_title, E13_TITLE, E20_HEADERS, E4_TITLE, E6_TITLE};
use crate::table::Table;
use llsc_core::{
    indist_subset_range, report_from_samples, sample_expectation, AdversaryConfig,
    ExpectationSample,
};
use llsc_shmem::json;
use llsc_shmem::sweep::{clear_sweep_abort, request_sweep_abort};
use llsc_shmem::{atomic_write, checkpoint, Algorithm, SeededTosses, Sweep, ZeroTosses};
use llsc_wakeup::{correct_algorithms, randomized_algorithms};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The experiments a job can drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobExperiment {
    /// E4 — Lemma 5.2 indistinguishability, exhaustive over subsets.
    E4,
    /// E6 — sampled expected complexity of the randomized algorithms.
    E6,
    /// E13 — appendix claims A.2–A.9 + Lemma 5.2, exhaustive over subsets.
    E13,
    /// E20 — chaos degradation classes and recovery RMR cost (the
    /// simulator half; the hardware half is `bench_e20`).
    E20,
}

impl JobExperiment {
    /// Parses the artifact's experiment tag (`"e4"`, `"e6"`, `"e13"`,
    /// `"e20"`).
    ///
    /// # Errors
    ///
    /// Names the unknown tag.
    pub fn parse(tag: &str) -> Result<JobExperiment, String> {
        match tag {
            "e4" => Ok(JobExperiment::E4),
            "e6" => Ok(JobExperiment::E6),
            "e13" => Ok(JobExperiment::E13),
            "e20" => Ok(JobExperiment::E20),
            other => Err(format!(
                "unknown job experiment `{other}` (want e4, e6, e13, or e20)"
            )),
        }
    }

    /// The artifact tag this experiment serialises as.
    pub fn tag(&self) -> &'static str {
        match self {
            JobExperiment::E4 => "e4",
            JobExperiment::E6 => "e6",
            JobExperiment::E13 => "e13",
            JobExperiment::E20 => "e20",
        }
    }
}

/// A resumable job's complete description. Everything a trial's result
/// depends on lives here, so the spec *is* the reproducibility contract:
/// two runs of the same spec — chunked or not, interrupted or not, at any
/// thread count — emit byte-identical artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Which experiment the job drives.
    pub experiment: JobExperiment,
    /// A human-readable job name (recorded in the manifest).
    pub name: String,
    /// The sweep seed; per-trial seeds derive from `(seed, index)`.
    pub seed: u64,
    /// Process counts to sweep.
    pub ns: Vec<usize>,
    /// Toss-assignment seeds (E4 only; `0` means [`ZeroTosses`]).
    pub toss_seeds: Vec<u64>,
    /// Toss samples per `(algorithm, n)` estimate (E6), or trials per
    /// `(algorithm, intensity)` cell (E20).
    pub samples: u64,
    /// Chaos intensities to sweep (E20 only).
    pub intensities: Vec<u64>,
    /// Recovery-delay override for E20's crash-recovery arm (`0` keeps
    /// the arm's own regime). Part of the fingerprint: two jobs with
    /// different recovery knobs never share checkpoints.
    pub recovery_delay: u64,
    /// Respawn-budget override for E20's crash-recovery arm (`0` keeps
    /// the arm's own regime).
    pub respawn_budget: u64,
    /// Number of chunks the trial space is partitioned into. Chunk
    /// boundaries depend on this alone — never on the thread count — so
    /// checkpoints from different `--threads` runs are interchangeable.
    pub chunks: usize,
    /// Extra attempts granted to a failing chunk before it is recorded as
    /// permanently failed.
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps `backoff_ms · 2^k`
    /// before retrying (deterministic, no jitter).
    pub backoff_ms: u64,
    /// Per-chunk wall-clock watchdog in milliseconds (`0` disables it).
    pub chunk_timeout_ms: u64,
    /// Per-trial executor event budget override (`0` keeps the default).
    /// Starving it is the supported way to exercise the retry-exhaustion
    /// path end to end.
    pub max_events: u64,
}

impl JobSpec {
    /// The default spec for an experiment — the same parameter grid the
    /// experiment's `table_*` binary uses, split into 8 chunks with a
    /// small retry budget.
    pub fn default_for(experiment: JobExperiment) -> JobSpec {
        let (ns, toss_seeds, samples, intensities) = match experiment {
            JobExperiment::E4 => (vec![4, 6], vec![0, 1, 42], 0, vec![]),
            JobExperiment::E6 => (vec![4, 16, 64], vec![], 30, vec![]),
            JobExperiment::E13 => (vec![4, 6], vec![], 0, vec![]),
            // The table_e20 grid: 6 algorithms x 4 intensities x 6 reps.
            JobExperiment::E20 => (vec![8], vec![], 6, vec![0, 1, 2, 4]),
        };
        JobSpec {
            experiment,
            name: format!("{}-job", experiment.tag()),
            seed: 0,
            ns,
            toss_seeds,
            samples,
            intensities,
            recovery_delay: 0,
            respawn_budget: 0,
            chunks: 8,
            retries: 2,
            backoff_ms: 50,
            chunk_timeout_ms: 0,
            max_events: 0,
        }
    }

    /// Renders the spec in its canonical JSON form (all scalars as
    /// strings, fixed key order — the form [`JobSpec::fingerprint`]
    /// hashes).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"version\":\"1\",\"experiment\":");
        json::push_string(&mut out, self.experiment.tag());
        out.push_str(",\"name\":");
        json::push_string(&mut out, &self.name);
        out.push_str(",\"seed\":");
        json::push_string(&mut out, &self.seed.to_string());
        let push_list = |out: &mut String, key: &str, items: &[String]| {
            out.push_str(&format!(",\"{key}\":["));
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_string(out, item);
            }
            out.push(']');
        };
        let ns: Vec<String> = self.ns.iter().map(|n| n.to_string()).collect();
        push_list(&mut out, "ns", &ns);
        let toss: Vec<String> = self.toss_seeds.iter().map(|s| s.to_string()).collect();
        push_list(&mut out, "toss_seeds", &toss);
        let intensities: Vec<String> = self.intensities.iter().map(|i| i.to_string()).collect();
        push_list(&mut out, "intensities", &intensities);
        for (key, value) in [
            ("samples", self.samples),
            ("recovery_delay", self.recovery_delay),
            ("respawn_budget", self.respawn_budget),
            ("chunks", self.chunks as u64),
            ("retries", u64::from(self.retries)),
            ("backoff_ms", self.backoff_ms),
            ("chunk_timeout_ms", self.chunk_timeout_ms),
            ("max_events", self.max_events),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            json::push_string(&mut out, &value.to_string());
        }
        out.push_str("}\n");
        out
    }

    /// Parses a spec from its JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or malformed field.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let value = json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .field(key)
                .ok_or_else(|| format!("job spec: missing `{key}`"))?
                .str_or(&format!("job spec `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            str_field(key)?
                .parse::<u64>()
                .map_err(|_| format!("job spec: bad `{key}` value"))
        };
        let list_field = |key: &str| -> Result<Vec<u64>, String> {
            value
                .field(key)
                .ok_or_else(|| format!("job spec: missing `{key}`"))?
                .array_or(&format!("job spec `{key}`"))?
                .iter()
                .map(|v| {
                    v.str_or(&format!("job spec `{key}` entry"))?
                        .parse::<u64>()
                        .map_err(|_| format!("job spec: bad `{key}` entry"))
                })
                .collect()
        };
        let version = str_field("version")?;
        if version != "1" {
            return Err(format!("job spec: unsupported version `{version}`"));
        }
        let spec = JobSpec {
            experiment: JobExperiment::parse(&str_field("experiment")?)?,
            name: str_field("name")?,
            seed: u64_field("seed")?,
            ns: list_field("ns")?.into_iter().map(|n| n as usize).collect(),
            toss_seeds: list_field("toss_seeds")?,
            samples: u64_field("samples")?,
            intensities: list_field("intensities")?,
            recovery_delay: u64_field("recovery_delay")?,
            respawn_budget: u64_field("respawn_budget")?,
            chunks: u64_field("chunks")? as usize,
            retries: u64_field("retries")? as u32,
            backoff_ms: u64_field("backoff_ms")?,
            chunk_timeout_ms: u64_field("chunk_timeout_ms")?,
            max_events: u64_field("max_events")?,
        };
        if spec.chunks == 0 {
            return Err("job spec: `chunks` must be at least 1".into());
        }
        if spec.ns.is_empty() {
            return Err("job spec: `ns` must not be empty".into());
        }
        if spec.ns.contains(&0) {
            return Err("job spec: every n must be positive".into());
        }
        if matches!(spec.experiment, JobExperiment::E4 | JobExperiment::E13)
            && spec.ns.iter().any(|&n| n > 16)
        {
            return Err("job spec: exhaustive subset sweeps need n <= 16".into());
        }
        match spec.experiment {
            JobExperiment::E4 if spec.toss_seeds.is_empty() => {
                Err("job spec: e4 needs at least one toss seed".into())
            }
            JobExperiment::E6 if spec.samples == 0 => {
                Err("job spec: e6 needs at least one sample".into())
            }
            JobExperiment::E20 if spec.ns.len() != 1 => {
                Err("job spec: e20 sweeps exactly one n per job".into())
            }
            JobExperiment::E20 if spec.intensities.is_empty() => {
                Err("job spec: e20 needs at least one intensity".into())
            }
            JobExperiment::E20 if spec.samples == 0 => {
                Err("job spec: e20 needs at least one trial per cell".into())
            }
            _ => Ok(spec),
        }
    }

    /// The FNV-1a fingerprint of the canonical rendering — recorded in
    /// every checkpoint so `resume` refuses state from a different spec.
    pub fn fingerprint(&self) -> u64 {
        llsc_shmem::fnv64(self.render().as_bytes())
    }

    /// The algorithms this job sweeps, in row order.
    fn algorithms(&self) -> Vec<Box<dyn Algorithm>> {
        match self.experiment {
            JobExperiment::E4 | JobExperiment::E13 => correct_algorithms()
                .into_iter()
                .chain(randomized_algorithms())
                .collect(),
            JobExperiment::E6 => randomized_algorithms(),
            // The hardened trio (memory-fault arm) then the recoverable
            // trio (crash-recovery arm); e20 validates ns.len() == 1.
            JobExperiment::E20 => {
                let n = self.ns.first().copied().unwrap_or(2);
                (0..6).map(|a| crate::e20_algorithm(a, n)).collect()
            }
        }
    }

    /// The flat trial-space cells, in row order. A *cell* is the unit the
    /// assembler groups by: one `(algorithm, n, toss seed)` subset sweep
    /// for E4, one `(algorithm, n)` sweep for E6/E13.
    fn cells(&self) -> Vec<Cell> {
        let algs = self.algorithms().len();
        let mut cells = Vec::new();
        let mut start = 0usize;
        let mut push = |alg: usize, n: usize, toss_seed: u64, intensity: usize, len: usize| {
            cells.push(Cell {
                start,
                len,
                alg,
                n,
                toss_seed,
                intensity,
            });
            start += len;
        };
        match self.experiment {
            JobExperiment::E4 => {
                for alg in 0..algs {
                    for &n in &self.ns {
                        for &seed in &self.toss_seeds {
                            push(alg, n, seed, 0, 1usize << n);
                        }
                    }
                }
            }
            JobExperiment::E6 => {
                for alg in 0..algs {
                    for &n in &self.ns {
                        push(alg, n, 0, 0, self.samples as usize);
                    }
                }
            }
            JobExperiment::E13 => {
                for alg in 0..algs {
                    for &n in &self.ns {
                        push(alg, n, 0, 0, 1usize << n);
                    }
                }
            }
            // Matches the item order of `e20_chaos_recovery_sweep`:
            // algorithm-major, then intensity, then repetition — so the
            // flat index space (and with it every derived trial seed)
            // lines up with the table binary's.
            JobExperiment::E20 => {
                for alg in 0..algs {
                    for &n in &self.ns {
                        for &intensity in &self.intensities {
                            push(alg, n, 0, intensity as usize, self.samples as usize);
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total trials in the job's flat index space.
    pub fn total_trials(&self) -> usize {
        self.cells().iter().map(|c| c.len).sum()
    }

    /// The adversary configuration the job's trials run under.
    fn adversary_config(&self) -> AdversaryConfig {
        let mut cfg = match self.experiment {
            JobExperiment::E6 => AdversaryConfig {
                max_rounds: 10_000,
                ..AdversaryConfig::default()
            },
            _ => AdversaryConfig::default(),
        };
        if self.max_events > 0 {
            cfg.executor.max_events = self.max_events;
        }
        cfg
    }
}

/// One contiguous cell of the flat trial space.
#[derive(Clone, Copy, Debug)]
struct Cell {
    /// Global index of the cell's first trial.
    start: usize,
    /// Number of trials in the cell.
    len: usize,
    /// Index into [`JobSpec::algorithms`].
    alg: usize,
    /// Process count.
    n: usize,
    /// Toss seed (E4; `0` means [`ZeroTosses`]).
    toss_seed: u64,
    /// Chaos intensity (E20).
    intensity: usize,
}

/// Splits `total` trials into `chunks` contiguous `(start, len)` ranges,
/// the first `total % chunks` of them one trial longer. Depends only on
/// its arguments, so chunk boundaries are stable across invocations.
pub fn chunk_bounds(total: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, total.max(1));
    let base = total / chunks;
    let extra = total % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        bounds.push((start, len));
        start += len;
    }
    bounds
}

/// One trial's persisted result.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TrialRecord {
    /// An E4/E13 subset comparison.
    Subset {
        /// Global trial index.
        index: usize,
        /// Cell index (assembler group).
        cell: usize,
        /// Subset bitmask within the cell.
        mask: usize,
        /// Lemma 5.2 comparisons performed.
        comparisons: usize,
        /// Appendix-claim instances evaluated.
        claims: usize,
        /// Violations, rendered.
        violations: Vec<String>,
    },
    /// An E6 toss-assignment sample.
    Sample {
        /// Global trial index.
        index: usize,
        /// Cell index (assembler group).
        cell: usize,
        /// The sampled contribution.
        sample: ExpectationSample,
    },
    /// An E20 classified chaos trial.
    Chaos {
        /// Global trial index.
        index: usize,
        /// Cell index (assembler group).
        cell: usize,
        /// Degradation class (`recovered`, `detected-wrong`, …).
        class: String,
        /// Crashes delivered.
        crashes: u64,
        /// Recoveries performed.
        recoveries: u64,
        /// Spurious SC failures delivered.
        spurious_sc: u64,
        /// Register corruptions delivered.
        corruptions: u64,
        /// CC-model remote memory references billed.
        cc_rmrs: u64,
        /// DSM-model remote memory references billed.
        dsm_rmrs: u64,
    },
}

impl TrialRecord {
    fn index(&self) -> usize {
        match self {
            TrialRecord::Subset { index, .. }
            | TrialRecord::Sample { index, .. }
            | TrialRecord::Chaos { index, .. } => *index,
        }
    }

    fn cell(&self) -> usize {
        match self {
            TrialRecord::Subset { cell, .. }
            | TrialRecord::Sample { cell, .. }
            | TrialRecord::Chaos { cell, .. } => *cell,
        }
    }

    fn render(&self, out: &mut String) {
        let field = |out: &mut String, key: &str, value: &str, first: bool| {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":"));
            json::push_string(out, value);
        };
        out.push('{');
        match self {
            TrialRecord::Subset {
                index,
                cell,
                mask,
                comparisons,
                claims,
                violations,
            } => {
                field(out, "kind", "subset", true);
                field(out, "index", &index.to_string(), false);
                field(out, "cell", &cell.to_string(), false);
                field(out, "mask", &mask.to_string(), false);
                field(out, "comparisons", &comparisons.to_string(), false);
                field(out, "claims", &claims.to_string(), false);
                out.push_str(",\"violations\":[");
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_string(out, v);
                }
                out.push(']');
            }
            TrialRecord::Sample {
                index,
                cell,
                sample,
            } => {
                field(out, "kind", "sample", true);
                field(out, "index", &index.to_string(), false);
                field(out, "cell", &cell.to_string(), false);
                field(
                    out,
                    "terminated",
                    if sample.terminated { "1" } else { "0" },
                    false,
                );
                field(
                    out,
                    "wakeup_ok",
                    if sample.wakeup_ok { "1" } else { "0" },
                    false,
                );
                let opt = |v: Option<u64>| v.map_or("none".to_string(), |x| x.to_string());
                field(out, "winner_steps", &opt(sample.winner_steps), false);
                field(out, "max_steps", &opt(sample.max_steps), false);
            }
            TrialRecord::Chaos {
                index,
                cell,
                class,
                crashes,
                recoveries,
                spurious_sc,
                corruptions,
                cc_rmrs,
                dsm_rmrs,
            } => {
                field(out, "kind", "chaos", true);
                field(out, "index", &index.to_string(), false);
                field(out, "cell", &cell.to_string(), false);
                field(out, "class", class, false);
                field(out, "crashes", &crashes.to_string(), false);
                field(out, "recoveries", &recoveries.to_string(), false);
                field(out, "spurious_sc", &spurious_sc.to_string(), false);
                field(out, "corruptions", &corruptions.to_string(), false);
                field(out, "cc_rmrs", &cc_rmrs.to_string(), false);
                field(out, "dsm_rmrs", &dsm_rmrs.to_string(), false);
            }
        }
        out.push('}');
    }

    fn parse(value: &json::Value) -> Result<TrialRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .field(key)
                .ok_or_else(|| format!("trial record: missing `{key}`"))?
                .str_or(&format!("trial record `{key}`"))
        };
        let num = |key: &str| -> Result<usize, String> {
            str_field(key)?
                .parse::<usize>()
                .map_err(|_| format!("trial record: bad `{key}`"))
        };
        match str_field("kind")?.as_str() {
            "subset" => Ok(TrialRecord::Subset {
                index: num("index")?,
                cell: num("cell")?,
                mask: num("mask")?,
                comparisons: num("comparisons")?,
                claims: num("claims")?,
                violations: value
                    .field("violations")
                    .ok_or("trial record: missing `violations`")?
                    .array_or("trial record `violations`")?
                    .iter()
                    .map(|v| v.str_or("violation entry"))
                    .collect::<Result<_, _>>()?,
            }),
            "sample" => {
                let opt = |key: &str| -> Result<Option<u64>, String> {
                    let s = str_field(key)?;
                    if s == "none" {
                        Ok(None)
                    } else {
                        s.parse::<u64>()
                            .map(Some)
                            .map_err(|_| format!("trial record: bad `{key}`"))
                    }
                };
                Ok(TrialRecord::Sample {
                    index: num("index")?,
                    cell: num("cell")?,
                    sample: ExpectationSample {
                        terminated: str_field("terminated")? == "1",
                        wakeup_ok: str_field("wakeup_ok")? == "1",
                        winner_steps: opt("winner_steps")?,
                        max_steps: opt("max_steps")?,
                    },
                })
            }
            "chaos" => {
                let u64_field = |key: &str| -> Result<u64, String> {
                    str_field(key)?
                        .parse::<u64>()
                        .map_err(|_| format!("trial record: bad `{key}`"))
                };
                Ok(TrialRecord::Chaos {
                    index: num("index")?,
                    cell: num("cell")?,
                    class: str_field("class")?,
                    crashes: u64_field("crashes")?,
                    recoveries: u64_field("recoveries")?,
                    spurious_sc: u64_field("spurious_sc")?,
                    corruptions: u64_field("corruptions")?,
                    cc_rmrs: u64_field("cc_rmrs")?,
                    dsm_rmrs: u64_field("dsm_rmrs")?,
                })
            }
            other => Err(format!("trial record: unknown kind `{other}`")),
        }
    }
}

/// A chunk that exhausted its retry budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkFailure {
    /// The failed chunk's index.
    pub chunk: usize,
    /// Attempts consumed (1 + retries).
    pub attempts: u32,
    /// Failure kind: `run-error`, `panic`, or `timeout`.
    pub kind: String,
    /// The last attempt's error message.
    pub message: String,
    /// What the chunk covers — experiment, trial range, and the
    /// overlapped `(algorithm, n, toss seed)` cells — enough to reproduce
    /// the failure by re-running this spec's chunk alone.
    pub context: String,
}

/// How a job invocation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Every chunk completed; the artifact is whole.
    Complete,
    /// At least one chunk exhausted its retry budget; the artifact is
    /// partial and the manifest lists what is missing.
    Incomplete,
    /// The run was interrupted (signal or [`JobControl`] stop); resume
    /// with `llsc job resume`.
    Interrupted,
}

impl JobStatus {
    /// The manifest's status string.
    pub fn tag(&self) -> &'static str {
        match self {
            JobStatus::Complete => "complete",
            JobStatus::Incomplete => "incomplete",
            JobStatus::Interrupted => "interrupted",
        }
    }
}

/// Cooperative control handles for a running job: an interrupt flag (the
/// CLI wires SIGINT/SIGTERM to it) and a deterministic stop-after hook
/// used by the kill/resume tests to simulate a crash at an exact chunk
/// boundary.
#[derive(Clone, Debug, Default)]
pub struct JobControl {
    /// Set to request a graceful stop: the in-flight chunk is aborted,
    /// a final checkpoint is flushed, and the runner returns
    /// [`JobStatus::Interrupted`].
    pub interrupt: Arc<AtomicBool>,
    /// Stop (as if interrupted) after this many chunks have been
    /// *executed by this invocation* — a crash simulation for tests.
    pub stop_after_chunks: Option<usize>,
}

impl JobControl {
    /// A control handle that never interrupts.
    pub fn new() -> JobControl {
        JobControl::default()
    }

    fn interrupted(&self) -> bool {
        self.interrupt.load(Ordering::SeqCst)
    }
}

/// What a job invocation did, for the CLI to report and map to an exit
/// code.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// How the invocation ended.
    pub status: JobStatus,
    /// Chunks completed over the job's lifetime (including prior
    /// invocations).
    pub completed_chunks: usize,
    /// Total chunks in the spec.
    pub total_chunks: usize,
    /// Chunks that exhausted their retry budget in this invocation.
    pub failed: Vec<ChunkFailure>,
    /// Checkpoints that were skipped as invalid while loading state.
    pub fallback_notes: Vec<String>,
    /// The final artifact path (written unless the run was interrupted).
    pub artifact: Option<PathBuf>,
}

/// In-memory job state, round-tripped through checkpoints.
struct JobState {
    completed: BTreeSet<usize>,
    records: Vec<TrialRecord>,
    next_seq: u64,
    fallback_notes: Vec<String>,
}

impl JobState {
    fn fresh() -> JobState {
        JobState {
            completed: BTreeSet::new(),
            records: Vec::new(),
            next_seq: 1,
            fallback_notes: Vec::new(),
        }
    }
}

fn checkpoint_dir(dir: &Path) -> PathBuf {
    dir.join("checkpoints")
}

/// The spec file inside a job directory.
pub fn spec_path(dir: &Path) -> PathBuf {
    dir.join("spec.json")
}

/// The final artifact inside a job directory.
pub fn artifact_path(dir: &Path) -> PathBuf {
    dir.join("artifact.json")
}

/// The manifest inside a job directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

fn render_checkpoint(spec: &JobSpec, state: &JobState) -> String {
    let mut out = String::from("{\"experiment\":");
    json::push_string(&mut out, spec.experiment.tag());
    out.push_str(",\"spec_fnv64\":");
    json::push_string(&mut out, &format!("{:016x}", spec.fingerprint()));
    out.push_str(",\"rng\":");
    json::push_string(
        &mut out,
        &format!(
            "sweep_seed={:#018x}; trial seeds derive as split_mix over (seed, index)",
            spec.seed
        ),
    );
    out.push_str(",\"completed\":[");
    for (i, chunk) in state.completed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_string(&mut out, &chunk.to_string());
    }
    out.push_str("],\"records\":[");
    for (i, record) in state.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        record.render(&mut out);
    }
    out.push_str("]}");
    out
}

fn parse_checkpoint(
    spec: &JobSpec,
    payload: &[u8],
) -> Result<(BTreeSet<usize>, Vec<TrialRecord>), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "checkpoint payload is not UTF-8")?;
    let value = json::parse(text)?;
    let fnv = value
        .field("spec_fnv64")
        .ok_or("checkpoint: missing `spec_fnv64`")?
        .str_or("checkpoint `spec_fnv64`")?;
    let expected = format!("{:016x}", spec.fingerprint());
    if fnv != expected {
        return Err(format!(
            "checkpoint belongs to a different job spec (fingerprint {fnv}, expected {expected})"
        ));
    }
    let completed = value
        .field("completed")
        .ok_or("checkpoint: missing `completed`")?
        .array_or("checkpoint `completed`")?
        .iter()
        .map(|v| {
            v.str_or("completed chunk")?
                .parse::<usize>()
                .map_err(|_| "checkpoint: bad chunk index".to_string())
        })
        .collect::<Result<BTreeSet<usize>, String>>()?;
    let records = value
        .field("records")
        .ok_or("checkpoint: missing `records`")?
        .array_or("checkpoint `records`")?
        .iter()
        .map(TrialRecord::parse)
        .collect::<Result<Vec<TrialRecord>, String>>()?;
    Ok((completed, records))
}

/// How one chunk attempt ended.
enum AttemptOutcome {
    Success(Vec<TrialRecord>),
    Interrupted,
    Failed { kind: &'static str, message: String },
}

/// Runs one chunk attempt under the wall-clock watchdog and the
/// interrupt flag. The body executes on a scoped worker thread; on
/// timeout or interrupt the monitor raises the global sweep abort, the
/// body's in-flight trials panic at their next executor poll, and the
/// unwound attempt is classified here. The abort flag is always cleared
/// before returning.
fn run_chunk_guarded(
    timeout: Option<Duration>,
    interrupt: &AtomicBool,
    body: impl FnOnce() -> Result<Vec<TrialRecord>, String> + Send,
) -> AttemptOutcome {
    type BodyResult = std::thread::Result<Result<Vec<TrialRecord>, String>>;
    let done = AtomicBool::new(false);
    let slot: Mutex<Option<BodyResult>> = Mutex::new(None);
    let mut timed_out = false;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let result = catch_unwind(AssertUnwindSafe(body));
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            done.store(true, Ordering::SeqCst);
        });
        let started = Instant::now();
        while !done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
            if interrupt.load(Ordering::SeqCst) {
                request_sweep_abort();
            } else if let Some(limit) = timeout {
                if !timed_out && started.elapsed() > limit {
                    timed_out = true;
                    request_sweep_abort();
                }
            }
        }
    });
    clear_sweep_abort();
    let result = slot
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("worker stored its result before setting done");
    match result {
        Ok(Ok(records)) => AttemptOutcome::Success(records),
        Ok(Err(message)) => AttemptOutcome::Failed {
            kind: "run-error",
            message,
        },
        Err(panic) => {
            let message = panic_message(panic.as_ref());
            if interrupt.load(Ordering::SeqCst) {
                AttemptOutcome::Interrupted
            } else if timed_out {
                AttemptOutcome::Failed {
                    kind: "timeout",
                    message: format!("chunk exceeded its wall-clock budget ({message})"),
                }
            } else {
                AttemptOutcome::Failed {
                    kind: "panic",
                    message,
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-trial event budget E20 job trials run under when the spec
/// does not override it — the same default as `table_e20`, so the job
/// artifact matches the binary's byte for byte.
const E20_DEFAULT_MAX_EVENTS: u64 = 2_000_000;

/// Executes the trials `start .. start + len` of the job's flat index
/// space and returns their records in index order.
fn run_chunk_body(
    spec: &JobSpec,
    cells: &[Cell],
    start: usize,
    len: usize,
    threads: usize,
) -> Result<Vec<TrialRecord>, String> {
    let algs = spec.algorithms();
    let cfg = spec.adversary_config();
    let sweep = Sweep::with_threads(threads).seeded(spec.seed);
    let end = start + len;
    let mut records = Vec::with_capacity(len);
    for (cell_index, cell) in cells.iter().enumerate() {
        let lo = start.max(cell.start);
        let hi = end.min(cell.start + cell.len);
        if lo >= hi {
            continue;
        }
        let local_lo = lo - cell.start;
        let local_count = hi - lo;
        let alg = algs[cell.alg].as_ref();
        match spec.experiment {
            JobExperiment::E4 | JobExperiment::E13 => {
                let toss: Arc<dyn llsc_shmem::TossAssignment> = if cell.toss_seed == 0 {
                    Arc::new(ZeroTosses)
                } else {
                    Arc::new(SeededTosses::new(cell.toss_seed))
                };
                let check_claims = spec.experiment == JobExperiment::E13;
                let chunk = indist_subset_range(
                    alg,
                    cell.n,
                    toss,
                    &cfg,
                    check_claims,
                    &sweep,
                    local_lo..local_lo + local_count,
                )
                .map_err(|e| {
                    format!(
                        "alg={} n={} toss_seed={}: {e:?}",
                        alg.name(),
                        cell.n,
                        cell.toss_seed
                    )
                })?;
                records.extend(chunk.records.into_iter().map(|r| TrialRecord::Subset {
                    index: cell.start + r.mask,
                    cell: cell_index,
                    mask: r.mask,
                    comparisons: r.comparisons,
                    claims: r.claim_instances,
                    violations: r.violations,
                }));
            }
            JobExperiment::E6 => {
                let seeds: Vec<u64> = (local_lo as u64..(local_lo + local_count) as u64).collect();
                let sampled = sweep
                    .run(&seeds, |_trial, &seed| {
                        sample_expectation(alg, cell.n, seed, &cfg)
                    })
                    .into_iter()
                    .collect::<Result<Vec<ExpectationSample>, _>>()
                    .map_err(|e| format!("alg={} n={}: {e:?}", alg.name(), cell.n))?;
                records.extend(sampled.into_iter().enumerate().map(|(i, sample)| {
                    TrialRecord::Sample {
                        index: cell.start + local_lo + i,
                        cell: cell_index,
                        sample,
                    }
                }));
            }
            JobExperiment::E20 => {
                let max_events = if spec.max_events > 0 {
                    spec.max_events
                } else {
                    E20_DEFAULT_MAX_EVENTS
                };
                // Trial identity is the global index alone (the range
                // variant derives each seed from `(sweep seed, global
                // index)`), so chunked execution reproduces exactly the
                // trials `e20_chaos_recovery_sweep` runs — same cases,
                // same classes, same counters.
                let chunk = sweep.run_indexed_range_with_scratch(
                    lo,
                    local_count,
                    || (),
                    |(), trial| {
                        let alg = crate::e20_algorithm(cell.alg, cell.n);
                        let mut case = crate::e20_case(
                            cell.alg,
                            cell.n,
                            cell.intensity,
                            trial.seed,
                            max_events,
                        );
                        if let Some(recovery) = case.recovery.as_mut() {
                            if spec.recovery_delay > 0 {
                                recovery.delay = spec.recovery_delay;
                            }
                            if spec.respawn_budget > 0 {
                                recovery.budget = spec.respawn_budget;
                            }
                        }
                        let run = crate::repro::run_case_with(&case, alg.as_ref());
                        if cell.intensity == 0 {
                            assert!(
                                run.class == "recovered",
                                "{}: chaos-free trial must recover, got {} ({}) (seed {:#018x})",
                                alg.name(),
                                run.class,
                                run.outcome_debug,
                                trial.seed
                            );
                        }
                        // Re-execute for the cost counters (run_case_with
                        // classifies but does not bill); the replay is
                        // deterministic, so the second drive sees the
                        // identical run.
                        let replayed = llsc_shmem::repro::execute(&case, alg.as_ref());
                        let counters = replayed.exec.run().counters();
                        let (spurious_sc, corruptions) = match replayed.outcome {
                            llsc_shmem::RunOutcome::FaultInjected {
                                spurious_sc,
                                corruptions,
                            } => (spurious_sc, corruptions),
                            _ => (0, 0),
                        };
                        (
                            run.class,
                            counters.total_crashes(),
                            counters.total_recoveries(),
                            spurious_sc,
                            corruptions,
                            counters.total_cc_rmrs(),
                            counters.total_dsm_rmrs(),
                        )
                    },
                );
                records.extend(chunk.into_iter().enumerate().map(
                    |(i, (class, crashes, recoveries, spurious_sc, corruptions, cc, dsm))| {
                        TrialRecord::Chaos {
                            index: lo + i,
                            cell: cell_index,
                            class,
                            crashes,
                            recoveries,
                            spurious_sc,
                            corruptions,
                            cc_rmrs: cc,
                            dsm_rmrs: dsm,
                        }
                    },
                ));
            }
        }
    }
    Ok(records)
}

fn chunk_context(spec: &JobSpec, cells: &[Cell], start: usize, len: usize) -> String {
    let algs = spec.algorithms();
    let end = start + len;
    let mut parts = Vec::new();
    for cell in cells {
        if start.max(cell.start) >= end.min(cell.start + cell.len) {
            continue;
        }
        parts.push(match spec.experiment {
            JobExperiment::E4 => format!(
                "alg={} n={} toss_seed={}",
                algs[cell.alg].name(),
                cell.n,
                cell.toss_seed
            ),
            JobExperiment::E20 => format!(
                "alg={} n={} intensity={}",
                algs[cell.alg].name(),
                cell.n,
                cell.intensity
            ),
            _ => format!("alg={} n={}", algs[cell.alg].name(), cell.n),
        });
    }
    format!(
        "{} trials {start}..{end}: {}",
        spec.experiment.tag(),
        parts.join("; ")
    )
}

/// Assembles the final table artifact from the persisted records —
/// a pure function of `(spec, records)`, so chunked, resumed, and
/// uninterrupted runs agree byte for byte. Rows whose trials are not all
/// present (failed chunks) are omitted and reported in the returned list
/// of incomplete row labels.
fn assemble(spec: &JobSpec, records: &[TrialRecord]) -> (Table, Vec<String>) {
    let algs = spec.algorithms();
    let cells = spec.cells();
    let mut by_cell: Vec<Vec<&TrialRecord>> = vec![Vec::new(); cells.len()];
    for record in records {
        if record.cell() < by_cell.len() {
            by_cell[record.cell()].push(record);
        }
    }
    for group in &mut by_cell {
        group.sort_by_key(|r| r.index());
        group.dedup_by_key(|r| r.index());
    }
    let complete = |cell: usize| by_cell[cell].len() == cells[cell].len;

    let mut incomplete = Vec::new();
    let table = match spec.experiment {
        JobExperiment::E4 => {
            let mut table = Table::new(
                E4_TITLE,
                ["algorithm", "n", "subsets", "comparisons", "violations"],
            );
            // Cells are laid out alg-major, then n, then toss seed: each
            // row merges `toss_seeds.len()` consecutive cells.
            let per_row = spec.toss_seeds.len();
            for (row, cell_block) in cells.chunks(per_row).enumerate() {
                let first = row * per_row;
                let alg = algs[cell_block[0].alg].name().to_string();
                let n = cell_block[0].n;
                if !(first..first + per_row).all(complete) {
                    incomplete.push(format!("alg={alg} n={n}"));
                    continue;
                }
                let mut subsets = 0usize;
                let mut comparisons = 0usize;
                let mut violations = 0usize;
                for cell_records in by_cell.iter().skip(first).take(per_row) {
                    subsets += cell_records.len();
                    for record in cell_records {
                        if let TrialRecord::Subset {
                            comparisons: c,
                            violations: v,
                            ..
                        } = record
                        {
                            comparisons += c;
                            violations += v.len();
                        }
                    }
                }
                table.row([
                    alg,
                    n.to_string(),
                    subsets.to_string(),
                    comparisons.to_string(),
                    violations.to_string(),
                ]);
            }
            table
        }
        JobExperiment::E6 => {
            let mut table = Table::new(
                E6_TITLE,
                [
                    "algorithm",
                    "n",
                    "c",
                    "E[winner]",
                    "min winner",
                    "c*k",
                    "log4(n)",
                ],
            );
            for (cell_index, cell) in cells.iter().enumerate() {
                let alg = algs[cell.alg].name();
                if !complete(cell_index) {
                    incomplete.push(format!("alg={alg} n={}", cell.n));
                    continue;
                }
                let samples: Vec<ExpectationSample> = by_cell[cell_index]
                    .iter()
                    .filter_map(|r| match r {
                        TrialRecord::Sample { sample, .. } => Some(sample.clone()),
                        _ => None,
                    })
                    .collect();
                let rep = report_from_samples(alg, cell.n, &samples);
                table.row([
                    alg.to_string(),
                    cell.n.to_string(),
                    format!("{:.2}", rep.termination_rate),
                    format!("{:.1}", rep.mean_winner_steps),
                    rep.min_winner_steps.to_string(),
                    format!("{:.2}", rep.lemma_3_1_bound),
                    format!("{:.2}", rep.log4_n),
                ]);
            }
            table
        }
        JobExperiment::E13 => {
            let mut table = Table::new(E13_TITLE, ["algorithm", "n", "subsets", "violations"]);
            for (cell_index, cell) in cells.iter().enumerate() {
                let alg = algs[cell.alg].name();
                if !complete(cell_index) {
                    incomplete.push(format!("alg={alg} n={}", cell.n));
                    continue;
                }
                let violations: usize = by_cell[cell_index]
                    .iter()
                    .map(|r| match r {
                        TrialRecord::Subset { violations, .. } => violations.len(),
                        _ => 0,
                    })
                    .sum();
                table.row([
                    alg.to_string(),
                    cell.n.to_string(),
                    (1u64 << cell.n).to_string(),
                    violations.to_string(),
                ]);
            }
            table
        }
        JobExperiment::E20 => {
            let n = spec.ns.first().copied().unwrap_or(2);
            let mut table = Table::new(e20_title(n, spec.samples as usize), E20_HEADERS);
            // One job cell per `(algorithm, intensity)` — exactly the
            // grouping `e20_chaos_recovery_sweep` accumulates, so a
            // complete job's rows match the table binary's byte for
            // byte.
            for (cell_index, cell) in cells.iter().enumerate() {
                let alg = algs[cell.alg].name();
                if !complete(cell_index) {
                    incomplete.push(format!("alg={alg} intensity={}", cell.intensity));
                    continue;
                }
                let arm = if cell.alg < 3 {
                    "memory-faults"
                } else {
                    "crash-recovery"
                };
                let mut trials = 0usize;
                let mut classes = [0usize; 6]; // recovered, detected, silent, stalled, crashed, aborted
                let mut sums = [0u64; 6]; // crashes, recoveries, sc, corruptions, cc, dsm
                for record in &by_cell[cell_index] {
                    if let TrialRecord::Chaos {
                        class,
                        crashes,
                        recoveries,
                        spurious_sc,
                        corruptions,
                        cc_rmrs,
                        dsm_rmrs,
                        ..
                    } = record
                    {
                        trials += 1;
                        let slot = match class.as_str() {
                            "recovered" => 0,
                            "detected-wrong" => 1,
                            "silent-wrong" => 2,
                            "stalled" => 3,
                            "crashed" => 4,
                            _ => 5,
                        };
                        classes[slot] += 1;
                        for (sum, value) in sums.iter_mut().zip([
                            *crashes,
                            *recoveries,
                            *spurious_sc,
                            *corruptions,
                            *cc_rmrs,
                            *dsm_rmrs,
                        ]) {
                            *sum += value;
                        }
                    }
                }
                table.row([
                    alg.to_string(),
                    arm.to_string(),
                    cell.intensity.to_string(),
                    trials.to_string(),
                    classes[0].to_string(),
                    classes[1].to_string(),
                    classes[2].to_string(),
                    classes[3].to_string(),
                    classes[4].to_string(),
                    classes[5].to_string(),
                    sums[0].to_string(),
                    sums[1].to_string(),
                    sums[2].to_string(),
                    sums[3].to_string(),
                    sums[4].to_string(),
                    sums[5].to_string(),
                ]);
            }
            table
        }
    };
    (table, incomplete)
}

fn render_manifest(
    spec: &JobSpec,
    status: JobStatus,
    state: &JobState,
    total_chunks: usize,
    failed: &[ChunkFailure],
    incomplete_rows: &[String],
) -> String {
    let mut out = String::from("{\"name\":");
    json::push_string(&mut out, &spec.name);
    out.push_str(",\"experiment\":");
    json::push_string(&mut out, spec.experiment.tag());
    out.push_str(",\"status\":");
    json::push_string(&mut out, status.tag());
    for (key, value) in [
        ("chunks", total_chunks.to_string()),
        ("completed", state.completed.len().to_string()),
        ("trials", state.records.len().to_string()),
        ("total_trials", spec.total_trials().to_string()),
    ] {
        out.push_str(&format!(",\"{key}\":"));
        json::push_string(&mut out, &value);
    }
    out.push_str(",\"incomplete_rows\":[");
    for (i, row) in incomplete_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_string(&mut out, row);
    }
    out.push_str("],\"failed\":[");
    for (i, f) in failed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"chunk\":");
        json::push_string(&mut out, &f.chunk.to_string());
        out.push_str(",\"attempts\":");
        json::push_string(&mut out, &f.attempts.to_string());
        out.push_str(",\"kind\":");
        json::push_string(&mut out, &f.kind);
        out.push_str(",\"message\":");
        json::push_string(&mut out, &f.message);
        out.push_str(",\"context\":");
        json::push_string(&mut out, &f.context);
        out.push('}');
    }
    out.push_str("],\"fallback_checkpoints\":[");
    for (i, note) in state.fallback_notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_string(&mut out, note);
    }
    out.push_str("]}\n");
    out
}

/// Starts a job in `dir` from `spec`, writing `spec.json` first. Refuses
/// a directory that already has checkpoints (resume instead).
///
/// # Errors
///
/// I/O errors, a populated checkpoint directory, or chunk execution
/// errors surfaced through the returned report's `failed` list.
pub fn run_job(
    dir: &Path,
    spec: &JobSpec,
    threads: usize,
    control: &JobControl,
) -> Result<JobReport, String> {
    if !checkpoint::list_seqs(&checkpoint_dir(dir)).is_empty() {
        return Err(format!(
            "{} already has checkpoints; use `llsc job resume`",
            dir.display()
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    atomic_write(&spec_path(dir), spec.render())
        .map_err(|e| format!("cannot write {}: {e}", spec_path(dir).display()))?;
    drive(dir, spec, JobState::fresh(), threads, control)
}

/// Resumes the job in `dir` from its newest valid checkpoint (or from
/// scratch when no checkpoint survived), re-executing only missing
/// chunks. Previously failed chunks get a fresh retry budget.
///
/// # Errors
///
/// A missing or unparseable `spec.json`, or a checkpoint that belongs to
/// a different spec.
pub fn resume_job(dir: &Path, threads: usize, control: &JobControl) -> Result<JobReport, String> {
    let spec = load_spec(dir)?;
    let mut state = JobState::fresh();
    if let Some(loaded) = checkpoint::load_latest(&checkpoint_dir(dir)) {
        let (completed, records) = parse_checkpoint(&spec, &loaded.payload)?;
        state.completed = completed;
        state.records = records;
        state.next_seq = loaded.seq + 1;
        state.fallback_notes = loaded
            .skipped
            .iter()
            .map(|s| format!("seq={}: {}", s.seq, s.error))
            .collect();
    }
    drive(dir, &spec, state, threads, control)
}

/// Loads a job directory's spec.
///
/// # Errors
///
/// A missing or unparseable `spec.json`.
pub fn load_spec(dir: &Path) -> Result<JobSpec, String> {
    let path = spec_path(dir);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    JobSpec::parse(&text)
}

fn drive(
    dir: &Path,
    spec: &JobSpec,
    mut state: JobState,
    threads: usize,
    control: &JobControl,
) -> Result<JobReport, String> {
    let cells = spec.cells();
    let bounds = chunk_bounds(spec.total_trials(), spec.chunks);
    let ckpt_dir = checkpoint_dir(dir);
    let mut failed: Vec<ChunkFailure> = Vec::new();
    let mut executed = 0usize;
    let mut interrupted = false;

    for (chunk, &(start, len)) in bounds.iter().enumerate() {
        if state.completed.contains(&chunk) {
            continue;
        }
        if control.interrupted() {
            interrupted = true;
            break;
        }
        if control
            .stop_after_chunks
            .is_some_and(|limit| executed >= limit)
        {
            interrupted = true;
            break;
        }

        let attempts = 1 + spec.retries;
        let mut last_failure: Option<(&'static str, String)> = None;
        for attempt in 0..attempts {
            if attempt > 0 && spec.backoff_ms > 0 {
                // Deterministic exponential backoff, interrupt-aware.
                let sleep = Duration::from_millis(spec.backoff_ms << (attempt - 1));
                let waited = Instant::now();
                while waited.elapsed() < sleep && !control.interrupted() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            if control.interrupted() {
                interrupted = true;
                break;
            }
            let timeout =
                (spec.chunk_timeout_ms > 0).then(|| Duration::from_millis(spec.chunk_timeout_ms));
            let outcome = run_chunk_guarded(timeout, &control.interrupt, || {
                run_chunk_body(spec, &cells, start, len, threads)
            });
            match outcome {
                AttemptOutcome::Success(records) => {
                    state.records.extend(records);
                    state.records.sort_by_key(TrialRecord::index);
                    state.records.dedup_by_key(|r| r.index());
                    state.completed.insert(chunk);
                    last_failure = None;
                    break;
                }
                AttemptOutcome::Interrupted => {
                    interrupted = true;
                    break;
                }
                AttemptOutcome::Failed { kind, message } => {
                    last_failure = Some((kind, message));
                }
            }
        }
        if let Some((kind, message)) = last_failure {
            failed.push(ChunkFailure {
                chunk,
                attempts,
                kind: kind.to_string(),
                message,
                context: chunk_context(spec, &cells, start, len),
            });
        }
        executed += 1;

        let payload = render_checkpoint(spec, &state);
        checkpoint::write(&ckpt_dir, state.next_seq, payload.as_bytes())
            .map_err(|e| format!("cannot write checkpoint: {e}"))?;
        state.next_seq += 1;

        if interrupted {
            break;
        }
    }

    // Flush a final checkpoint so even a run interrupted before its first
    // chunk boundary leaves a resumable, validated state on disk.
    let payload = render_checkpoint(spec, &state);
    checkpoint::write(&ckpt_dir, state.next_seq, payload.as_bytes())
        .map_err(|e| format!("cannot write checkpoint: {e}"))?;
    state.next_seq += 1;

    let status = if interrupted || control.interrupted() {
        JobStatus::Interrupted
    } else if failed.is_empty() && state.completed.len() == bounds.len() {
        JobStatus::Complete
    } else {
        JobStatus::Incomplete
    };

    let (table, incomplete_rows) = assemble(spec, &state.records);
    let artifact = if status == JobStatus::Interrupted {
        None
    } else {
        let path = artifact_path(dir);
        let rendered = Table::render_json_artifact(&[&table]);
        atomic_write(&path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Some(path)
    };
    let manifest = render_manifest(
        spec,
        status,
        &state,
        bounds.len(),
        &failed,
        &incomplete_rows,
    );
    atomic_write(&manifest_path(dir), manifest)
        .map_err(|e| format!("cannot write {}: {e}", manifest_path(dir).display()))?;

    Ok(JobReport {
        status,
        completed_chunks: state.completed.len(),
        total_chunks: bounds.len(),
        failed,
        fallback_notes: state.fallback_notes,
        artifact,
    })
}

/// The exit code a job outcome maps to, shared by `llsc job` and the
/// table binaries' `--job-dir` mode: 0 complete, 1 incomplete (partial
/// artifact + manifest), 130 interrupted (resume to continue).
pub fn job_exit_code(status: JobStatus) -> u8 {
    match status {
        JobStatus::Complete => 0,
        JobStatus::Incomplete => 1,
        JobStatus::Interrupted => 130,
    }
}

/// The `--job-dir` mode of the `table_e4`/`table_e6`/`table_e13`
/// binaries: when the process arguments contain `--job-dir DIR`, runs
/// (or, with `--resume`, resumes) this experiment's default-grid job in
/// `DIR` — checkpointed, retryable, interruptible — and returns the exit
/// code. Returns `None` when the flag is absent, letting the binary
/// proceed with its ordinary one-shot sweep.
pub fn table_job_mode(experiment: JobExperiment) -> Option<std::process::ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut threads = 1usize;
    let mut resume = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--job-dir" => {
                i += 1;
                dir = args.get(i).cloned();
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
            }
            "--resume" => resume = true,
            _ => {}
        }
        i += 1;
    }
    let dir = PathBuf::from(dir?);
    let control = JobControl::new();
    let result = if resume {
        resume_job(&dir, threads, &control)
    } else {
        run_job(&dir, &JobSpec::default_for(experiment), threads, &control)
    };
    Some(match result {
        Ok(report) => {
            eprintln!(
                "job {}: {}/{} chunk(s) complete, {} failed",
                report.status.tag(),
                report.completed_chunks,
                report.total_chunks,
                report.failed.len()
            );
            std::process::ExitCode::from(job_exit_code(report.status))
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(2)
        }
    })
}

/// Renders a human-readable status report for the job in `dir` without
/// executing anything: spec summary, checkpoint progress, and — when a
/// manifest exists — the last invocation's outcome.
///
/// # Errors
///
/// A missing or unparseable `spec.json`, or an unreadable checkpoint
/// that matches a different spec.
pub fn job_status(dir: &Path) -> Result<String, String> {
    let spec = load_spec(dir)?;
    let bounds = chunk_bounds(spec.total_trials(), spec.chunks);
    let mut out = format!(
        "job `{}` ({}) in {}\n  trials: {} in {} chunk(s), sweep seed {:#018x}\n",
        spec.name,
        spec.experiment.tag(),
        dir.display(),
        spec.total_trials(),
        bounds.len(),
        spec.seed,
    );
    match checkpoint::load_latest(&checkpoint_dir(dir)) {
        Some(loaded) => {
            let (completed, records) = parse_checkpoint(&spec, &loaded.payload)?;
            out.push_str(&format!(
                "  checkpoint: seq {} with {}/{} chunk(s) complete, {} trial record(s)\n",
                loaded.seq,
                completed.len(),
                bounds.len(),
                records.len(),
            ));
            for s in &loaded.skipped {
                out.push_str(&format!(
                    "  skipped invalid checkpoint seq={}: {}\n",
                    s.seq, s.error
                ));
            }
        }
        None => out.push_str("  checkpoint: none\n"),
    }
    if let Ok(manifest) = std::fs::read_to_string(manifest_path(dir)) {
        if let Ok(value) = json::parse(&manifest) {
            if let Some(status) = value.field("status").and_then(json::Value::as_str) {
                out.push_str(&format!("  last invocation: {status}\n"));
            }
            if let Some(failed) = value.field("failed").and_then(json::Value::as_array) {
                for f in failed {
                    let chunk = f
                        .field("chunk")
                        .and_then(json::Value::as_str)
                        .unwrap_or("?");
                    let kind = f.field("kind").and_then(json::Value::as_str).unwrap_or("?");
                    out.push_str(&format!("  failed chunk {chunk}: {kind}\n"));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::rng::trial_seed;
    use llsc_shmem::sweep::sweep_abort_requested;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("llsc-job-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_e4_spec() -> JobSpec {
        JobSpec {
            ns: vec![3],
            toss_seeds: vec![0],
            chunks: 4,
            retries: 0,
            backoff_ms: 0,
            ..JobSpec::default_for(JobExperiment::E4)
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        for experiment in [
            JobExperiment::E4,
            JobExperiment::E6,
            JobExperiment::E13,
            JobExperiment::E20,
        ] {
            let spec = JobSpec::default_for(experiment);
            let back = JobSpec::parse(&spec.render()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.fingerprint(), spec.fingerprint());
        }
    }

    #[test]
    fn spec_parse_rejects_bad_documents() {
        assert!(JobSpec::parse("{}").is_err());
        assert!(JobSpec::parse("not json").is_err());
        let spec = JobSpec::default_for(JobExperiment::E4);
        assert!(JobSpec::parse(&spec.render().replace("\"e4\"", "\"e99\"")).is_err());
        assert!(JobSpec::parse(
            &spec
                .render()
                .replace("\"version\":\"1\"", "\"version\":\"2\"")
        )
        .is_err());
        let no_chunks = JobSpec { chunks: 0, ..spec };
        assert!(JobSpec::parse(&no_chunks.render()).is_err());
    }

    #[test]
    fn chunk_bounds_partition_the_space() {
        assert_eq!(chunk_bounds(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
        assert_eq!(chunk_bounds(4, 8), vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
        assert_eq!(chunk_bounds(0, 3), vec![(0, 0)]);
        let bounds = chunk_bounds(97, 8);
        assert_eq!(bounds.len(), 8);
        assert_eq!(bounds.iter().map(|&(_, l)| l).sum::<usize>(), 97);
        let mut expected = 0;
        for (start, len) in bounds {
            assert_eq!(start, expected);
            expected = start + len;
        }
    }

    #[test]
    fn cells_cover_the_trial_space_in_row_order() {
        let spec = tiny_e4_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 6, "6 algorithms x 1 n x 1 toss seed");
        assert_eq!(spec.total_trials(), 6 * 8);
        assert_eq!(cells[0].start, 0);
        assert_eq!(cells[5].start, 40);
        let e6 = JobSpec {
            ns: vec![4, 8],
            samples: 5,
            ..JobSpec::default_for(JobExperiment::E6)
        };
        assert_eq!(e6.total_trials(), 2 * 2 * 5);
    }

    #[test]
    fn complete_job_artifact_matches_the_table_binary() {
        let dir = scratch_dir("e4-identity");
        let spec = tiny_e4_spec();
        let report = run_job(&dir, &spec, 2, &JobControl::new()).unwrap();
        assert_eq!(report.status, JobStatus::Complete);
        assert_eq!(report.completed_chunks, 4);
        let artifact = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
        let direct = crate::e4_indistinguishability(&[3], &[0], &Sweep::sequential());
        assert_eq!(
            artifact,
            Table::render_json_artifact(&[&direct.table]),
            "job artifact must be byte-identical to the table binary's"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_and_resume_reproduces_the_uninterrupted_artifact() {
        let dir = scratch_dir("e13-resume");
        let spec = JobSpec {
            ns: vec![4],
            chunks: 5,
            retries: 0,
            backoff_ms: 0,
            ..JobSpec::default_for(JobExperiment::E13)
        };
        let stopper = JobControl {
            stop_after_chunks: Some(2),
            ..JobControl::new()
        };
        let first = run_job(&dir, &spec, 1, &stopper).unwrap();
        assert_eq!(first.status, JobStatus::Interrupted);
        assert_eq!(first.completed_chunks, 2);
        assert!(first.artifact.is_none());
        // Resume at a different thread count.
        let second = resume_job(&dir, 3, &JobControl::new()).unwrap();
        assert_eq!(second.status, JobStatus::Complete);
        let resumed = std::fs::read_to_string(second.artifact.unwrap()).unwrap();

        let clean_dir = scratch_dir("e13-clean");
        let clean = run_job(&clean_dir, &spec, 2, &JobControl::new()).unwrap();
        let uninterrupted = std::fs::read_to_string(clean.artifact.unwrap()).unwrap();
        assert_eq!(resumed, uninterrupted);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&clean_dir).ok();
    }

    #[test]
    fn e20_job_artifact_matches_the_chaos_sweep() {
        let dir = scratch_dir("e20-identity");
        let spec = JobSpec {
            ns: vec![4],
            intensities: vec![0, 2],
            samples: 2,
            chunks: 3,
            retries: 0,
            backoff_ms: 0,
            ..JobSpec::default_for(JobExperiment::E20)
        };
        let report = run_job(&dir, &spec, 2, &JobControl::new()).unwrap();
        assert_eq!(report.status, JobStatus::Complete);
        let artifact = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
        let (direct, failures) =
            crate::e20_chaos_recovery_sweep(4, &[0, 2], 2, 2_000_000, &Sweep::sequential());
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(
            artifact,
            Table::render_json_artifact(&[&direct.table]),
            "e20 job artifact must be byte-identical to the chaos sweep's"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn e20_recovery_knobs_change_the_fingerprint() {
        let base = JobSpec::default_for(JobExperiment::E20);
        let tightened = JobSpec {
            respawn_budget: 1,
            ..base.clone()
        };
        let delayed = JobSpec {
            recovery_delay: 7,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), tightened.fingerprint());
        assert_ne!(base.fingerprint(), delayed.fingerprint());
        let widened = JobSpec {
            intensities: vec![0, 1, 2, 4, 8],
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), widened.fingerprint());
    }

    #[test]
    fn e6_job_matches_the_expectation_sweep() {
        let dir = scratch_dir("e6-identity");
        let spec = JobSpec {
            ns: vec![4],
            samples: 6,
            chunks: 3,
            ..JobSpec::default_for(JobExperiment::E6)
        };
        let report = run_job(&dir, &spec, 2, &JobControl::new()).unwrap();
        assert_eq!(report.status, JobStatus::Complete);
        let artifact = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
        let direct = crate::e6_randomized_expectation(&[4], 6, &Sweep::sequential());
        assert_eq!(artifact, Table::render_json_artifact(&[&direct.table]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_exhaustion_degrades_to_an_incomplete_manifest() {
        let dir = scratch_dir("starved");
        let spec = JobSpec {
            ns: vec![3],
            toss_seeds: vec![0],
            chunks: 2,
            retries: 1,
            backoff_ms: 1,
            max_events: 1, // starve the executor: every chunk fails
            ..JobSpec::default_for(JobExperiment::E4)
        };
        let report = run_job(&dir, &spec, 1, &JobControl::new()).unwrap();
        assert_eq!(report.status, JobStatus::Incomplete);
        assert_eq!(report.failed.len(), 2);
        assert_eq!(report.failed[0].attempts, 2, "1 try + 1 retry");
        assert_eq!(report.failed[0].kind, "run-error");
        assert!(report.failed[0].context.contains("e4 trials 0..24"));
        let manifest = std::fs::read_to_string(manifest_path(&dir)).unwrap();
        assert!(manifest.contains("\"status\":\"incomplete\""));
        assert!(manifest.contains("\"failed\":[{\"chunk\":\"0\""));
        // The partial artifact exists and simply has no completed rows.
        let artifact = std::fs::read_to_string(artifact_path(&dir)).unwrap();
        assert!(artifact.contains("\"rows\":[]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_refuses_a_directory_with_checkpoints() {
        let dir = scratch_dir("refuse");
        let spec = tiny_e4_spec();
        run_job(&dir, &spec, 1, &JobControl::new()).unwrap();
        let err = run_job(&dir, &spec, 1, &JobControl::new()).unwrap_err();
        assert!(err.contains("resume"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_spec() {
        let dir = scratch_dir("spec-mismatch");
        run_job(&dir, &tiny_e4_spec(), 1, &JobControl::new()).unwrap();
        // Rewrite the spec with a different grid; the checkpoint's
        // fingerprint no longer matches.
        let other = JobSpec {
            toss_seeds: vec![0, 1],
            ..tiny_e4_spec()
        };
        atomic_write(&spec_path(&dir), other.render()).unwrap();
        let err = resume_job(&dir, 1, &JobControl::new()).unwrap_err();
        assert!(err.contains("different job spec"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_reports_progress_without_executing() {
        let dir = scratch_dir("status");
        let spec = tiny_e4_spec();
        let stopper = JobControl {
            stop_after_chunks: Some(1),
            ..JobControl::new()
        };
        run_job(&dir, &spec, 1, &stopper).unwrap();
        let status = job_status(&dir).unwrap();
        assert!(status.contains("1/4 chunk(s) complete"), "{status}");
        assert!(status.contains("last invocation: interrupted"), "{status}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guarded_chunk_classifies_interrupts() {
        let interrupt = AtomicBool::new(true);
        // The body mimics an executor-polling trial: it spins until the
        // monitor raises the global abort, then panics like
        // `check_trial_deadline` does.
        let outcome = run_chunk_guarded(None, &interrupt, || loop {
            if sweep_abort_requested() {
                panic!("sweep abort requested after 0 recorded events");
            }
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(matches!(outcome, AttemptOutcome::Interrupted));
        assert!(!sweep_abort_requested(), "abort flag is cleared afterwards");
    }

    #[test]
    fn guarded_chunk_classifies_timeouts() {
        let interrupt = AtomicBool::new(false);
        let outcome = run_chunk_guarded(Some(Duration::from_millis(30)), &interrupt, || loop {
            if sweep_abort_requested() {
                panic!("sweep abort requested after 0 recorded events");
            }
            std::thread::sleep(Duration::from_millis(1));
        });
        match outcome {
            AttemptOutcome::Failed { kind, .. } => assert_eq!(kind, "timeout"),
            _ => panic!("expected a timeout failure"),
        }
        assert!(!sweep_abort_requested());
    }

    #[test]
    fn trial_records_round_trip_through_checkpoint_json() {
        let spec = tiny_e4_spec();
        let state = JobState {
            completed: [0, 2].into_iter().collect(),
            records: vec![
                TrialRecord::Subset {
                    index: 3,
                    cell: 0,
                    mask: 3,
                    comparisons: 17,
                    claims: 2,
                    violations: vec!["S={p0}: bad \"state\"".into()],
                },
                TrialRecord::Sample {
                    index: 9,
                    cell: 1,
                    sample: ExpectationSample {
                        terminated: true,
                        wakeup_ok: false,
                        winner_steps: Some(4),
                        max_steps: None,
                    },
                },
            ],
            next_seq: 3,
            fallback_notes: Vec::new(),
        };
        let payload = render_checkpoint(&spec, &state);
        let (completed, records) = parse_checkpoint(&spec, payload.as_bytes()).unwrap();
        assert_eq!(completed, state.completed);
        assert_eq!(records, state.records);
        assert!(payload.contains(&format!("{:016x}", spec.fingerprint())));
        assert!(payload.contains("trial seeds derive as split_mix"));
        // The provenance helper the rng field documents.
        assert_ne!(trial_seed(spec.seed, 0), trial_seed(spec.seed, 1));
    }
}
