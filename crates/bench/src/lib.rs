//! # llsc-bench: experiment regenerators
//!
//! One function per experiment in `EXPERIMENTS.md`, each printing the
//! table its `table_*` binary regenerates. The paper under reproduction is
//! a theory paper without numbered tables or figures, so the "tables" here
//! are the mechanised checks of its lemmas and theorems plus the
//! complexity sweeps that exhibit each bound's shape:
//!
//! | Binary | Experiment | Paper artifact |
//! |--------|------------|----------------|
//! | `table_e1` | E1/E2/E11 | Lemmas 4.1 & 4.2 (secretive schedules) |
//! | `table_e3` | E3 | Lemma 5.1 (`\|UP\| <= 4^r`) |
//! | `table_e4` | E4 | Lemma 5.2 (indistinguishability) |
//! | `table_e5` | E5 | Theorem 6.1 (wakeup winner >= `log4 n`) |
//! | `table_e6` | E6 | Lemma 3.1 (randomized expected complexity) |
//! | `table_e7` | E7 | Theorem 6.2 (the eight object reductions) |
//! | `table_e8` | E8/E9 | tightness: `O(log n)` tree vs `Theta(n)` baselines |
//! | `table_e10` | E10 | the non-oblivious constant-time escape hatch |
//! | `table_e15` | E15 | crash-fault degradation (graceful failure modes) |
//! | `table_e16` | E16 | memory-fault degradation (hardened algorithms) |
//! | `table_e17` | E17 | combined chaos mode (crash + memory faults + random schedule) |
//!
//! Each function returns an [`harness::Experiment`] — the rendered table
//! plus its typed rows — so integration tests can assert on the numbers
//! without re-parsing stdout. Every binary accepts `--threads N`
//! (deterministic parallel fan-out; output byte-identical at any thread
//! count), `--json PATH` (a structured artifact of the same tables), and
//! the sweep-resilience flags `--seed S`, `--retries N`, and
//! `--trial-timeout-ms MS`; fault-injection binaries additionally accept
//! `--max-events N` and report isolated trial failures in the artifact's
//! `"failures"` array, each carrying a replayable repro case
//! (`--repro-dir DIR` writes them as files for `llsc replay` /
//! `llsc shrink`; see [`repro`]); see [`harness`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod job;
pub mod repro;
pub mod table;
pub mod xcheck;

pub use experiments::*;
