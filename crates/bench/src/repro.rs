//! The experiment-side half of the failure-replay subsystem.
//!
//! `llsc_shmem::repro` serializes, re-executes, and shrinks a
//! [`ReproCase`] — but a case names its algorithm, and only this crate
//! knows the experiment algorithm catalog. This module supplies that
//! glue:
//!
//! * [`resolve_algorithm`] — the name → constructor registry covering
//!   every algorithm the E15/E16/E17/E19 fault experiments run (including the
//!   labeled `ObjectWakeup` rows whose display names disambiguate the
//!   backing universal construction);
//! * [`run_case`] / [`run_case_with`] — execute a case under panic
//!   isolation and classify the result into the failure-class vocabulary
//!   the experiments share: `recovered`, `detected-wrong`,
//!   `silent-wrong`, `stalled`, `crashed`, `aborted`, `panic`;
//! * [`shrink_case`] — materialize the case's schedule into an explicit
//!   pick list and delta-debug it (plus the fault/crash lists) down to a
//!   minimal reproducer with the same failure class.
//!
//! The `llsc replay` and `llsc shrink` subcommands are thin wrappers over
//! these functions.

use crate::experiments::{e15_algorithm, e16_algorithm, e16_unhardened_twin, e19_algorithm};
use llsc_core::check_wakeup;
use llsc_shmem::repro::{execute, shrink, ReproCase, ShrinkReport};
use llsc_shmem::{Algorithm, ProcessId, RunOutcome};
use llsc_wakeup::check_mutex_tokens;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resolves an algorithm name recorded in a [`ReproCase`] back to a
/// constructor, or `None` for an unknown name.
///
/// The registry scans the experiment catalogs in a fixed order (E16
/// hardened algorithms and their labeled `ObjectWakeup` rows, then the
/// E15 algorithms, then the E19 recoverable algorithms, then the
/// unhardened twins), so a name that appears in
/// several catalogs — e.g. `counter-wakeup`, which E15 runs directly and
/// E16 uses as a twin — resolves to the same construction every time.
pub fn resolve_algorithm(name: &str, n: usize) -> Option<Box<dyn Algorithm>> {
    match name {
        "wakeup-from-fetch&increment[hardened-direct-llsc]" => return Some(e16_algorithm(3, n)),
        "wakeup-from-fetch&increment[hardened-combining-tree]" => return Some(e16_algorithm(4, n)),
        "wakeup-from-fetch&increment[hardened-adt-group-update]" => {
            return Some(e16_algorithm(5, n))
        }
        _ => {}
    }
    for idx in 0..3 {
        let alg = e16_algorithm(idx, n);
        if alg.name() == name {
            return Some(alg);
        }
    }
    for idx in 0..4 {
        let alg = e15_algorithm(idx, n);
        if alg.name() == name {
            return Some(alg);
        }
    }
    for idx in 0..3 {
        let alg = e19_algorithm(idx);
        if alg.name() == name {
            return Some(alg);
        }
    }
    for idx in 0..3 {
        let alg = e16_unhardened_twin(idx, n);
        if alg.name() == name {
            return Some(alg);
        }
    }
    None
}

/// Classifies a completed (non-panicking) execution into the shared
/// failure-class vocabulary.
///
/// The outcome decides first (a stall is a stall whatever the partial
/// run's safety looks like — matching E16's bucketing); only runs that
/// actually terminated are judged on correctness and detection telemetry.
pub fn classify(outcome: &RunOutcome, safe: bool, detected: u64) -> &'static str {
    match outcome {
        RunOutcome::BudgetExhausted { .. } => "stalled",
        RunOutcome::Crashed { .. } => "crashed",
        RunOutcome::DivergedLocalBurst { .. } => "aborted",
        RunOutcome::Completed | RunOutcome::FaultInjected { .. } => {
            if safe {
                "recovered"
            } else if detected > 0 {
                "detected-wrong"
            } else {
                "silent-wrong"
            }
        }
    }
}

/// The classified result of one case execution.
#[derive(Clone, Debug)]
pub struct CaseRun {
    /// The replayed [`RunOutcome`] in `Debug` form — the string replay
    /// compares byte-for-byte against [`ReproCase::outcome`] — or
    /// `"panic"` when the execution panicked.
    pub outcome_debug: String,
    /// The failure class (see [`classify`]; `"panic"` for panicking
    /// executions).
    pub class: String,
    /// The explicit schedule trace of the execution (empty on panic).
    pub trace: Vec<ProcessId>,
    /// Detections published to the hardened telemetry registers.
    pub detected: u64,
    /// Whether the recorded run satisfied the wakeup specification.
    pub safe: bool,
}

/// Executes `case` against an already-resolved algorithm, under panic
/// isolation, and classifies the result.
pub fn run_case_with(case: &ReproCase, alg: &dyn Algorithm) -> CaseRun {
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        let replayed = execute(case, alg);
        // Telemetry from both hardened families, exactly as E16 reads it.
        let detected: u64 = (0..case.n)
            .map(ProcessId)
            .map(|p| {
                let wakeup = replayed
                    .exec
                    .memory()
                    .peek(llsc_wakeup::hardened_detect_reg(p));
                let universal = replayed
                    .exec
                    .memory()
                    .peek(llsc_universal::hardened_detect_reg(p));
                wakeup.as_int().unwrap_or(0).max(0) as u64
                    + universal.as_int().unwrap_or(0).max(0) as u64
            })
            .sum();
        // The recoverable mutex returns tokens, not wakeup bits: judge it
        // on token distinctness instead of the wakeup conditions.
        let safe = if case.algorithm == "recoverable-mutex" {
            check_mutex_tokens(
                (0..case.n).map(|i| replayed.exec.verdict(ProcessId(i))),
                case.n,
            )
            .is_ok()
        } else {
            check_wakeup(replayed.exec.run()).ok()
        };
        (replayed.outcome, replayed.trace, detected, safe)
    }));
    match replayed {
        Ok((outcome, trace, detected, safe)) => CaseRun {
            outcome_debug: format!("{outcome:?}"),
            class: classify(&outcome, safe, detected).to_string(),
            trace,
            detected,
            safe,
        },
        Err(_) => CaseRun {
            outcome_debug: "panic".to_string(),
            class: "panic".to_string(),
            trace: Vec::new(),
            detected: 0,
            safe: false,
        },
    }
}

/// [`run_case_with`] after resolving the case's algorithm by name.
///
/// # Errors
///
/// Returns a message when [`ReproCase::algorithm`] is not in the
/// registry.
pub fn run_case(case: &ReproCase) -> Result<CaseRun, String> {
    let alg = resolve_algorithm(&case.algorithm, case.n)
        .ok_or_else(|| format!("unknown algorithm {:?}", case.algorithm))?;
    Ok(run_case_with(case, alg.as_ref()))
}

/// Materializes and delta-debugs `case` down to a minimal reproducer
/// with the same failure class.
///
/// The baseline execution both (re)establishes the failure class — the
/// shrink target — and records the explicit schedule trace. If replaying
/// that trace preserves the class (it does whenever the case is
/// deterministic, which every seeded case is), the named schedule is
/// swapped for the explicit one so the schedule and process-set passes
/// have something to chew on; otherwise shrinking falls back to the
/// fault/crash lists alone. The returned report's case has its outcome
/// and class fields refreshed from the minimal reproducer's own
/// execution.
///
/// # Errors
///
/// Returns a message when the case's algorithm is unknown.
pub fn shrink_case(case: &ReproCase, max_replays: usize) -> Result<ShrinkReport, String> {
    let alg = resolve_algorithm(&case.algorithm, case.n)
        .ok_or_else(|| format!("unknown algorithm {:?}", case.algorithm))?;
    let alg = alg.as_ref();
    let baseline = run_case_with(case, alg);
    let target = baseline.class.clone();
    let mut prelude = Vec::new();
    if !case.class.is_empty() && case.class != target {
        prelude.push(format!(
            "note: recorded class {:?} differs from re-executed class {:?}; shrinking \
             toward the re-executed class",
            case.class, target
        ));
    }

    let mut start = case.clone();
    start.class = target.clone();
    if !baseline.trace.is_empty() {
        let materialized = start.materialized(baseline.trace.clone());
        if run_case_with(&materialized, alg).class == target {
            prelude.push(format!(
                "materialized schedule: {} explicit pick(s)",
                baseline.trace.len()
            ));
            start = materialized;
        } else {
            prelude.push(
                "schedule not materialized (trace replay changed the class); shrinking \
                 fault lists only"
                    .to_string(),
            );
        }
    }

    let mut report = shrink(
        &start,
        |cand| Some(run_case_with(cand, alg).class),
        max_replays,
    );
    let final_run = run_case_with(&report.case, alg);
    report.case.outcome = final_run.outcome_debug;
    report.case.class = final_run.class;
    prelude.append(&mut report.log);
    report.log = prelude;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::repro::{ScheduleSpec, TossSpec};
    use llsc_shmem::{CrashPlan, FaultPlan};

    fn clean_case(algorithm: &str, n: usize, seed: u64) -> ReproCase {
        ReproCase {
            experiment: "test".to_string(),
            algorithm: algorithm.to_string(),
            n,
            toss: TossSpec::Seeded(seed),
            schedule: ScheduleSpec::RoundRobin,
            crashes: CrashPlan::none(),
            recovery: None,
            faults: FaultPlan::none(),
            max_events: 2_000_000,
            max_steps: 40_000,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        }
    }

    #[test]
    fn registry_resolves_every_experiment_name() {
        let labeled = [
            "wakeup-from-fetch&increment[hardened-direct-llsc]",
            "wakeup-from-fetch&increment[hardened-combining-tree]",
            "wakeup-from-fetch&increment[hardened-adt-group-update]",
        ];
        for name in labeled {
            assert!(resolve_algorithm(name, 4).is_some(), "{name}");
        }
        for idx in 0..4 {
            let name = e15_algorithm(idx, 4).name().to_string();
            let resolved = resolve_algorithm(&name, 4).expect("e15 name resolves");
            assert_eq!(resolved.name(), name);
        }
        for idx in 0..3 {
            let name = e16_algorithm(idx, 4).name().to_string();
            assert!(resolve_algorithm(&name, 4).is_some(), "{name}");
            let twin = e16_unhardened_twin(idx, 4).name().to_string();
            assert!(resolve_algorithm(&twin, 4).is_some(), "{twin}");
        }
        for idx in 0..3 {
            let name = e19_algorithm(idx).name().to_string();
            let resolved = resolve_algorithm(&name, 4).expect("e19 name resolves");
            assert_eq!(resolved.name(), name);
        }
        assert!(resolve_algorithm("no-such-algorithm", 4).is_none());
    }

    #[test]
    fn recoverable_mutex_case_judged_on_tokens_not_wakeup() {
        // A clean recoverable-mutex run returns tokens 1..=n, which the
        // wakeup checker would reject; the token checker accepts it.
        let case = clean_case("recoverable-mutex", 4, 5);
        let run = run_case(&case).unwrap();
        assert_eq!(run.outcome_debug, "Completed");
        assert_eq!(run.class, "recovered");
        assert!(run.safe);
    }

    #[test]
    fn crashed_recoverable_case_replays_and_shrinks_with_class_preserved() {
        use llsc_shmem::repro::RecoverySpec;

        // Crash-stop (no recovery): the victim stays down and the case
        // classifies as crashed.
        let mut case = clean_case("recoverable-mutex", 4, 9);
        case.crashes = CrashPlan::at([(ProcessId(1), 2)]);
        let run = run_case(&case).unwrap();
        assert_eq!(run.class, "crashed");
        case.class = run.class.clone();
        case.outcome = run.outcome_debug;

        let report = shrink_case(&case, 500).unwrap();
        assert_eq!(report.case.class, "crashed", "class preserved");
        let replayed = run_case(&report.case).unwrap();
        assert_eq!(replayed.class, "crashed");
        assert_eq!(replayed.outcome_debug, report.case.outcome);

        // The same crash with a recovery spec revives the victim and the
        // trial completes safely.
        case.recovery = Some(RecoverySpec {
            delay: 4,
            budget: 1,
        });
        let recovered = run_case(&case).unwrap();
        assert_eq!(recovered.class, "recovered");
        assert!(recovered.safe);
    }

    #[test]
    fn clean_cases_classify_as_recovered() {
        let case = clean_case("counter-wakeup", 4, 7);
        let run = run_case(&case).unwrap();
        assert_eq!(run.class, "recovered");
        assert_eq!(run.outcome_debug, "Completed");
        assert!(run.safe);
        assert!(!run.trace.is_empty());
    }

    #[test]
    fn run_case_is_deterministic() {
        let case = clean_case("tournament-wakeup", 4, 11);
        let a = run_case(&case).unwrap();
        let b = run_case(&case).unwrap();
        assert_eq!(a.outcome_debug, b.outcome_debug);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn starved_budget_classifies_as_stalled_and_shrinks() {
        let mut case = clean_case("counter-wakeup", 4, 3);
        case.max_events = 10;
        let run = run_case(&case).unwrap();
        assert_eq!(run.class, "stalled");
        assert!(
            run.outcome_debug.starts_with("BudgetExhausted"),
            "{}",
            run.outcome_debug
        );
        case.class = run.class.clone();
        case.outcome = run.outcome_debug;

        let report = shrink_case(&case, 500).unwrap();
        assert_eq!(report.case.class, "stalled", "class preserved");
        assert!(
            report.final_size < report.initial_size.max(run.trace.len()),
            "strictly smaller: {} vs schedule {}",
            report.final_size,
            run.trace.len()
        );
        // The minimal reproducer replays to the class it records.
        let replayed = run_case(&report.case).unwrap();
        assert_eq!(replayed.class, "stalled");
        assert_eq!(replayed.outcome_debug, report.case.outcome);
    }

    #[test]
    fn classify_covers_the_vocabulary() {
        use RunOutcome::*;
        assert_eq!(classify(&Completed, true, 0), "recovered");
        assert_eq!(classify(&Completed, false, 2), "detected-wrong");
        assert_eq!(
            classify(
                &FaultInjected {
                    spurious_sc: 1,
                    corruptions: 0
                },
                false,
                0
            ),
            "silent-wrong"
        );
        assert_eq!(classify(&BudgetExhausted { events: 9 }, true, 0), "stalled");
        assert_eq!(classify(&Crashed { pid: ProcessId(1) }, true, 0), "crashed");
        assert_eq!(
            classify(&DivergedLocalBurst { pid: ProcessId(0) }, true, 0),
            "aborted"
        );
    }
}
