//! Minimal fixed-width table rendering for the experiment binaries.

use llsc_shmem::json;
use std::fmt::Display;

/// A simple right-aligned text table with a title and a header row.
///
/// # Examples
///
/// ```
/// use llsc_bench::table::Table;
/// let mut t = Table::new("demo", ["n", "value"]);
/// t.row(["4", "10"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("value"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new<T, I, S>(title: T, headers: I) -> Self
    where
        T: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics on a cell-count mismatch.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Display,
    {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.max(self.title.len())));
        out.push('\n');
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(total.max(self.title.len())));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object:
    /// `{"title": …, "headers": […], "rows": [[…]]}`.
    ///
    /// All cells are emitted as strings — exactly the strings the text
    /// table shows — so the artifact is a faithful, diffable record of the
    /// printed numbers. Nothing machine-dependent (thread counts, wall
    /// times) is embedded: regenerating with a different `--threads` value
    /// produces a byte-identical file.
    ///
    /// # Examples
    ///
    /// ```
    /// use llsc_bench::table::Table;
    /// let mut t = Table::new("demo", ["n", "value"]);
    /// t.row(["4", "10"]);
    /// let json = t.render_json();
    /// assert_eq!(
    ///     json,
    ///     "{\"title\":\"demo\",\"headers\":[\"n\",\"value\"],\"rows\":[[\"4\",\"10\"]]}"
    /// );
    /// let back = Table::from_json(&json).unwrap();
    /// assert_eq!(back.render(), t.render());
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        json::push_string(&mut out, &self.title);
        out.push_str(",\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, h);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_string(&mut out, cell);
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Renders a group of tables as one artifact:
    /// `{"tables":[…]}` — the format every `table_*` binary's `--json`
    /// flag writes, even for a single table.
    pub fn render_json_artifact(tables: &[&Table]) -> String {
        Table::render_json_artifact_with_failures(tables, &[])
    }

    /// The fault-aware artifact: `{"tables":[…],"failures":[…]}`.
    ///
    /// Each failure is an all-string object
    /// `{"trial":"…","seed":"0x…","message":"…"}` recording one isolated
    /// trial panic (see [`llsc_shmem::Sweep::run_fallible`]), extended
    /// with a `"context"` key when the experiment recorded one (the
    /// fault/crash plan summary that makes the trial reproducible from
    /// the artifact alone), an `"attempts"`/`"derived_seed"` pair when
    /// deterministic retries ran (see [`llsc_shmem::Sweep::with_retries`];
    /// the derived seed is the one the final failing attempt actually
    /// used), and a `"repro"` key holding the failure's serialized
    /// [`llsc_shmem::ReproCase`] when the experiment attached one — the
    /// same document `--repro-dir` writes for `llsc replay` /
    /// `llsc shrink`. All optional keys are omitted when absent, so
    /// legacy artifacts are byte-identical. The
    /// `failures` key is omitted entirely when there are none, so a clean
    /// run's artifact is byte-identical to [`Table::render_json_artifact`]
    /// and to artifacts written before failures were recorded.
    pub fn render_json_artifact_with_failures(
        tables: &[&Table],
        failures: &[llsc_shmem::TrialFailure],
    ) -> String {
        let mut out = String::from("{\"tables\":[");
        for (i, t) in tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.render_json());
        }
        out.push(']');
        if !failures.is_empty() {
            out.push_str(",\"failures\":[");
            for (i, f) in failures.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"trial\":");
                json::push_string(&mut out, &f.index.to_string());
                out.push_str(",\"seed\":");
                json::push_string(&mut out, &format!("{:#018x}", f.seed));
                out.push_str(",\"message\":");
                json::push_string(&mut out, &f.payload);
                if !f.context.is_empty() {
                    out.push_str(",\"context\":");
                    json::push_string(&mut out, &f.context);
                }
                if f.attempts != 1 {
                    out.push_str(",\"attempts\":");
                    json::push_string(&mut out, &f.attempts.to_string());
                    out.push_str(",\"derived_seed\":");
                    json::push_string(&mut out, &format!("{:#018x}", f.derived_seed));
                }
                if let Some(repro) = &f.repro {
                    out.push_str(",\"repro\":");
                    json::push_string(&mut out, repro.trim_end());
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push_str("}\n");
        out
    }

    /// Parses a table back from the [`Table::render_json`] format.
    pub fn from_json(text: &str) -> Result<Table, String> {
        let (value, rest) = json::parse_prefix(text.trim_start())?;
        if !rest.trim_start().is_empty() {
            return Err("trailing data after JSON value".into());
        }
        Table::from_json_value(&value)
    }

    /// Parses a `{"tables":[…]}` artifact back into its tables.
    pub fn from_json_artifact(text: &str) -> Result<Vec<Table>, String> {
        let (value, rest) = json::parse_prefix(text.trim_start())?;
        if !rest.trim_start().is_empty() {
            return Err("trailing data after JSON value".into());
        }
        let tables = value
            .field("tables")
            .ok_or("artifact has no `tables` field")?
            .as_array()
            .ok_or("`tables` is not an array")?;
        tables.iter().map(Table::from_json_value).collect()
    }

    fn from_json_value(value: &json::Value) -> Result<Table, String> {
        let title = value
            .field("title")
            .and_then(json::Value::as_str)
            .ok_or("missing string `title`")?;
        let headers: Vec<String> = value
            .field("headers")
            .and_then(json::Value::as_array)
            .ok_or("missing array `headers`")?
            .iter()
            .map(|h| h.as_str().map(str::to_string).ok_or("non-string header"))
            .collect::<Result<_, _>>()?;
        let mut table = Table::new(title, headers);
        for row in value
            .field("rows")
            .and_then(json::Value::as_array)
            .ok_or("missing array `rows`")?
        {
            let cells: Vec<String> = row
                .as_array()
                .ok_or("non-array row")?
                .iter()
                .map(|c| c.as_str().map(str::to_string).ok_or("non-string cell"))
                .collect::<Result<_, _>>()?;
            if cells.len() != table.headers.len() {
                return Err("row width mismatch in JSON".into());
            }
            table.rows.push(cells);
        }
        Ok(table)
    }

    /// Renders the table as CSV (header row first, fields quoted only when
    /// they contain commas or quotes) — for piping experiment output into
    /// plotting tools.
    pub fn render_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", ["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "title");
        assert!(lines[2].contains("long-header"));
        // All data lines are equally long after alignment.
        assert_eq!(lines[4].len(), lines[5].len());
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new("t", ["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn json_round_trips_including_escapes() {
        let mut t = Table::new("quo\"ted \\ title\n", ["a", "b"]);
        t.row(["x,y", "tab\there"]);
        t.row(["", "\u{1}"]);
        let back = Table::from_json(&t.render_json()).unwrap();
        assert_eq!(back.title(), t.title());
        assert_eq!(back.headers(), t.headers());
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn artifact_round_trips_multiple_tables() {
        let mut a = Table::new("first", ["n"]);
        a.row(["1"]);
        let b = Table::new("second (empty)", ["x", "y"]);
        let artifact = Table::render_json_artifact(&[&a, &b]);
        assert!(artifact.ends_with('\n'));
        let back = Table::from_json_artifact(&artifact).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].render(), a.render());
        assert_eq!(back[1].render(), b.render());
    }

    #[test]
    fn failure_free_artifact_matches_legacy_format() {
        let mut a = Table::new("t", ["c"]);
        a.row(["1"]);
        assert_eq!(
            Table::render_json_artifact_with_failures(&[&a], &[]),
            Table::render_json_artifact(&[&a]),
            "omitting the failures key keeps clean artifacts byte-identical"
        );
    }

    #[test]
    fn failures_render_next_to_tables_and_stay_parseable() {
        let mut a = Table::new("t", ["c"]);
        a.row(["1"]);
        let failures = vec![llsc_shmem::TrialFailure {
            index: 7,
            seed: 0x1234,
            derived_seed: 0x1234,
            payload: "budget \"starved\"".to_string(),
            context: String::new(),
            attempts: 1,
            repro: None,
        }];
        let artifact = Table::render_json_artifact_with_failures(&[&a], &failures);
        assert!(artifact.contains("\"failures\":[{\"trial\":\"7\""));
        assert!(artifact.contains("\"seed\":\"0x0000000000001234\""));
        assert!(artifact.contains("budget \\\"starved\\\""));
        // Without context/retries/repro the legacy three-key shape is kept.
        assert!(!artifact.contains("\"context\""));
        assert!(!artifact.contains("\"attempts\""));
        assert!(!artifact.contains("\"derived_seed\""));
        assert!(!artifact.contains("\"repro\""));
        // The extra key must not break the artifact parser.
        let back = Table::from_json_artifact(&artifact).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].render(), a.render());
    }

    #[test]
    fn failure_context_and_attempts_render_when_present() {
        let mut a = Table::new("t", ["c"]);
        a.row(["1"]);
        let failures = vec![llsc_shmem::TrialFailure {
            index: 2,
            seed: 5,
            derived_seed: 0xAB,
            payload: "boom".to_string(),
            context: "alg=x n=8 fault-plan:none".to_string(),
            attempts: 3,
            repro: Some("{\"version\":\"1\",\"n\":\"4\"}\n".to_string()),
        }];
        let artifact = Table::render_json_artifact_with_failures(&[&a], &failures);
        assert!(artifact.contains("\"context\":\"alg=x n=8 fault-plan:none\""));
        assert!(artifact.contains("\"attempts\":\"3\""));
        assert!(artifact.contains("\"derived_seed\":\"0x00000000000000ab\""));
        assert!(
            artifact.contains("\"repro\":\"{\\\"version\\\":\\\"1\\\",\\\"n\\\":\\\"4\\\"}\""),
            "the repro document is embedded as an escaped string"
        );
        let back = Table::from_json_artifact(&artifact).unwrap();
        assert_eq!(back.len(), 1, "extra keys stay parseable");
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(Table::from_json("{\"title\":\"t\"}").is_err());
        assert!(Table::from_json("[1]").is_err());
        assert!(Table::from_json("{\"title\":\"t\",\"headers\":[\"a\"],\"rows\":[[]]}").is_err());
        assert!(Table::from_json("").is_err());
    }
}
