//! Minimal fixed-width table rendering for the experiment binaries.

use std::fmt::Display;

/// A simple right-aligned text table with a title and a header row.
///
/// # Examples
///
/// ```
/// use llsc_bench::table::Table;
/// let mut t = Table::new("demo", ["n", "value"]);
/// t.row(["4", "10"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("value"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new<T, I, S>(title: T, headers: I) -> Self
    where
        T: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
        rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics on a cell-count mismatch.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Display,
    {
        let cells: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total.max(self.title.len())));
        out.push('\n');
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(total.max(self.title.len())));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Renders the table as CSV (header row first, fields quoted only when
    /// they contain commas or quotes) — for piping experiment output into
    /// plotting tools.
    pub fn render_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", ["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "title");
        assert!(lines[2].contains("long-header"));
        // All data lines are equally long after alignment.
        assert_eq!(lines[4].len(), lines[5].len());
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new("t", ["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only-one"]);
    }
}
