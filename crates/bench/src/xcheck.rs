//! Simulator ⇄ hardware cross-validation (the `llsc xcheck` harness)
//! and experiment E18 (real-contention throughput, `BENCH_pr6.json`).
//!
//! The deterministic simulator and the CAS-based hardware backend
//! (`llsc-atomics`) execute the *same* [`Algorithm`] programs; this
//! module checks that they agree where the model says they must:
//!
//! * **Safety** — every hardware history must be valid. For a universal
//!   construction, the per-process `(invoked_at, responded_at)` clock
//!   stamps recorded by the thread driver yield a concurrent history
//!   that must linearize against the sequential specification
//!   ([`llsc_objects::is_linearizable`]). For a wakeup algorithm, all
//!   processes must terminate with 0/1, someone must return 1, and no
//!   winner may respond before every process has taken its first step.
//! * **Cost** — per-process shared-access counts must land inside an
//!   envelope derived from simulator sweeps over sequential,
//!   round-robin, and seeded-random schedules: at least the cheapest
//!   simulated schedule, at most `2 · max + 2`. The slack is principled:
//!   OS preemption can realize adversarial interleavings the sampled
//!   schedules miss, and LL/SC retry loops pay ~2× under a lost race,
//!   but an unbounded blow-up (or an impossibly cheap run) means the
//!   backends disagree about the algorithm, not the scheduler.
//!
//! E18 then times both backends on the same workloads — a wakeup
//! algorithm and a universal construction — at several process counts.
//! On a single-core host the hardware numbers measure synchronization
//! *overhead*, not scaling; see EXPERIMENTS.md.

use llsc_atomics::{
    run_threads_supervised, run_threads_watchdog, HwEventKind, HwMemory, HwRun, HwRunError,
};
use llsc_objects::{is_linearizable, History, ObjectSpec};
use llsc_shmem::repro::{execute as execute_sim_case, ReproCase, ScheduleSpec, TossSpec};
use llsc_shmem::{
    Algorithm, ChaosPlan, CrashPlan, ExecutionBackend, Executor, ExecutorConfig, FaultPlan,
    ProcessId, RandomScheduler, RecoverySpec, RoundRobinScheduler, RunError, RunOutcome, Scheduler,
    SeededTosses, SequentialScheduler, Value,
};
use llsc_universal::{ImplAlgorithm, ObjectImplementation};
use llsc_wakeup::check_mutex_tokens;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock deadline for one hardware trial: generous against slow CI
/// hosts, tiny against a CI job-level kill. A wedged trial (livelock
/// under a huge `max_steps` budget, an OS-starved thread that never
/// runs) fails cleanly with [`HwRunError::WatchdogTimeout`] instead of
/// hanging the harness — the hardware mirror of the simulator sweeps'
/// `--trial-timeout-ms`.
const HW_TRIAL_DEADLINE: Duration = Duration::from_secs(60);

/// Why a cross-validation (or E18 case) was inconclusive: one of the two
/// backends failed to produce a run. Distinct from a `FAIL` report,
/// which is a *conclusive* disagreement between backends.
#[derive(Clone, Debug, PartialEq)]
pub enum XcheckError {
    /// The simulator side failed (budget exhaustion, divergence).
    Sim(RunError),
    /// The hardware side failed (divergence, a panicked process thread,
    /// or the trial watchdog).
    Hw(HwRunError),
}

impl fmt::Display for XcheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcheckError::Sim(e) => write!(f, "simulator backend: {e}"),
            XcheckError::Hw(e) => write!(f, "hardware backend: {e}"),
        }
    }
}

impl std::error::Error for XcheckError {}

impl From<RunError> for XcheckError {
    fn from(e: RunError) -> XcheckError {
        XcheckError::Sim(e)
    }
}

impl From<HwRunError> for XcheckError {
    fn from(e: HwRunError) -> XcheckError {
        XcheckError::Hw(e)
    }
}

/// Limits and trial counts for one cross-validation.
#[derive(Clone, Debug)]
pub struct XcheckConfig {
    /// Number of processes.
    pub n: usize,
    /// Hardware trials (each with a distinct toss seed).
    pub trials: usize,
    /// Seeds for the simulator's random-interleaving schedules (the
    /// sequential and round-robin schedules always contribute).
    pub sim_seeds: Vec<u64>,
    /// Per-process action budget before a run is declared divergent.
    pub max_steps: u64,
    /// Whether shared-access counts must land inside the simulator
    /// envelope for the check to pass. Disable for algorithms whose
    /// counts are inherently schedule-dependent — a polling construction
    /// (a parked follower in the adt tree spins until its combiner
    /// serves it) does unboundedly many accesses under an unfair OS
    /// schedule, so only its *safety* is comparable across backends;
    /// the counts are still measured and reported as advisory.
    pub check_envelope: bool,
}

impl Default for XcheckConfig {
    fn default() -> Self {
        XcheckConfig {
            n: 4,
            trials: 8,
            sim_seeds: vec![1, 2, 3],
            max_steps: 1_000_000,
            check_envelope: true,
        }
    }
}

/// One hardware trial's verdict.
#[derive(Clone, Debug)]
pub struct XcheckTrial {
    /// Toss seed the trial ran under.
    pub seed: u64,
    /// Worst per-process shared-access count of the trial.
    pub max_ops: u64,
    /// Worst per-process DSM RMR count of the trial (remoteness is
    /// history-free — `home(R) = R mod n` — so both backends bill it
    /// identically per access; see [`llsc_shmem::dsm_cost`]).
    pub max_dsm_rmrs: u64,
    /// Whether the trial's history passed the safety check
    /// (linearizability, or wakeup validity).
    pub safe: bool,
    /// Whether `max_ops` landed inside the simulator envelope.
    pub in_envelope: bool,
    /// Whether `max_dsm_rmrs` landed inside the simulator DSM envelope.
    pub in_dsm_envelope: bool,
}

/// The outcome of one simulator ⇄ hardware cross-validation.
#[derive(Clone, Debug)]
pub struct XcheckReport {
    /// What was checked (algorithm or implementation name).
    pub subject: String,
    /// `"wakeup"` or `"universal"`.
    pub kind: &'static str,
    /// Number of processes.
    pub n: usize,
    /// `(min, max)` of the worst per-process count over the simulator
    /// schedules.
    pub sim_envelope: (u64, u64),
    /// The acceptance interval derived from the envelope.
    pub accept: (u64, u64),
    /// `(min, max)` of the worst per-process DSM RMR count over the
    /// simulator schedules.
    pub sim_dsm_envelope: (u64, u64),
    /// The acceptance interval derived from the DSM envelope.
    pub dsm_accept: (u64, u64),
    /// Per-trial hardware verdicts.
    pub trials: Vec<XcheckTrial>,
    /// Whether the envelope verdicts counted toward `ok` (false in
    /// safety-only mode; counts are then advisory).
    pub envelope_checked: bool,
    /// True iff every trial was safe and — when the envelope is
    /// checked — inside the envelope.
    pub ok: bool,
}

impl XcheckReport {
    fn finish(
        subject: String,
        kind: &'static str,
        n: usize,
        sim_envelope: (u64, u64),
        sim_dsm_envelope: (u64, u64),
        trials: Vec<XcheckTrial>,
        envelope_checked: bool,
    ) -> XcheckReport {
        let ok = trials
            .iter()
            .all(|t| t.safe && (!envelope_checked || (t.in_envelope && t.in_dsm_envelope)));
        XcheckReport {
            subject,
            kind,
            n,
            sim_envelope,
            accept: accept_interval(sim_envelope),
            sim_dsm_envelope,
            dsm_accept: accept_interval(sim_dsm_envelope),
            trials,
            envelope_checked,
            ok,
        }
    }

    /// A compact human-readable rendering, one line per trial.
    pub fn render(&self) -> String {
        let mut out = format!(
            "xcheck {kind} {subject}: n={n} sim envelope [{lo}, {hi}] accept [{alo}, {ahi}] dsm [{dlo}, {dhi}] accept [{dalo}, {dahi}]{mode}\n",
            kind = self.kind,
            subject = self.subject,
            n = self.n,
            lo = self.sim_envelope.0,
            hi = self.sim_envelope.1,
            alo = self.accept.0,
            ahi = self.accept.1,
            dlo = self.sim_dsm_envelope.0,
            dhi = self.sim_dsm_envelope.1,
            dalo = self.dsm_accept.0,
            dahi = self.dsm_accept.1,
            mode = if self.envelope_checked {
                ""
            } else {
                " (safety only; counts advisory)"
            },
        );
        for t in &self.trials {
            out.push_str(&format!(
                "  trial seed={seed:<4} max_ops={ops:<6} dsm_rmrs={dsm:<6} safe={safe} in_envelope={env} in_dsm_envelope={denv}\n",
                seed = t.seed,
                ops = t.max_ops,
                dsm = t.max_dsm_rmrs,
                safe = t.safe,
                env = t.in_envelope,
                denv = t.in_dsm_envelope,
            ));
        }
        out.push_str(if self.ok { "  PASS\n" } else { "  FAIL\n" });
        out
    }
}

fn accept_interval((lo, hi): (u64, u64)) -> (u64, u64) {
    (lo, 2 * hi + 2)
}

/// The simulator schedules that contribute to the envelope.
fn sim_schedules(seeds: &[u64]) -> Vec<Box<dyn Scheduler>> {
    let mut scheds: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SequentialScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
    ];
    for &seed in seeds {
        scheds.push(Box::new(RandomScheduler::new(seed)));
    }
    scheds
}

/// Worst per-process (shared-access, DSM RMR) counts of one simulated
/// run.
fn sim_max_costs(
    alg: &dyn Algorithm,
    n: usize,
    toss_seed: u64,
    sched: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<(u64, u64), RunError> {
    let mut exec = Executor::new(
        alg,
        n,
        Arc::new(SeededTosses::new(toss_seed)),
        ExecutorConfig::lightweight(),
    );
    exec.drive(sched, max_steps)?;
    exec.run_outcome().into_result()?;
    let run = exec.into_run();
    let ops = ProcessId::all(n)
        .map(|p| run.shared_steps(p))
        .max()
        .unwrap_or(0);
    let dsm = ProcessId::all(n)
        .map(|p| run.dsm_rmrs(p))
        .max()
        .unwrap_or(0);
    Ok((ops, dsm))
}

/// The `(min, max)` simulator envelopes for the two comparable cost
/// measures: worst per-process shared accesses and worst per-process
/// DSM RMRs. (CC RMRs depend on coherence history the hardware cannot
/// observe, so they are not cross-checked.)
struct SimEnvelopes {
    ops: (u64, u64),
    dsm: (u64, u64),
}

/// The `(min, max)` worst-case count over the envelope schedules that
/// complete. Some algorithms are only live under fair schedulers — a
/// parked follower in a combining tree polls forever under the strict
/// sequential schedule (a documented fairness requirement, not a bug) —
/// so a schedule that exhausts its budget is dropped from the envelope
/// rather than failing the check. At least one schedule must complete;
/// if none does, the last error is reported.
fn sim_envelope(
    alg: &dyn Algorithm,
    cfg: &XcheckConfig,
    toss_seed: u64,
) -> Result<SimEnvelopes, RunError> {
    let mut ops = (u64::MAX, 0);
    let mut dsm = (u64::MAX, 0);
    let mut completed = false;
    let mut last_err = None;
    for mut sched in sim_schedules(&cfg.sim_seeds) {
        match sim_max_costs(alg, cfg.n, toss_seed, sched.as_mut(), cfg.max_steps) {
            Ok((max_ops, max_dsm)) => {
                ops = (ops.0.min(max_ops), ops.1.max(max_ops));
                dsm = (dsm.0.min(max_dsm), dsm.1.max(max_dsm));
                completed = true;
            }
            Err(e) => last_err = Some(e),
        }
    }
    if completed {
        Ok(SimEnvelopes { ops, dsm })
    } else {
        Err(last_err.expect("at least one schedule ran"))
    }
}

fn hw_trial(alg: &dyn Algorithm, n: usize, seed: u64, max_steps: u64) -> Result<HwRun, HwRunError> {
    let mem = HwMemory::for_algorithm(alg, n, Arc::new(SeededTosses::new(seed)));
    run_threads_watchdog(alg, &mem, max_steps, HW_TRIAL_DEADLINE)
}

/// Wakeup validity on hardware: everyone terminates with 0/1, someone
/// returns 1, and no winner's response is stamped before some process's
/// first step (the paper's "only after every process has taken a step",
/// checked on the driver's real-time-consistent logical clock).
fn wakeup_run_valid(run: &HwRun) -> bool {
    let mut winners = 0usize;
    let latest_first_step = run
        .results
        .iter()
        .map(|r| r.first_step_at.unwrap_or(r.responded_at))
        .max()
        .unwrap_or(0);
    for r in &run.results {
        match r.response.as_int() {
            Some(0) => {}
            Some(1) => {
                winners += 1;
                if r.responded_at < latest_first_step {
                    return false;
                }
            }
            _ => return false,
        }
    }
    winners >= 1
}

/// Cross-validates a wakeup algorithm: simulator envelopes (shared
/// accesses and DSM RMRs) vs hardware trials, hardware runs checked for
/// wakeup validity.
///
/// # Errors
///
/// Returns the first [`XcheckError`] from either backend (budget
/// exhaustion, divergence, a panicked hardware thread, the trial
/// watchdog) — an error is an inconclusive run, distinct from a `FAIL`
/// report.
pub fn xcheck_wakeup(alg: &dyn Algorithm, cfg: &XcheckConfig) -> Result<XcheckReport, XcheckError> {
    let envelopes = sim_envelope(alg, cfg, 1)?;
    let accept = accept_interval(envelopes.ops);
    let dsm_accept = accept_interval(envelopes.dsm);
    let mut trials = Vec::with_capacity(cfg.trials);
    for trial in 0..cfg.trials {
        let seed = trial as u64 + 1;
        let run = hw_trial(alg, cfg.n, seed, cfg.max_steps)?;
        let max_ops = run.max_ops();
        let max_dsm_rmrs = run.max_dsm_rmrs();
        trials.push(XcheckTrial {
            seed,
            max_ops,
            max_dsm_rmrs,
            safe: wakeup_run_valid(&run),
            in_envelope: (accept.0..=accept.1).contains(&max_ops),
            in_dsm_envelope: (dsm_accept.0..=dsm_accept.1).contains(&max_dsm_rmrs),
        });
    }
    Ok(XcheckReport::finish(
        alg.name().to_string(),
        "wakeup",
        cfg.n,
        envelopes.ops,
        envelopes.dsm,
        trials,
        cfg.check_envelope,
    ))
}

/// Builds the concurrent history of one hardware run from the driver's
/// clock stamps: operations invoke and respond in stamp order, which is
/// consistent with real time because stamps come from one `SeqCst`
/// counter.
fn hw_history(run: &HwRun, ops: &[Value]) -> History {
    let mut events: Vec<(u64, usize, bool)> = Vec::with_capacity(2 * run.results.len());
    for r in &run.results {
        events.push((r.invoked_at, r.pid.0, true));
        events.push((r.responded_at, r.pid.0, false));
    }
    events.sort_unstable();
    let mut h = History::new();
    let mut ids = vec![None; run.results.len()];
    for (_, pid, is_invoke) in events {
        if is_invoke {
            ids[pid] = Some(h.invoke(ProcessId(pid), ops[pid].clone()));
        } else {
            let id = ids[pid].expect("respond stamp after invoke stamp");
            h.respond(id, run.results[pid].response.clone());
        }
    }
    h
}

/// Cross-validates a universal construction: the simulator envelopes
/// come from running [`ImplAlgorithm`] under the standard schedules;
/// every hardware trial's stamped history must linearize against `spec`.
///
/// # Errors
///
/// Returns the first [`XcheckError`] from either backend.
///
/// # Panics
///
/// Panics if `ops.len() != cfg.n`.
pub fn xcheck_universal(
    imp: &dyn ObjectImplementation,
    spec: &dyn ObjectSpec,
    ops: &[Value],
    cfg: &XcheckConfig,
) -> Result<XcheckReport, XcheckError> {
    assert_eq!(ops.len(), cfg.n, "one operation per process");
    let alg = ImplAlgorithm::new(imp, ops);
    let envelopes = sim_envelope(&alg, cfg, 1)?;
    let accept = accept_interval(envelopes.ops);
    let dsm_accept = accept_interval(envelopes.dsm);
    let mut trials = Vec::with_capacity(cfg.trials);
    for trial in 0..cfg.trials {
        let seed = trial as u64 + 1;
        let run = hw_trial(&alg, cfg.n, seed, cfg.max_steps)?;
        let max_ops = run.max_ops();
        let max_dsm_rmrs = run.max_dsm_rmrs();
        let history = hw_history(&run, ops);
        trials.push(XcheckTrial {
            seed,
            max_ops,
            max_dsm_rmrs,
            safe: is_linearizable(spec, &history),
            in_envelope: (accept.0..=accept.1).contains(&max_ops),
            in_dsm_envelope: (dsm_accept.0..=dsm_accept.1).contains(&max_dsm_rmrs),
        });
    }
    Ok(XcheckReport::finish(
        imp.name(),
        "universal",
        cfg.n,
        envelopes.ops,
        envelopes.dsm,
        trials,
        cfg.check_envelope,
    ))
}

/// Event budget the simulator side of a chaos cross-validation runs
/// under (the harness's standard budget).
const CHAOS_SIM_MAX_EVENTS: u64 = 2_000_000;

/// One chaos trial's verdict: the hardware backend under the full fault
/// stack (injected SC failures, register corruption, and — for
/// crash-recoverable algorithms — killed and respawned threads).
#[derive(Clone, Debug)]
pub struct ChaosTrial {
    /// Chaos seed the trial's plan derives from (also the toss seed).
    pub seed: u64,
    /// Degradation class, in the shared E16/E17/E19 vocabulary
    /// (`recovered`, `detected-wrong`, `silent-wrong`, `stalled`,
    /// `aborted`, `respawn-exhausted`, `panic`).
    pub class: String,
    /// Worst per-process shared-access count (0 when the run errored).
    pub max_ops: u64,
    /// Worst per-process DSM RMR count (0 when the run errored).
    pub max_dsm_rmrs: u64,
    /// Spurious SC failures actually delivered by the fault layer.
    pub spurious_sc: u64,
    /// Register corruptions actually delivered by the fault layer.
    pub corruptions: u64,
    /// Thread kills delivered by the crash supervisor.
    pub crashes: u64,
    /// Respawns granted by the crash supervisor.
    pub respawns: u64,
    /// Detections published to the hardened telemetry registers.
    pub detected: u64,
    /// Whether `max_ops` landed inside the fault-widened envelope
    /// (vacuously true for trials that did not complete).
    pub in_envelope: bool,
    /// Whether `max_dsm_rmrs` landed inside the fault-widened DSM
    /// envelope (vacuously true for trials that did not complete).
    pub in_dsm_envelope: bool,
    /// A replayable case attached to every non-benign trial: its
    /// schedule is [`ScheduleSpec::Hardware`] (the OS interleaving is
    /// gone), so `llsc replay` re-runs the same faults, crashes, and
    /// tosses on the simulator backend for triage.
    pub repro: Option<ReproCase>,
}

/// The outcome of one chaos cross-validation: the simulator's
/// fault-widened cost envelopes vs hardware trials under the same
/// seeded [`ChaosPlan`]s.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The algorithm under test.
    pub subject: String,
    /// Number of processes.
    pub n: usize,
    /// Fault intensity of every trial's chaos plan.
    pub intensity: usize,
    /// The recovery regime (None = memory faults only, no crash layer).
    pub recovery: Option<RecoverySpec>,
    /// `(min, max)` worst per-process shared accesses over the clean
    /// *and* faulted simulator runs.
    pub sim_envelope: (u64, u64),
    /// The acceptance interval derived from the widened envelope.
    pub accept: (u64, u64),
    /// `(min, max)` worst per-process DSM RMRs over the clean and
    /// faulted simulator runs.
    pub sim_dsm_envelope: (u64, u64),
    /// The acceptance interval derived from the widened DSM envelope.
    pub dsm_accept: (u64, u64),
    /// Per-trial verdicts.
    pub trials: Vec<ChaosTrial>,
    /// Whether envelope verdicts counted toward `ok`.
    pub envelope_checked: bool,
    /// Trials whose class was `silent-wrong` or `panic` — the classes a
    /// hardened or recoverable algorithm must never produce.
    pub silent_wrong: usize,
    /// True iff no trial went silently wrong (or panicked) and — when
    /// the envelope is checked — every completing trial landed inside
    /// the fault-widened envelopes.
    pub ok: bool,
}

impl ChaosReport {
    /// A compact human-readable rendering, one line per trial.
    pub fn render(&self) -> String {
        let recovery = match self.recovery {
            Some(r) => format!(" recovery delay={} budget={}", r.delay, r.budget),
            None => String::new(),
        };
        let mut out = format!(
            "xcheck chaos {subject}: n={n} intensity={intensity}{recovery} accept [{alo}, {ahi}] dsm accept [{dalo}, {dahi}]{mode}\n",
            subject = self.subject,
            n = self.n,
            intensity = self.intensity,
            alo = self.accept.0,
            ahi = self.accept.1,
            dalo = self.dsm_accept.0,
            dahi = self.dsm_accept.1,
            mode = if self.envelope_checked {
                ""
            } else {
                " (safety only; counts advisory)"
            },
        );
        for t in &self.trials {
            out.push_str(&format!(
                "  trial seed={seed:<4} class={class:<17} ops={ops:<6} dsm={dsm:<6} sc_fails={sc} corruptions={co} crashes={cr} respawns={re} detected={de} in_envelope={env}/{denv}\n",
                seed = t.seed,
                class = t.class,
                ops = t.max_ops,
                dsm = t.max_dsm_rmrs,
                sc = t.spurious_sc,
                co = t.corruptions,
                cr = t.crashes,
                re = t.respawns,
                de = t.detected,
                env = t.in_envelope,
                denv = t.in_dsm_envelope,
            ));
        }
        out.push_str(if self.ok { "  PASS\n" } else { "  FAIL\n" });
        out
    }
}

/// Classifies a hardware run error into the degradation vocabulary.
fn hw_error_class(e: &HwRunError) -> &'static str {
    match e {
        HwRunError::Run(RunError::DivergedLocalBurst { .. }) => "aborted",
        HwRunError::Run(_) => "stalled",
        HwRunError::ThreadPanic { .. } => "panic",
        HwRunError::WatchdogTimeout { .. } => "stalled",
        HwRunError::RespawnExhausted { .. } => "respawn-exhausted",
    }
}

/// Safety of one completed chaos run: token distinctness for the
/// recoverable mutex (its verdicts are tokens, not wakeup bits), wakeup
/// validity for everything else.
fn chaos_run_safe(alg_name: &str, run: &HwRun, n: usize) -> bool {
    if alg_name == "recoverable-mutex" {
        let responses = run.responses();
        check_mutex_tokens(responses.iter().map(Some), n).is_ok()
    } else {
        wakeup_run_valid(run)
    }
}

/// Detections published to the hardened telemetry registers, read off
/// the hardware memory exactly as the simulator experiments read their
/// executor ([`crate::repro::run_case_with`]).
fn hw_detected(mem: &HwMemory, n: usize) -> u64 {
    (0..n)
        .map(ProcessId)
        .map(|p| {
            let wakeup = mem.peek(llsc_wakeup::hardened_detect_reg(p));
            let universal = mem.peek(llsc_universal::hardened_detect_reg(p));
            wakeup.as_int().unwrap_or(0).max(0) as u64
                + universal.as_int().unwrap_or(0).max(0) as u64
        })
        .sum()
}

/// Tailors a [`ChaosPlan`] to an adversary arm, per the backend ×
/// adversary capability matrix (see README "Fault model"):
///
/// * `Some` recovery — the **crash-recovery arm** for the
///   crash-recoverable family: keeps the crash layer and the
///   (universally tolerable) spurious SC failures, strips register
///   corruption, which recoverable algorithms cannot detect.
/// * `None` — the **memory-fault arm** for the hardened family: keeps
///   the full fault layer (spurious SC + corruption), strips the crash
///   layer, which detection-only algorithms cannot survive restarting
///   from.
///
/// Returns the `(crashes, faults)` the trial actually arms; E20 and
/// [`xcheck_chaos`] share this tailoring so their verdicts agree.
pub fn chaos_arm(chaos: &ChaosPlan, recovery: Option<RecoverySpec>) -> (CrashPlan, FaultPlan) {
    if recovery.is_some() {
        let f = chaos.faults();
        (
            chaos.crashes().clone(),
            FaultPlan::at(f.spurious().to_vec(), [], f.value_seed()),
        )
    } else {
        (CrashPlan::none(), chaos.faults().clone())
    }
}

/// Packages a failed hardware chaos trial as a replayable case: the
/// plan's faults, crashes, and tosses survive verbatim; the schedule
/// becomes [`ScheduleSpec::Hardware`] because the OS-chosen
/// interleaving cannot be replayed — `llsc replay` re-runs the case on
/// the simulator under the deterministic round-robin stand-in.
fn chaos_failure_case(case: &ReproCase, class: &str, outcome: String) -> ReproCase {
    ReproCase {
        schedule: ScheduleSpec::Hardware,
        outcome,
        class: class.to_string(),
        ..case.clone()
    }
}

/// One hardware chaos execution's classified result, shared between
/// [`xcheck_chaos`] and `bench_e20`.
#[derive(Clone, Debug)]
pub struct HwChaosRun {
    /// Degradation class (shared vocabulary; see [`ChaosTrial::class`]).
    pub class: &'static str,
    /// Whether the run completed (per-process costs are meaningful).
    pub completed: bool,
    /// Worst per-process shared-access count (0 when not completed).
    pub max_ops: u64,
    /// Worst per-process DSM RMR count (0 when not completed).
    pub max_dsm_rmrs: u64,
    /// Spurious SC failures delivered.
    pub spurious_sc: u64,
    /// Register corruptions delivered.
    pub corruptions: u64,
    /// Thread kills delivered by the crash supervisor.
    pub crashes: u64,
    /// Respawns granted by the crash supervisor.
    pub respawns: u64,
    /// Detections published to the hardened telemetry registers.
    pub detected: u64,
    /// The run's outcome rendered for artifacts (`"HwCompleted"` or the
    /// error's display form).
    pub outcome_text: String,
}

/// Runs one chaos trial on the hardware backend: arms `faults` on the
/// memory, drives the threads (under the crash supervisor when
/// `recovery` is set), and classifies the result off the history, the
/// fault-layer stats, and the hardened telemetry registers.
pub fn run_hw_chaos(
    alg: &dyn Algorithm,
    n: usize,
    seed: u64,
    faults: &FaultPlan,
    crashes: &CrashPlan,
    recovery: Option<RecoverySpec>,
    max_steps: u64,
) -> HwChaosRun {
    let mem =
        HwMemory::for_algorithm(alg, n, Arc::new(SeededTosses::new(seed))).with_faults(faults);
    let outcome = match recovery {
        Some(spec) => {
            run_threads_supervised(alg, &mem, max_steps, HW_TRIAL_DEADLINE, crashes, spec)
        }
        None => run_threads_watchdog(alg, &mem, max_steps, HW_TRIAL_DEADLINE),
    };
    let stats = mem.fault_stats();
    let detected = hw_detected(&mem, n);
    let events = mem.take_events();
    let kills = events
        .iter()
        .filter(|e| matches!(e.kind, HwEventKind::Killed { .. }))
        .count() as u64;
    let respawns = events
        .iter()
        .filter(|e| matches!(e.kind, HwEventKind::Respawned { .. }))
        .count() as u64;
    let (class, max_ops, max_dsm_rmrs, completed, outcome_text) = match &outcome {
        Ok(run) => {
            let safe = chaos_run_safe(alg.name(), run, n);
            let class = if safe {
                "recovered"
            } else if detected > 0 {
                "detected-wrong"
            } else {
                "silent-wrong"
            };
            (
                class,
                run.max_ops(),
                run.max_dsm_rmrs(),
                true,
                "HwCompleted".to_string(),
            )
        }
        Err(e) => (hw_error_class(e), 0, 0, false, e.to_string()),
    };
    HwChaosRun {
        class,
        completed,
        max_ops,
        max_dsm_rmrs,
        spurious_sc: stats.spurious_sc,
        corruptions: stats.corruptions,
        crashes: kills,
        respawns,
        detected,
        outcome_text,
    }
}

/// Cross-validates an algorithm under chaos: every hardware trial runs
/// the full fault stack from a seeded [`ChaosPlan`] (trial seeds
/// `1..=trials`), and must degrade *gracefully* — linearize into the
/// wakeup (or mutex-token) specification, or publish a detection; a
/// `silent-wrong` trial fails the check. Cost envelopes are widened by
/// the simulator's faulted runs: each trial's plan is also executed on
/// the simulator (adversarial random schedule, same faults, crashes
/// recovered under the same regime) and the clean envelope absorbs the
/// faulted costs before the usual `2·max + 2` slack applies.
///
/// `recovery` selects the adversary arm by algorithm capability:
///
/// * `Some` — the crash-recovery arm, for the crash-*recoverable*
///   family: the plan's crash layer kills and respawns real threads,
///   and the memory-fault layer keeps its spurious SC failures (every
///   weak-LL/SC client must tolerate those) but drops register
///   corruption — recoverable algorithms carry no corruption-detection
///   telemetry, so injected corruption would class as `silent-wrong`
///   by construction, on the simulator exactly as on hardware.
/// * `None` — the memory-fault arm, for the hardened (detection-only)
///   family: the full fault layer (spurious SC + corruption) is armed
///   and the crash layer is dropped — a hardened algorithm restarted
///   from scratch re-executes its one-shot increments, which breaks
///   its semantics on both backends.
///
/// # Errors
///
/// Returns an [`XcheckError`] only when the *simulator* side cannot
/// establish a clean envelope; hardware-side failures are conclusive
/// per-trial verdicts, not errors.
pub fn xcheck_chaos(
    alg: &dyn Algorithm,
    cfg: &XcheckConfig,
    intensity: usize,
    recovery: Option<RecoverySpec>,
) -> Result<ChaosReport, XcheckError> {
    let n = cfg.n;
    let window = 8 * n as u64;
    let clean = sim_envelope(alg, cfg, 1)?;
    let mut ops_env = clean.ops;
    let mut dsm_env = clean.dsm;

    // Build every trial's plan and widen the envelope with its simulated
    // execution before any hardware runs.
    let mut planned = Vec::with_capacity(cfg.trials);
    for trial in 0..cfg.trials {
        let seed = trial as u64 + 1;
        let chaos = ChaosPlan::seeded(seed, n, intensity, window);
        let (crashes, faults) = chaos_arm(&chaos, recovery);
        let mut case = chaos.to_case(
            "xcheck-chaos",
            alg.name(),
            n,
            TossSpec::Seeded(seed),
            CHAOS_SIM_MAX_EVENTS,
            cfg.max_steps,
        );
        case.crashes = crashes.clone();
        case.faults = faults.clone();
        case.recovery = recovery;
        let replayed = execute_sim_case(&case, alg);
        if matches!(
            replayed.outcome,
            RunOutcome::Completed | RunOutcome::FaultInjected { .. }
        ) {
            let run = replayed.exec.run();
            let ops = ProcessId::all(n)
                .map(|p| run.shared_steps(p))
                .max()
                .unwrap_or(0);
            let dsm = ProcessId::all(n)
                .map(|p| run.dsm_rmrs(p))
                .max()
                .unwrap_or(0);
            ops_env = (ops_env.0.min(ops), ops_env.1.max(ops));
            dsm_env = (dsm_env.0.min(dsm), dsm_env.1.max(dsm));
        }
        planned.push((seed, faults, crashes, case));
    }
    let accept = accept_interval(ops_env);
    let dsm_accept = accept_interval(dsm_env);

    let mut trials = Vec::with_capacity(cfg.trials);
    for (seed, faults, crashes, case) in planned {
        let run = run_hw_chaos(alg, n, seed, &faults, &crashes, recovery, cfg.max_steps);
        let in_envelope = !run.completed || (accept.0..=accept.1).contains(&run.max_ops);
        let in_dsm_envelope =
            !run.completed || (dsm_accept.0..=dsm_accept.1).contains(&run.max_dsm_rmrs);
        let benign = matches!(run.class, "recovered" | "detected-wrong");
        let repro = if benign {
            None
        } else {
            Some(chaos_failure_case(
                &case,
                run.class,
                run.outcome_text.clone(),
            ))
        };
        trials.push(ChaosTrial {
            seed,
            class: run.class.to_string(),
            max_ops: run.max_ops,
            max_dsm_rmrs: run.max_dsm_rmrs,
            spurious_sc: run.spurious_sc,
            corruptions: run.corruptions,
            crashes: run.crashes,
            respawns: run.respawns,
            detected: run.detected,
            in_envelope,
            in_dsm_envelope,
            repro,
        });
    }
    let silent_wrong = trials
        .iter()
        .filter(|t| t.class == "silent-wrong" || t.class == "panic")
        .count();
    let ok = silent_wrong == 0
        && (!cfg.check_envelope || trials.iter().all(|t| t.in_envelope && t.in_dsm_envelope));
    Ok(ChaosReport {
        subject: alg.name().to_string(),
        n,
        intensity,
        recovery,
        sim_envelope: ops_env,
        accept,
        sim_dsm_envelope: dsm_env,
        dsm_accept,
        trials,
        envelope_checked: cfg.check_envelope,
        silent_wrong,
        ok,
    })
}

/// Which backend an E18 case ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The deterministic simulator (round-robin schedule).
    Sim,
    /// The CAS-based hardware backend, one OS thread per process.
    Atomic,
}

impl BackendKind {
    /// The backend's registry name (`"sim"` / `"atomic"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Atomic => "atomic",
        }
    }

    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "atomic" => Some(BackendKind::Atomic),
            _ => None,
        }
    }
}

/// One E18 measurement: a workload on a backend at a process count.
#[derive(Clone, Debug)]
pub struct E18Row {
    /// Workload id (`"wakeup-counter"`, `"universal-direct"`).
    pub workload: &'static str,
    /// Backend the case ran on.
    pub backend: BackendKind,
    /// Number of processes (= OS threads on the atomic backend).
    pub n: usize,
    /// Fastest wall-clock time over the samples, milliseconds.
    pub wall_ms_min: f64,
    /// Mean wall-clock time over the samples, milliseconds.
    pub wall_ms_mean: f64,
    /// Worst per-process shared-access count of the last sample.
    pub max_ops: u64,
    /// Total shared accesses of the last sample.
    pub total_ops: u64,
    /// Total DSM RMRs of the last sample — billed identically per
    /// access on both backends (`home(R) = R mod n`), so the column is
    /// directly comparable across the `sim` and `atomic` rows.
    pub dsm_rmrs: u64,
}

/// Per-sample costs an E18 case reports: worst per-process shared
/// accesses, total shared accesses, total DSM RMRs.
type CaseCosts = (u64, u64, u64);

fn time_samples<F: FnMut() -> Result<CaseCosts, XcheckError>>(
    samples: u32,
    mut f: F,
) -> Result<(f64, f64, CaseCosts), XcheckError> {
    let mut min = f64::INFINITY;
    let mut sum = 0.0;
    let mut last = (0, 0, 0);
    for _ in 0..samples {
        let started = Instant::now();
        last = f()?;
        let ms = started.elapsed().as_secs_f64() * 1e3;
        min = min.min(ms);
        sum += ms;
    }
    Ok((min, sum / f64::from(samples), last))
}

fn run_sim_case(alg: &dyn Algorithm, n: usize, max_steps: u64) -> Result<CaseCosts, XcheckError> {
    let mut sched = RoundRobinScheduler::new();
    let mut exec = Executor::new(
        alg,
        n,
        Arc::new(SeededTosses::new(1)),
        ExecutorConfig::lightweight(),
    );
    exec.drive(&mut sched, max_steps)?;
    exec.run_outcome().into_result()?;
    let run = exec.into_run();
    let per: Vec<u64> = ProcessId::all(n).map(|p| run.shared_steps(p)).collect();
    let dsm: u64 = ProcessId::all(n).map(|p| run.dsm_rmrs(p)).sum();
    Ok((
        per.iter().copied().max().unwrap_or(0),
        per.iter().sum(),
        dsm,
    ))
}

fn run_hw_case(alg: &dyn Algorithm, n: usize, max_steps: u64) -> Result<CaseCosts, XcheckError> {
    let mem = HwMemory::for_algorithm(alg, n, Arc::new(SeededTosses::new(1)));
    // Throughput runs time the memory, not the history log.
    mem.set_recording(false);
    let run = run_threads_watchdog(alg, &mem, max_steps, HW_TRIAL_DEADLINE)?;
    let per: Vec<u64> = run.results.iter().map(|r| r.ops).collect();
    Ok((
        per.iter().copied().max().unwrap_or(0),
        per.iter().sum(),
        run.total_dsm_rmrs(),
    ))
}

/// Runs one E18 case: `alg` on `backend` with `n` processes, timed over
/// `samples` repetitions.
///
/// # Errors
///
/// Returns the [`XcheckError`] of the first failed sample — a diverged
/// or budget-starved run on either backend, a panicked hardware thread,
/// or the hardware trial watchdog. The caller (`bench_e18`, `llsc
/// bench`) reports the failed case and keeps going.
pub fn e18_case(
    workload: &'static str,
    alg: &dyn Algorithm,
    backend: BackendKind,
    n: usize,
    samples: u32,
    max_steps: u64,
) -> Result<E18Row, XcheckError> {
    let (wall_ms_min, wall_ms_mean, (max_ops, total_ops, dsm_rmrs)) = match backend {
        BackendKind::Sim => time_samples(samples, || run_sim_case(alg, n, max_steps))?,
        BackendKind::Atomic => time_samples(samples, || run_hw_case(alg, n, max_steps))?,
    };
    Ok(E18Row {
        workload,
        backend,
        n,
        wall_ms_min,
        wall_ms_mean,
        max_ops,
        total_ops,
        dsm_rmrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_objects::FetchIncrement;
    use llsc_universal::DirectLlSc;
    use llsc_wakeup::CounterWakeup;

    fn small() -> XcheckConfig {
        XcheckConfig {
            n: 3,
            trials: 3,
            sim_seeds: vec![1, 2],
            max_steps: 100_000,
            check_envelope: true,
        }
    }

    #[test]
    fn safety_only_mode_treats_counts_as_advisory() {
        let out_of_envelope = XcheckTrial {
            seed: 1,
            max_ops: 1_000_000,
            max_dsm_rmrs: 1_000_000,
            safe: true,
            in_envelope: false,
            in_dsm_envelope: false,
        };
        let checked = XcheckReport::finish(
            "x".into(),
            "universal",
            2,
            (1, 2),
            (1, 2),
            vec![out_of_envelope.clone()],
            true,
        );
        assert!(!checked.ok, "envelope miss fails a full check");
        let advisory = XcheckReport::finish(
            "x".into(),
            "universal",
            2,
            (1, 2),
            (1, 2),
            vec![out_of_envelope],
            false,
        );
        assert!(advisory.ok, "safety-only ignores the envelope verdict");
        assert!(advisory.render().contains("safety only"));
        let unsafe_trial = XcheckTrial {
            seed: 1,
            max_ops: 1,
            max_dsm_rmrs: 1,
            safe: false,
            in_envelope: true,
            in_dsm_envelope: true,
        };
        let report = XcheckReport::finish(
            "x".into(),
            "universal",
            2,
            (1, 2),
            (1, 2),
            vec![unsafe_trial],
            false,
        );
        assert!(!report.ok, "safety failures still fail safety-only mode");
    }

    #[test]
    fn dsm_envelope_miss_fails_a_full_check() {
        let trial = XcheckTrial {
            seed: 1,
            max_ops: 2,
            max_dsm_rmrs: 1_000_000,
            safe: true,
            in_envelope: true,
            in_dsm_envelope: false,
        };
        let report =
            XcheckReport::finish("x".into(), "wakeup", 2, (1, 2), (1, 2), vec![trial], true);
        assert!(!report.ok, "a DSM envelope miss is a backend disagreement");
        assert!(report.render().contains("dsm_rmrs="));
    }

    #[test]
    fn wakeup_counter_cross_validates() {
        let report = xcheck_wakeup(&CounterWakeup, &small()).expect("runs complete");
        assert!(report.ok, "{}", report.render());
        assert_eq!(report.trials.len(), 3);
        assert!(report.sim_envelope.0 <= report.sim_envelope.1);
    }

    #[test]
    fn universal_direct_cross_validates() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = DirectLlSc::new(spec.clone());
        let ops = vec![FetchIncrement::op(); 3];
        let report = xcheck_universal(&imp, spec.as_ref(), &ops, &small()).expect("runs complete");
        assert!(report.ok, "{}", report.render());
        assert_eq!(report.kind, "universal");
    }

    #[test]
    fn hw_history_respects_stamp_order() {
        let spec = Arc::new(FetchIncrement::new(32));
        let imp = DirectLlSc::new(spec.clone());
        let ops = vec![FetchIncrement::op(); 4];
        let alg = ImplAlgorithm::new(&imp, &ops);
        let run = hw_trial(&alg, 4, 7, 100_000).expect("completes");
        let h = hw_history(&run, &ops);
        assert!(h.is_complete());
        assert_eq!(h.len(), 4);
        assert!(is_linearizable(spec.as_ref(), &h));
    }

    #[test]
    fn e18_case_reports_costs_on_both_backends() {
        for backend in [BackendKind::Sim, BackendKind::Atomic] {
            let row = e18_case("wakeup-counter", &CounterWakeup, backend, 2, 2, 100_000)
                .expect("case completes");
            assert!(row.total_ops > 0, "{:?} counted ops", backend);
            assert!(row.max_ops <= row.total_ops);
            assert!(row.dsm_rmrs > 0, "{:?} billed DSM RMRs", backend);
            assert!(row.wall_ms_min <= row.wall_ms_mean);
        }
    }

    #[test]
    fn hardware_panic_is_reported_not_fatal() {
        use llsc_shmem::dsl::done;
        use llsc_shmem::FnAlgorithm;
        let alg = FnAlgorithm::new("hw-panicker", |pid: ProcessId, _n| {
            assert!(pid.0 != 1, "injected panic");
            done(Value::from(1i64)).into_program()
        });
        let err = e18_case("hw-panicker", &alg, BackendKind::Atomic, 2, 1, 1_000)
            .expect_err("the panicking case must fail, not abort");
        assert!(
            matches!(
                err,
                XcheckError::Hw(llsc_atomics::HwRunError::ThreadPanic { .. })
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn hardened_wakeup_degrades_gracefully_under_hw_memory_faults() {
        use llsc_wakeup::HardenedCounterWakeup;
        let report = xcheck_chaos(&HardenedCounterWakeup, &small(), 2, None).expect("sim envelope");
        assert_eq!(report.silent_wrong, 0, "{}", report.render());
        assert!(report.ok, "{}", report.render());
        assert_eq!(report.trials.len(), 3);
        assert!(
            report
                .trials
                .iter()
                .all(|t| t.crashes == 0 && t.respawns == 0),
            "no crash layer without a recovery regime: {}",
            report.render()
        );
        // The fault layer is armed: across the trials something fired.
        assert!(
            report
                .trials
                .iter()
                .any(|t| t.spurious_sc + t.corruptions > 0),
            "{}",
            report.render()
        );
    }

    #[test]
    fn recoverable_wakeup_survives_crash_respawn_chaos() {
        use llsc_wakeup::RecoverableCounterWakeup;
        let spec = RecoverySpec {
            delay: 3,
            budget: 2,
        };
        let report =
            xcheck_chaos(&RecoverableCounterWakeup, &small(), 2, Some(spec)).expect("sim envelope");
        assert_eq!(report.silent_wrong, 0, "{}", report.render());
        for t in &report.trials {
            assert!(
                t.respawns <= t.crashes,
                "each kill grants at most one respawn: {}",
                report.render()
            );
            assert_eq!(
                t.corruptions,
                0,
                "the crash-recovery arm strips corruption: {}",
                report.render()
            );
        }
        // Intensity 2 schedules one victim per trial; at least one trial
        // must actually deliver its kill and the respawn after it.
        assert!(
            report
                .trials
                .iter()
                .any(|t| t.crashes > 0 && t.respawns > 0),
            "{}",
            report.render()
        );
    }

    #[test]
    fn failed_chaos_trials_carry_a_hardware_schedule_repro() {
        let chaos = ChaosPlan::seeded(5, 3, 2, 24);
        let case = chaos.to_case("xcheck-chaos", "x", 3, TossSpec::Seeded(5), 1000, 500);
        let repro = chaos_failure_case(&case, "silent-wrong", "HwCompleted".into());
        assert_eq!(repro.schedule, ScheduleSpec::Hardware);
        assert_eq!(repro.class, "silent-wrong");
        assert_eq!(repro.faults, *chaos.faults());
        assert_eq!(repro.crashes, *chaos.crashes());
        let back = ReproCase::from_json(&repro.to_json()).unwrap();
        assert_eq!(back, repro, "hardware-schedule cases round-trip");
    }

    #[test]
    fn backend_kind_parses_registry_names() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("atomic"), Some(BackendKind::Atomic));
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::Atomic.name(), "atomic");
    }
}
