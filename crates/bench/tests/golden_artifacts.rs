//! Golden-artifact regression tests for the subset-sweep hot path.
//!
//! The zero-allocation rework of the simulator (bitmask `Pset`s,
//! clone-free executor dispatch, shared All-run) must not change a single
//! byte of experiment output — determinism is the regression oracle. The
//! fixtures under `tests/fixtures/` were produced by the pre-optimisation
//! code path (`table_e4 --json` / `table_e13 --json` at `--threads 1`,
//! which is byte-identical to `--threads 4`); these tests regenerate the
//! artifacts in-process with the same seeds and assert byte equality.
//!
//! The E15/E16 fixtures play the same role for the fault experiments:
//! captured from `table_e15 --json` / `table_e16 --json` with default
//! parameters, they pin the crash- and memory-fault artifacts across the
//! failure-replay/shrinking rework (and any future change to the trial
//! engine).

use llsc_bench::table::Table;
use llsc_shmem::Sweep;

/// E4 with the `table_e4` parameters (`ns = [4, 6]`, seeds `0, 1, 42`):
/// the JSON artifact is byte-identical to the checked-in old-path fixture,
/// at one worker thread and at four.
#[test]
fn e4_artifact_matches_old_path_fixture() {
    let fixture = include_str!("fixtures/e4.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let exp = llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &[]);
        assert_eq!(
            artifact, fixture,
            "E4 artifact diverged from the old-path fixture at --threads {threads}"
        );
    }
}

/// E13 with the `table_e13` parameters (`ns = [4, 6]`, `ZeroTosses`):
/// byte-identical to the checked-in old-path fixture at 1 and 4 threads.
#[test]
fn e13_artifact_matches_old_path_fixture() {
    let fixture = include_str!("fixtures/e13.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let exp = llsc_bench::e13_appendix_claims(&[4, 6], &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &[]);
        assert_eq!(
            artifact, fixture,
            "E13 artifact diverged from the old-path fixture at --threads {threads}"
        );
    }
}

/// E15 with the `table_e15` parameters (`n = 8`, `ks = [0, 1, 2, 4]`,
/// 6 reps): byte-identical to the checked-in fixture at 1 and 4 threads,
/// pinning the crash-fault experiment across the replay/shrink rework.
#[test]
fn e15_artifact_matches_fixture() {
    let fixture = include_str!("fixtures/e15.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let (exp, failures) =
            llsc_bench::e15_crash_degradation(8, &[0, 1, 2, 4], 6, 2_000_000, &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &failures);
        assert_eq!(
            artifact, fixture,
            "E15 artifact diverged from the fixture at --threads {threads}"
        );
    }
}

/// E19 with the `table_e19` parameters (`n = 8`, `ks = [0, 1, 2, 4]`,
/// 6 reps): byte-identical to the checked-in fixture at 1, 4, and 8
/// threads, pinning the crash-recovery experiment (and both RMR cost
/// models' counters) across future reworks of the trial engine.
#[test]
fn e19_artifact_matches_fixture() {
    let fixture = include_str!("fixtures/e19.json");
    for threads in [1, 4, 8] {
        let sweep = Sweep::with_threads(threads);
        let (exp, failures) =
            llsc_bench::e19_recovery_sweep(8, &[0, 1, 2, 4], 6, 2_000_000, &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &failures);
        assert_eq!(
            artifact, fixture,
            "E19 artifact diverged from the fixture at --threads {threads}"
        );
    }
}

/// E20 (simulator half) with the `table_e20` parameters (`n = 8`,
/// `intensities = [0, 1, 2, 4]`, 6 reps): byte-identical to the
/// checked-in fixture at 1, 4, and 8 threads, pinning the chaos
/// experiment's degradation classes and both RMR cost models across
/// thread counts and future reworks of the fault layer.
#[test]
fn e20_artifact_matches_fixture() {
    let fixture = include_str!("fixtures/e20.json");
    for threads in [1, 4, 8] {
        let sweep = Sweep::with_threads(threads);
        let (exp, failures) =
            llsc_bench::e20_chaos_recovery_sweep(8, &[0, 1, 2, 4], 6, 2_000_000, &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &failures);
        assert_eq!(
            artifact, fixture,
            "E20 artifact diverged from the fixture at --threads {threads}"
        );
    }
}

/// E16 with the `table_e16` parameters (`n = 8`, `fs = [0, 1, 2, 4, 8]`,
/// 6 reps): byte-identical to the checked-in fixture at 1 and 4 threads,
/// pinning the memory-fault experiment across the replay/shrink rework.
#[test]
fn e16_artifact_matches_fixture() {
    let fixture = include_str!("fixtures/e16.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let (exp, failures) =
            llsc_bench::e16_fault_degradation(8, &[0, 1, 2, 4, 8], 6, 2_000_000, &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &failures);
        assert_eq!(
            artifact, fixture,
            "E16 artifact diverged from the fixture at --threads {threads}"
        );
    }
}
