//! Golden-artifact regression tests for the subset-sweep hot path.
//!
//! The zero-allocation rework of the simulator (bitmask `Pset`s,
//! clone-free executor dispatch, shared All-run) must not change a single
//! byte of experiment output — determinism is the regression oracle. The
//! fixtures under `tests/fixtures/` were produced by the pre-optimisation
//! code path (`table_e4 --json` / `table_e13 --json` at `--threads 1`,
//! which is byte-identical to `--threads 4`); these tests regenerate the
//! artifacts in-process with the same seeds and assert byte equality.

use llsc_bench::table::Table;
use llsc_shmem::Sweep;

/// E4 with the `table_e4` parameters (`ns = [4, 6]`, seeds `0, 1, 42`):
/// the JSON artifact is byte-identical to the checked-in old-path fixture,
/// at one worker thread and at four.
#[test]
fn e4_artifact_matches_old_path_fixture() {
    let fixture = include_str!("fixtures/e4.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let exp = llsc_bench::e4_indistinguishability(&[4, 6], &[0, 1, 42], &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &[]);
        assert_eq!(
            artifact, fixture,
            "E4 artifact diverged from the old-path fixture at --threads {threads}"
        );
    }
}

/// E13 with the `table_e13` parameters (`ns = [4, 6]`, `ZeroTosses`):
/// byte-identical to the checked-in old-path fixture at 1 and 4 threads.
#[test]
fn e13_artifact_matches_old_path_fixture() {
    let fixture = include_str!("fixtures/e13.json");
    for threads in [1, 4] {
        let sweep = Sweep::with_threads(threads);
        let exp = llsc_bench::e13_appendix_claims(&[4, 6], &sweep);
        let artifact = Table::render_json_artifact_with_failures(&[&exp.table], &[]);
        assert_eq!(
            artifact, fixture,
            "E13 artifact diverged from the old-path fixture at --threads {threads}"
        );
    }
}
