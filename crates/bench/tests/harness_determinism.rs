//! The harness's two load-bearing guarantees, checked end to end:
//!
//! 1. **Thread-count invariance** — every experiment's rendered table and
//!    JSON artifact are byte-identical whether the sweep runs on 1, 4, or
//!    8 worker threads. The committed `EXPERIMENTS.md` tables depend on
//!    this: `--threads` may only change wall-clock time, never output.
//! 2. **JSON round-trip** — the `{"tables":[…]}` artifact parses back to
//!    exactly the tables that produced it.
//!
//! The binary-level test drives a real `table_*` executable (the fastest
//! one) through its command line, comparing stdout and artifact bytes
//! across thread counts.

use llsc_bench::harness::Sweep;
use llsc_bench::table::Table;
use std::process::Command;

/// Small-instance experiment calls that together cover every sweep shape
/// the harness uses: per-config fan-out (E1), per-(alg, n) fan-out (E5),
/// per-seed fan-out (E6), nested subset fan-out (E4, E13), and
/// per-schedule fan-out (E14).
fn fast_experiments(sweep: &Sweep) -> Vec<Table> {
    vec![
        llsc_bench::e1_secretive_schedules(&[4, 16], 4, sweep).table,
        llsc_bench::e4_indistinguishability(&[4, 5], &[1, 2], sweep).table,
        llsc_bench::e5_wakeup_lower_bound(&[4, 16], sweep).table,
        llsc_bench::e6_randomized_expectation(&[4, 8], 8, sweep).table,
        llsc_bench::e13_appendix_claims(&[4, 5], sweep).table,
        llsc_bench::e14_stress_portfolio(5, sweep).table,
    ]
}

#[test]
fn experiments_are_thread_count_invariant() {
    let baseline = fast_experiments(&Sweep::sequential());
    for threads in [4, 8] {
        let tables = fast_experiments(&Sweep::with_threads(threads));
        assert_eq!(tables.len(), baseline.len());
        for (got, want) in tables.iter().zip(&baseline) {
            assert_eq!(
                got.render(),
                want.render(),
                "table `{}` differs at {threads} threads",
                want.title()
            );
            assert_eq!(
                got.render_json(),
                want.render_json(),
                "JSON for `{}` differs at {threads} threads",
                want.title()
            );
        }
    }
}

#[test]
fn json_artifact_round_trips() {
    let tables = fast_experiments(&Sweep::with_threads(2));
    let refs: Vec<&Table> = tables.iter().collect();
    let artifact = Table::render_json_artifact(&refs);
    let parsed = Table::from_json_artifact(&artifact).expect("artifact parses");
    assert_eq!(parsed.len(), tables.len());
    for (got, want) in parsed.iter().zip(&tables) {
        assert_eq!(got.title(), want.title());
        assert_eq!(got.headers(), want.headers());
        assert_eq!(got.rows(), want.rows());
        assert_eq!(got.render(), want.render());
    }
    // Re-rendering the parsed tables reproduces the artifact byte for byte.
    let reparsed_refs: Vec<&Table> = parsed.iter().collect();
    assert_eq!(Table::render_json_artifact(&reparsed_refs), artifact);
}

#[test]
fn binary_output_is_thread_count_invariant() {
    let exe = env!("CARGO_BIN_EXE_table_e13");
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for threads in ["1", "4", "8"] {
        let json_path = dir.join(format!("llsc_e13_t{threads}.json"));
        let out = Command::new(exe)
            .args(["--threads", threads, "--json"])
            .arg(&json_path)
            .output()
            .expect("table_e13 runs");
        assert!(out.status.success(), "exit status at --threads {threads}");
        let artifact = std::fs::read(&json_path).expect("artifact written");
        let _ = std::fs::remove_file(&json_path);
        outputs.push((out.stdout, artifact));
    }
    let (stdout_1, artifact_1) = &outputs[0];
    for (stdout_t, artifact_t) in &outputs[1..] {
        assert_eq!(stdout_t, stdout_1, "stdout differs across thread counts");
        assert_eq!(
            artifact_t, artifact_1,
            "JSON artifact differs across thread counts"
        );
    }
    // And the artifact is well-formed.
    let text = String::from_utf8(artifact_1.clone()).expect("utf-8 artifact");
    let tables = Table::from_json_artifact(&text).expect("artifact parses");
    assert_eq!(tables.len(), 1);
}
