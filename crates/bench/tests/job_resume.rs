//! Integration tests for the resumable job layer: kill/resume
//! determinism across thread counts, and graceful fallback past every
//! class of damaged checkpoint (truncation, bit flips, stale versions,
//! and the stray temp file a kill between write and rename leaves).

use llsc_bench::job::{
    artifact_path, manifest_path, resume_job, run_job, JobControl, JobExperiment, JobSpec,
    JobStatus,
};
use llsc_shmem::checkpoint;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llsc-jobtest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An E4 spec whose 192 trials (6 algorithms x n=4 x 2 toss seeds x 16
/// subsets) span 6 chunks — enough structure for every kill point to
/// land mid-job.
fn e4_spec() -> JobSpec {
    JobSpec {
        ns: vec![4],
        toss_seeds: vec![0, 1],
        chunks: 6,
        retries: 0,
        backoff_ms: 0,
        ..JobSpec::default_for(JobExperiment::E4)
    }
}

fn stop_after(chunks: usize) -> JobControl {
    JobControl {
        stop_after_chunks: Some(chunks),
        ..JobControl::new()
    }
}

/// The clean-run artifact every interrupted variant must reproduce.
fn uninterrupted_artifact(spec: &JobSpec, threads: usize) -> String {
    let dir = scratch(&format!("clean-{threads}"));
    let report = run_job(&dir, spec, threads, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    let artifact = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    artifact
}

fn newest_checkpoint(dir: &Path) -> PathBuf {
    let ckpt_dir = dir.join("checkpoints");
    let seq = *checkpoint::list_seqs(&ckpt_dir).iter().max().unwrap();
    ckpt_dir.join(checkpoint::file_name(seq))
}

#[test]
fn kill_after_chunk_one_resumes_byte_identically_at_another_thread_count() {
    let spec = e4_spec();
    assert!(spec.chunks >= 4, "the sweep must span several chunks");
    let dir = scratch("kill-resume");

    let first = run_job(&dir, &spec, 1, &stop_after(1)).unwrap();
    assert_eq!(first.status, JobStatus::Interrupted);
    assert_eq!(first.completed_chunks, 1);
    assert!(
        first.artifact.is_none(),
        "an interrupted run leaves no artifact"
    );
    let manifest = std::fs::read_to_string(manifest_path(&dir)).unwrap();
    assert!(manifest.contains("\"status\":\"interrupted\""));

    // Resume at a different thread count than both the first leg and the
    // reference run.
    let second = resume_job(&dir, 3, &JobControl::new()).unwrap();
    assert_eq!(second.status, JobStatus::Complete);
    assert_eq!(second.completed_chunks, spec.chunks);
    let resumed = std::fs::read_to_string(second.artifact.unwrap()).unwrap();

    assert_eq!(resumed, uninterrupted_artifact(&spec, 2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_kill_point_resumes_to_the_same_artifact() {
    let spec = e4_spec();
    let reference = uninterrupted_artifact(&spec, 1);
    for kill_after in [0, 2, 5] {
        let dir = scratch(&format!("kill-at-{kill_after}"));
        let first = run_job(&dir, &spec, 2, &stop_after(kill_after)).unwrap();
        assert_eq!(
            first.status,
            JobStatus::Interrupted,
            "kill_after={kill_after}"
        );
        let second = resume_job(&dir, 4, &JobControl::new()).unwrap();
        assert_eq!(
            second.status,
            JobStatus::Complete,
            "kill_after={kill_after}"
        );
        let resumed = std::fs::read_to_string(second.artifact.unwrap()).unwrap();
        assert_eq!(resumed, reference, "kill_after={kill_after}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn flipped_byte_checkpoint_falls_back_to_the_previous_valid_one() {
    let spec = e4_spec();
    let dir = scratch("flip");
    run_job(&dir, &spec, 1, &stop_after(2)).unwrap();

    let newest = newest_checkpoint(&dir);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&newest, bytes).unwrap();

    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    assert_eq!(
        report.fallback_notes.len(),
        1,
        "{:?}",
        report.fallback_notes
    );
    assert!(
        report.fallback_notes[0].contains("checksum mismatch"),
        "{:?}",
        report.fallback_notes
    );
    let resumed = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    assert_eq!(resumed, uninterrupted_artifact(&spec, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_falls_back_to_the_previous_valid_one() {
    let spec = e4_spec();
    let dir = scratch("truncate");
    run_job(&dir, &spec, 1, &stop_after(2)).unwrap();

    let newest = newest_checkpoint(&dir);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    assert!(
        report.fallback_notes[0].contains("truncated"),
        "{:?}",
        report.fallback_notes
    );
    let resumed = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    assert_eq!(resumed, uninterrupted_artifact(&spec, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_version_checkpoint_falls_back_to_the_previous_valid_one() {
    let spec = e4_spec();
    let dir = scratch("stale");
    run_job(&dir, &spec, 1, &stop_after(2)).unwrap();

    // Re-encode the newest checkpoint under a future container version:
    // the checksum is valid, the version is not.
    let newest = newest_checkpoint(&dir);
    let text = String::from_utf8(std::fs::read(&newest).unwrap()).unwrap();
    std::fs::write(
        &newest,
        text.replacen("llsc-job-checkpoint v1", "llsc-job-checkpoint v9", 1),
    )
    .unwrap();

    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    assert!(
        report.fallback_notes[0].contains("version"),
        "{:?}",
        report.fallback_notes
    );
    let resumed = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    assert_eq!(resumed, uninterrupted_artifact(&spec, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_between_write_and_rename_is_invisible_to_resume() {
    let spec = e4_spec();
    let dir = scratch("tmpfile");
    run_job(&dir, &spec, 1, &stop_after(2)).unwrap();

    // A crash between the temp-file write and the rename leaves a `.tmp`
    // sibling; the loader must ignore it entirely.
    let ckpt_dir = dir.join("checkpoints");
    let next_seq = checkpoint::list_seqs(&ckpt_dir).iter().max().unwrap() + 1;
    let stray = ckpt_dir.join(format!("{}.tmp", checkpoint::file_name(next_seq)));
    std::fs::write(&stray, b"partial garbage from a killed writer").unwrap();

    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    assert!(
        report.fallback_notes.is_empty(),
        "{:?}",
        report.fallback_notes
    );
    let resumed = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    assert_eq!(resumed, uninterrupted_artifact(&spec, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_checkpoints_destroyed_restarts_from_scratch() {
    let spec = e4_spec();
    let dir = scratch("wipe");
    run_job(&dir, &spec, 1, &stop_after(3)).unwrap();
    std::fs::remove_dir_all(dir.join("checkpoints")).unwrap();

    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    let resumed = std::fs::read_to_string(report.artifact.unwrap()).unwrap();
    assert_eq!(resumed, uninterrupted_artifact(&spec, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retry_exhaustion_yields_a_partial_artifact_not_a_crash() {
    // Starving the executor's event budget makes every trial fail; the
    // job must still terminate with an incomplete manifest, a partial
    // (row-less) artifact, and the failure ledger populated.
    let spec = JobSpec {
        ns: vec![4],
        toss_seeds: vec![0],
        chunks: 3,
        retries: 1,
        backoff_ms: 1,
        max_events: 1,
        ..JobSpec::default_for(JobExperiment::E4)
    };
    let dir = scratch("starve");
    let report = run_job(&dir, &spec, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Incomplete);
    assert_eq!(report.failed.len(), 3);
    assert!(report.failed.iter().all(|f| f.attempts == 2));

    let manifest = std::fs::read_to_string(manifest_path(&dir)).unwrap();
    assert!(manifest.contains("\"status\":\"incomplete\""));
    assert!(manifest.contains("\"incomplete_rows\":["));
    let artifact = std::fs::read_to_string(artifact_path(&dir)).unwrap();
    assert!(artifact.starts_with("{\"tables\":["));

    // A later resume with a fixed budget completes the job gracefully.
    let fixed = JobSpec {
        max_events: 0,
        ..spec
    };
    llsc_shmem::atomic_write(&llsc_bench::job::spec_path(&dir), fixed.render()).unwrap();
    std::fs::remove_dir_all(dir.join("checkpoints")).unwrap();
    let report = resume_job(&dir, 2, &JobControl::new()).unwrap();
    assert_eq!(report.status, JobStatus::Complete);
    std::fs::remove_dir_all(&dir).ok();
}
