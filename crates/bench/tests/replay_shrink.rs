//! End-to-end round trip of the failure-replay subsystem: a seeded,
//! deliberately starved E16 run produces trial failures with attached
//! repro cases; each case replays byte-identically and shrinks to a
//! strictly smaller reproducer with the same failure class.

use llsc_bench::repro::{run_case, shrink_case};
use llsc_shmem::repro::ReproCase;
use llsc_shmem::Sweep;

/// Starves `table_e16`'s `f = 0` trials so the zero-cost assertion
/// panics, then round-trips every resulting failure through the repro
/// pipeline.
#[test]
fn starved_e16_failures_replay_and_shrink() {
    let (_, failures) = llsc_bench::e16_fault_degradation(8, &[0], 1, 40, &Sweep::sequential());
    assert!(!failures.is_empty(), "starved f=0 trials must fail");

    for failure in &failures {
        let json = failure
            .repro
            .as_ref()
            .expect("every failure carries a serialized repro case");

        // The attached JSON is a self-contained, parseable document.
        let case = ReproCase::from_json(json).expect("attached repro parses");
        assert_eq!(case.to_json(), *json, "serialization round-trips");
        assert_eq!(case.experiment, "e16");
        let provenance = case.provenance.expect("provenance recorded");
        assert_eq!(provenance.trial_index, failure.index);

        // Replay: byte-for-byte identical outcome and failure class.
        let first = run_case(&case).expect("the algorithm name resolves");
        assert_eq!(
            first.outcome_debug, case.outcome,
            "replayed outcome matches the recorded one byte-for-byte"
        );
        assert_eq!(first.class, case.class);
        let second = run_case(&case).expect("the algorithm name resolves");
        assert_eq!(
            first.outcome_debug, second.outcome_debug,
            "replay is deterministic"
        );
        assert_eq!(
            first.trace, second.trace,
            "the schedule trace is deterministic"
        );

        // Shrink: strictly smaller (the materialized schedule gives the
        // minimizer room — the starved round-robin trace is hundreds of
        // picks), same failure class, and the minimal case still replays
        // to exactly what it records.
        let report = shrink_case(&case, 500).expect("the algorithm name resolves");
        assert_eq!(
            report.case.class, case.class,
            "shrinking preserves the failure class"
        );
        assert!(
            report.final_size < report.initial_size,
            "shrinking must strictly reduce the reproducer ({} -> {})",
            report.initial_size,
            report.final_size
        );
        assert!(
            report.initial_size > 0,
            "the materialized case has evidence to drop"
        );
        let minimal = run_case(&report.case).expect("the minimal case still resolves");
        assert_eq!(minimal.outcome_debug, report.case.outcome);
        assert_eq!(minimal.class, report.case.class);
    }
}

/// The same round trip under retries: the failure records the derived
/// seed its final attempt ran under, and the attached case reproduces
/// from exactly that seed.
#[test]
fn retried_failures_attach_the_final_attempt_seed() {
    let sweep = Sweep::sequential().with_retries(2);
    let (_, failures) = llsc_bench::e16_fault_degradation(8, &[0], 1, 40, &sweep);
    assert!(!failures.is_empty(), "starvation fails at every retry seed");
    for failure in &failures {
        assert_eq!(failure.attempts, 3, "all retries were spent");
        assert_ne!(
            failure.derived_seed, failure.seed,
            "the final attempt ran under a derived seed"
        );
        let case = ReproCase::from_json(failure.repro.as_ref().unwrap()).unwrap();
        let provenance = case.provenance.expect("provenance recorded");
        assert_eq!(provenance.attempt, 2);
        let run = run_case(&case).expect("the algorithm name resolves");
        assert_eq!(
            run.outcome_debug, case.outcome,
            "replay from the derived seed matches"
        );
    }
}
