//! Construction of the `(All, A)`-run (Section 5.2) and the common
//! round-structured-run record shared with the `(S, A)`-run.

use crate::rounds::{execute_round_with, MoveOrder, RoundRecord};
use crate::upsets::UpTracker;
use llsc_shmem::{
    Algorithm, Executor, ExecutorConfig, Interaction, ProcMask, ProcessId, RegisterId, Run,
    TossAssignment, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Limits for adversary-run construction.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryConfig {
    /// Maximum number of rounds before construction stops (a terminating
    /// algorithm finishes far earlier; hitting this limit marks the run as
    /// not completed).
    pub max_rounds: usize,
    /// The underlying executor limits.
    pub executor: ExecutorConfig,
    /// Whether each round stores end-of-round register snapshots (needed
    /// by the indistinguishability checker; disable for memory-light
    /// complexity sweeps over value-heavy algorithms).
    pub record_snapshots: bool,
    /// Whether the `UP` tracker retains every round's snapshot (needed by
    /// the `(S, A)`-run construction and the claims/indistinguishability
    /// checkers) or only the latest one plus per-round max sizes (enough
    /// for Lemma 5.1 and the Theorem 6.1 measurement, and `Θ(rounds)`
    /// cheaper in memory).
    pub track_up_history: bool,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            max_rounds: 100_000,
            executor: ExecutorConfig::default(),
            record_snapshots: true,
            track_up_history: true,
        }
    }
}

impl AdversaryConfig {
    /// A memory-light configuration: no register snapshots, no event or
    /// history recording — only counters, verdicts, and the round
    /// structure. Suitable for complexity sweeps; not for the wakeup or
    /// indistinguishability checkers.
    pub fn lightweight() -> Self {
        AdversaryConfig {
            record_snapshots: false,
            track_up_history: false,
            executor: ExecutorConfig {
                record_details: false,
                ..ExecutorConfig::default()
            },
            ..AdversaryConfig::default()
        }
    }
}

/// A run structured into adversary rounds, with end-of-round snapshots —
/// the common shape of the `(All, A)`-run and every `(S, A)`-run.
#[derive(Clone, Debug)]
pub struct RoundedRun {
    /// Number of processes in the system.
    pub n: usize,
    /// The per-round records, `rounds[r - 1]` being round `r`.
    pub rounds: Vec<RoundRecord>,
    /// The full underlying run.
    pub run: Run,
    /// The initial register contents the algorithm configured. Shared:
    /// every `(S, A)`-run of a subset sweep holds the same map as its
    /// `(All, A)`-run (one `Arc` bump per trial instead of a rebuild).
    pub initial_memory: Arc<BTreeMap<RegisterId, Value>>,
    /// Whether every participating process terminated within the round
    /// limit.
    pub completed: bool,
    /// The executor's final classification of the run
    /// ([`llsc_shmem::Executor::run_outcome`]): `Completed`, or why the
    /// run is partial. For an `(S, A)`-run, processes outside `S` never
    /// terminating makes the outcome `BudgetExhausted` even though the
    /// construction itself completed — check [`RoundedRun::completed`]
    /// for the construction-level notion.
    pub outcome: llsc_shmem::RunOutcome,
}

impl RoundedRun {
    /// `val(R, r, Σ)`: the value of register `reg` at the end of round `r`
    /// (round 0 = initial configuration).
    pub fn value_at(&self, reg: RegisterId, r: usize) -> Value {
        if r == 0 {
            return self.initial_value(reg);
        }
        self.rounds[r - 1]
            .end_values
            .get(&reg)
            .cloned()
            .unwrap_or_else(|| self.initial_value(reg))
    }

    fn initial_value(&self, reg: RegisterId) -> Value {
        self.initial_memory.get(&reg).cloned().unwrap_or_default()
    }

    /// `Pset(R, r, Σ)`: the registered process set at the end of round `r`.
    pub fn pset_at(&self, reg: RegisterId, r: usize) -> ProcMask {
        if r == 0 {
            return ProcMask::new();
        }
        self.rounds[r - 1]
            .end_psets
            .get(&reg)
            .cloned()
            .unwrap_or_default()
    }

    /// `numtosses(p, r, Σ)`: coin tosses performed by `p` by the end of
    /// round `r`.
    pub fn tosses_at(&self, p: ProcessId, r: usize) -> u64 {
        if r == 0 {
            0
        } else {
            self.rounds[r - 1].end_tosses[p.0]
        }
    }

    /// The prefix of `p`'s interaction history up to the end of round `r`.
    /// For deterministic-given-coins programs this prefix determines
    /// `state(p, r, Σ)`.
    pub fn history_at(&self, p: ProcessId, r: usize) -> &[Interaction] {
        if r == 0 {
            &[]
        } else {
            &self.run.history(p)[..self.rounds[r - 1].end_history_len[p.0]]
        }
    }

    /// `t(p, r)`: shared-memory steps performed by `p` by the end of round
    /// `r`.
    pub fn shared_steps_at(&self, p: ProcessId, r: usize) -> u64 {
        if r == 0 {
            0
        } else {
            self.rounds[r - 1].end_shared_steps[p.0]
        }
    }

    /// The number of recorded rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Every register touched at any point of the run, in id order.
    pub fn touched_registers(&self) -> Vec<RegisterId> {
        match self.rounds.last() {
            // Snapshots are cumulative: the last round lists every touched
            // register.
            Some(last) => last.end_values.keys().copied().collect(),
            None => Vec::new(),
        }
    }
}

/// The `(All, A)`-run: the unique unextendable run permitted by the
/// Figure-2 adversary under toss assignment `A`, together with the
/// `UP`-set history that the `(S, A)`-runs and Theorem 6.1 need.
#[derive(Clone, Debug)]
pub struct AllRun {
    /// The rounds, events, and snapshots.
    pub base: RoundedRun,
    /// `UP(p, r)` / `UP(R, r)` for every completed round.
    pub up: UpTracker,
}

impl AllRun {
    /// Convenience accessor: number of processes.
    pub fn n(&self) -> usize {
        self.base.n
    }
}

/// Builds the `(All, A)`-run of `alg` for `n` processes under toss
/// assignment `toss`.
///
/// Rounds are executed until every process terminates or
/// [`AdversaryConfig::max_rounds`] is reached. `UP` update rules are
/// applied after every round; the resulting tracker is returned inside the
/// [`AllRun`].
///
/// # Examples
///
/// ```
/// use llsc_core::{build_all_run, AdversaryConfig};
/// use llsc_shmem::dsl::{done, ll};
/// use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};
/// use std::sync::Arc;
///
/// let alg = FnAlgorithm::new("one-ll", |_p, _n| {
///     ll(RegisterId(0), |_| done(Value::from(0i64))).into_program()
/// });
/// let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
/// assert!(all.base.completed);
/// assert_eq!(all.base.num_rounds(), 1);
/// ```
///
/// # Errors
///
/// Propagates the first [`RunError`](llsc_shmem::RunError) a round
/// reports (diverging Phase-1 burst, exhausted event budget). Hitting
/// [`AdversaryConfig::max_rounds`] is *not* an error: the run is returned
/// with [`RoundedRun::completed`] `false`.
pub fn build_all_run(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
) -> Result<AllRun, llsc_shmem::RunError> {
    let initial_memory: Arc<BTreeMap<RegisterId, Value>> =
        Arc::new(alg.initial_memory(n).into_iter().collect());
    let mut exec = Executor::new(alg, n, toss, cfg.executor);
    let mut up = if cfg.track_up_history {
        UpTracker::new(n)
    } else {
        UpTracker::new_rolling(n)
    };
    let mut rounds = Vec::new();
    let participants: Vec<ProcessId> = ProcessId::all(n).collect();

    let mut r = 0;
    while !exec.all_terminated() && r < cfg.max_rounds {
        r += 1;
        let rec = execute_round_with(
            &mut exec,
            r,
            &participants,
            MoveOrder::Secretive,
            cfg.record_snapshots,
        )?;
        up.apply_round(&rec);
        rounds.push(rec);
    }

    let completed = exec.all_terminated();
    let outcome = exec.run_outcome();
    Ok(AllRun {
        base: RoundedRun {
            n,
            rounds,
            run: exec.into_run(),
            initial_memory,
            completed,
            outcome,
        },
        up,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, sc, toss};
    use llsc_shmem::{FnAlgorithm, SeededTosses, ZeroTosses};

    fn llsc_alg() -> impl Algorithm {
        FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        })
    }

    #[test]
    fn all_run_is_deterministic() {
        let alg = llsc_alg();
        let a = build_all_run(&alg, 6, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        let b = build_all_run(&alg, 6, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        assert_eq!(a.base.run.events(), b.base.run.events());
        assert_eq!(a.base.num_rounds(), b.base.num_rounds());
    }

    #[test]
    fn all_run_synchronous_rounds_one_op_each() {
        let alg = llsc_alg();
        let all =
            build_all_run(&alg, 4, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        assert!(all.base.completed);
        // Round 1: all LL. Round 2: all SC (p0 wins).
        assert_eq!(all.base.num_rounds(), 2);
        assert_eq!(all.base.rounds[0].groups.g1_ll_validate.len(), 4);
        assert_eq!(all.base.rounds[1].groups.g4_sc.len(), 4);
        assert_eq!(
            all.base.rounds[1].successful_sc.get(&RegisterId(0)),
            Some(&ProcessId(0))
        );
    }

    #[test]
    fn snapshots_are_queryable_per_round() {
        let alg = llsc_alg();
        let all =
            build_all_run(&alg, 3, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        // Round 0: initial.
        assert_eq!(all.base.value_at(RegisterId(0), 0), Value::Unit);
        assert!(all.base.pset_at(RegisterId(0), 0).is_empty());
        // Round 1: all linked, value unchanged.
        assert_eq!(all.base.value_at(RegisterId(0), 1), Value::Unit);
        assert_eq!(all.base.pset_at(RegisterId(0), 1).len(), 3);
        // Round 2: p0's SC installed 0 and emptied the Pset.
        assert_eq!(all.base.value_at(RegisterId(0), 2), Value::from(0i64));
        assert!(all.base.pset_at(RegisterId(0), 2).is_empty());
        // Histories grow round by round.
        assert_eq!(all.base.history_at(ProcessId(1), 0).len(), 0);
        assert_eq!(all.base.history_at(ProcessId(1), 1).len(), 1);
        assert!(all.base.history_at(ProcessId(1), 2).len() >= 2);
        assert_eq!(all.base.shared_steps_at(ProcessId(1), 2), 2);
    }

    #[test]
    fn max_rounds_limit_marks_incomplete() {
        // An algorithm that never terminates: LL forever.
        let alg = FnAlgorithm::new("spin", |_p, _n| {
            fn spin() -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), |_| spin())
            }
            spin().into_program()
        });
        let cfg = AdversaryConfig {
            max_rounds: 5,
            ..AdversaryConfig::default()
        };
        let all = build_all_run(&alg, 2, Arc::new(ZeroTosses), &cfg).unwrap();
        assert!(!all.base.completed);
        assert_eq!(all.base.num_rounds(), 5);
    }

    #[test]
    fn randomized_algorithm_consumes_assignment() {
        // Toss a coin; LL register (coin % 4); terminate.
        let alg = FnAlgorithm::new("rand-ll", |_p, _n| {
            toss(|c| ll(RegisterId(c % 4), |_| done(Value::from(0i64)))).into_program()
        });
        let all = build_all_run(
            &alg,
            4,
            Arc::new(SeededTosses::new(99)),
            &AdversaryConfig::default(),
        )
        .unwrap();
        assert!(all.base.completed);
        for p in ProcessId::all(4) {
            assert_eq!(all.base.tosses_at(p, all.base.num_rounds()), 1);
        }
        // Phase-1 tosses are recorded in the round they happen.
        assert_eq!(all.base.rounds[0].phase1_tosses.values().sum::<u64>(), 4);
    }

    #[test]
    fn touched_registers_lists_everything() {
        let alg = llsc_alg();
        let all =
            build_all_run(&alg, 2, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        assert_eq!(all.base.touched_registers(), vec![RegisterId(0)]);
    }

    #[test]
    fn up_tracker_rounds_match_run_rounds() {
        let alg = llsc_alg();
        let all =
            build_all_run(&alg, 8, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        assert_eq!(all.up.rounds(), all.base.num_rounds());
        assert!(all.up.lemma_5_1_holds());
    }
}
