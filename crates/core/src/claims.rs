//! The appendix claims (A.2 – A.9), checked mechanically.
//!
//! The paper proves the Indistinguishability Lemma by induction through a
//! series of claims (Appendix A). [`check_indistinguishability`] validates
//! the lemma's *conclusion*; this module validates the *intermediate*
//! claims on concrete `(All, A)`/`(S, A)` run pairs, which pins down the
//! proof skeleton itself:
//!
//! * **A.2** — participation: a process steps in round `r` of the
//!   `(S, A)`-run iff `UP(p, r-1) ⊆ S`, and then performs the *same kind of
//!   operation on the same register* as in the `(All, A)`-run.
//! * **A.3** — the `(S, A)`-run's move group is a subset of the
//!   `(All, A)`-run's (so replaying `σ_r` is well defined).
//! * **A.4** — a successful SC on `R` in round `r` implies
//!   `UP(R, r-1) ⊆ UP(R, r)`.
//! * **A.5** — if `UP(p, r) ⊆ S` and `p` SCs `R` in round `r`, then
//!   `UP(R, r) ⊆ S`.
//! * **A.6** — if `UP(R, r) ⊆ S` and `q`'s SC on `R` succeeds in round `r`
//!   of the `(All, A)`-run, the same process's SC succeeds in the
//!   `(S, A)`-run.
//! * **A.9** — if `UP(R, r) ⊆ S` and no SC on `R` succeeds in round `r` of
//!   the `(All, A)`-run, none succeeds in the `(S, A)`-run.
//!
//! Claims A.1, A.7, A.8, and A.10 – A.12 compare mid-phase states and
//! final-round configurations; their observable content is exactly what
//! [`check_indistinguishability`] already verifies end-of-round, so they
//! are covered there rather than duplicated here.
//!
//! [`check_indistinguishability`]: crate::check_indistinguishability

use crate::all_run::AllRun;
use crate::s_run::SRun;
use llsc_shmem::{OpKind, ProcessId, RegisterId};
use std::collections::BTreeMap;
use std::fmt;

/// A violation of one of the appendix claims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaimViolation {
    /// A.2: a process stepped in the `(S, A)`-run although its `UP`
    /// escaped `S`, or failed to step although it did not, or performed a
    /// different operation.
    Participation {
        /// The offending process.
        p: ProcessId,
        /// The round.
        round: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// A.3: a mover of the `(S, A)`-run was not a mover of the
    /// `(All, A)`-run.
    MoverNotInAllRun {
        /// The offending process.
        p: ProcessId,
        /// The round.
        round: usize,
    },
    /// A.4: a successful SC shrank a register's `UP` set.
    UpShrank {
        /// The register.
        r: RegisterId,
        /// The round.
        round: usize,
    },
    /// A.5: an SC by a process inside `S` targeted a register whose `UP`
    /// escaped `S`.
    ScRegisterEscapesS {
        /// The process.
        p: ProcessId,
        /// The register.
        r: RegisterId,
        /// The round.
        round: usize,
    },
    /// A.6/A.9: SC success on a register with `UP(R, r) ⊆ S` differed
    /// between the runs.
    ScSuccessMismatch {
        /// The register.
        r: RegisterId,
        /// The round.
        round: usize,
        /// The successful process in the `(All, A)`-run, if any.
        all: Option<ProcessId>,
        /// The successful process in the `(S, A)`-run, if any.
        s: Option<ProcessId>,
    },
}

impl fmt::Display for ClaimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimViolation::Participation { p, round, detail } => {
                write!(f, "A.2 round {round}: {p}: {detail}")
            }
            ClaimViolation::MoverNotInAllRun { p, round } => {
                write!(f, "A.3 round {round}: {p} moves in (S,A) but not (All,A)")
            }
            ClaimViolation::UpShrank { r, round } => {
                write!(
                    f,
                    "A.4 round {round}: UP({r}) shrank across a successful SC"
                )
            }
            ClaimViolation::ScRegisterEscapesS { p, r, round } => {
                write!(f, "A.5 round {round}: {p} SCs {r} but UP({r}) escapes S")
            }
            ClaimViolation::ScSuccessMismatch { r, round, all, s } => {
                write!(
                    f,
                    "A.6/A.9 round {round}: {r} successful-SC mismatch (all={all:?}, s={s:?})"
                )
            }
        }
    }
}

/// The outcome of checking the appendix claims on one run pair.
#[derive(Clone, Debug, Default)]
pub struct ClaimsReport {
    /// Rounds examined.
    pub rounds_checked: usize,
    /// Individual claim instances evaluated.
    pub instances: usize,
    /// All violations found (empty for sound machinery).
    pub violations: Vec<ClaimViolation>,
}

impl ClaimsReport {
    /// `true` iff no claim was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ClaimsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appendix claims: {} rounds, {} instances, {} violation(s)",
            self.rounds_checked,
            self.instances,
            self.violations.len()
        )
    }
}

/// Checks claims A.2 – A.6 and A.9 on the pair (`all`, `srun`).
pub fn check_appendix_claims(all: &AllRun, srun: &SRun) -> ClaimsReport {
    let n = all.n();
    let s = &srun.s;
    let mut report = ClaimsReport::default();

    for r in 1..=all.base.num_rounds() {
        report.rounds_checked += 1;
        let all_rec = &all.base.rounds[r - 1];
        let s_rec = srun.base.rounds.get(r - 1);

        // Per-process op summaries for this round.
        let all_ops: BTreeMap<ProcessId, (OpKind, RegisterId)> = all_rec
            .ops
            .iter()
            .map(|o| (o.p, (o.kind, o.register)))
            .collect();
        let s_ops: BTreeMap<ProcessId, (OpKind, RegisterId)> = s_rec
            .map(|rec| {
                rec.ops
                    .iter()
                    .map(|o| (o.p, (o.kind, o.register)))
                    .collect()
            })
            .unwrap_or_default();

        // ---- A.2: participation and operation agreement ----
        for p in ProcessId::all(n) {
            report.instances += 1;
            let eligible = all.up.proc(p, r - 1).is_subset(s);
            match (eligible, s_ops.get(&p)) {
                (false, Some(_)) => report.violations.push(ClaimViolation::Participation {
                    p,
                    round: r,
                    detail: "stepped although UP(p, r-1) ⊄ S".into(),
                }),
                (true, got) => {
                    // If p acted in the (All, A)-run this round and is
                    // still running in the (S, A)-run, it must perform the
                    // same (kind, register). Early-terminated runs (the
                    // (S, A)-run may stop once all participants finish)
                    // are exempt via s_rec presence.
                    if let (Some(expect), Some(rec)) = (all_ops.get(&p), s_rec) {
                        let s_terminated_before =
                            srun.base.run.verdict(p).is_some() && !rec.participants.contains(&p);
                        if !s_terminated_before {
                            match got {
                                Some(actual) if actual == expect => {}
                                Some(actual) => {
                                    report.violations.push(ClaimViolation::Participation {
                                        p,
                                        round: r,
                                        detail: format!(
                                            "performed {actual:?}, expected {expect:?}"
                                        ),
                                    })
                                }
                                None => {
                                    // p must have terminated in the S-run
                                    // (same point as the All-run) — if it
                                    // is still live, A.2(3) is violated.
                                    if srun.base.run.verdict(p).is_none() {
                                        report.violations.push(ClaimViolation::Participation {
                                            p,
                                            round: r,
                                            detail: "missing its operation".into(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                (false, None) => {}
            }
        }

        // ---- A.3: move-group containment ----
        if let Some(rec) = s_rec {
            for p in rec.move_config.processes() {
                report.instances += 1;
                if !all_rec.move_config.contains(p) {
                    report
                        .violations
                        .push(ClaimViolation::MoverNotInAllRun { p, round: r });
                }
            }
        }

        // ---- A.4: successful SCs only grow UP(R) ----
        for &reg in all_rec.successful_sc.keys() {
            report.instances += 1;
            let before = all.up.reg(reg, r - 1);
            let after = all.up.reg(reg, r);
            if !before.is_subset(&after) {
                report
                    .violations
                    .push(ClaimViolation::UpShrank { r: reg, round: r });
            }
        }

        // ---- A.5: SC inside S targets registers inside S ----
        for o in &all_rec.ops {
            if o.kind == OpKind::Sc && all.up.proc(o.p, r).is_subset(s) {
                report.instances += 1;
                if !all.up.reg(o.register, r).is_subset(s) {
                    report.violations.push(ClaimViolation::ScRegisterEscapesS {
                        p: o.p,
                        r: o.register,
                        round: r,
                    });
                }
            }
        }

        // ---- A.6 / A.9: SC success agreement for registers inside S ----
        let sc_registers: std::collections::BTreeSet<RegisterId> = all_rec
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Sc)
            .map(|o| o.register)
            .collect();
        for reg in sc_registers {
            if !all.up.reg(reg, r).is_subset(s) {
                continue;
            }
            report.instances += 1;
            let winner_all = all_rec.successful_sc.get(&reg).copied();
            let winner_s = s_rec.and_then(|rec| rec.successful_sc.get(&reg).copied());
            // Agreement is required whenever the All-run winner is an
            // eligible S-run participant (A.6), and in the no-winner case
            // (A.9). A winner outside S simply does not run in the S-run.
            match winner_all {
                Some(w) if all.up.proc(w, r - 1).is_subset(s) => {
                    if winner_s != Some(w) {
                        report.violations.push(ClaimViolation::ScSuccessMismatch {
                            r: reg,
                            round: r,
                            all: winner_all,
                            s: winner_s,
                        });
                    }
                }
                Some(_) => {}
                None => {
                    if winner_s.is_some() {
                        report.violations.push(ClaimViolation::ScSuccessMismatch {
                            r: reg,
                            round: r,
                            all: None,
                            s: winner_s,
                        });
                    }
                }
            }
        }
    }
    report
}

/// Convenience: the claims plus the lemma itself on every subset of a
/// small system. Returns the total number of violations (0 for sound
/// machinery).
///
/// # Errors
///
/// Propagates the first [`llsc_shmem::RunError`] any subset run reports.
pub fn check_claims_all_subsets(
    alg: &dyn llsc_shmem::Algorithm,
    n: usize,
    toss: std::sync::Arc<dyn llsc_shmem::TossAssignment>,
    cfg: &crate::AdversaryConfig,
) -> Result<usize, llsc_shmem::RunError> {
    check_claims_all_subsets_sweep(alg, n, toss, cfg, &llsc_shmem::Sweep::sequential())
}

/// [`check_claims_all_subsets`], fanning the `2^n` subsets out over the
/// given [`llsc_shmem::Sweep`]. The count is independent of the sweep's
/// thread count.
pub fn check_claims_all_subsets_sweep(
    alg: &dyn llsc_shmem::Algorithm,
    n: usize,
    toss: std::sync::Arc<dyn llsc_shmem::TossAssignment>,
    cfg: &crate::AdversaryConfig,
    sweep: &llsc_shmem::Sweep,
) -> Result<usize, llsc_shmem::RunError> {
    Ok(
        crate::subsets::indist_all_subsets(alg, n, toss, cfg, true, sweep)?
            .violations
            .len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_run::{build_all_run, AdversaryConfig};
    use crate::s_run::build_s_run;
    use crate::upsets::ProcSet;
    use llsc_shmem::dsl::{done, ll, mv, sc, swap};
    use llsc_shmem::{Algorithm, FnAlgorithm, Program, SeededTosses, Value, ZeroTosses};
    use std::sync::Arc;

    fn llsc_contenders() -> impl Algorithm {
        FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            fn attempt(pid: ProcessId) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), move |ok, _| {
                        if ok {
                            done(Value::from(1i64))
                        } else {
                            attempt(pid)
                        }
                    })
                })
            }
            attempt(pid).into_program()
        })
    }

    fn mixed_alg() -> impl Algorithm {
        FnAlgorithm::new("mixed", |pid: ProcessId, n| {
            let prog: Box<dyn Program> = match pid.0 % 3 {
                0 => swap(RegisterId(1), Value::from(pid.0 as i64), move |_| {
                    ll(RegisterId(0), |_| done(Value::from(0i64)))
                })
                .into_program(),
                1 => mv(RegisterId(1), RegisterId(2), move || {
                    ll(RegisterId(2), |_| done(Value::from(0i64)))
                })
                .into_program(),
                _ => ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from((pid.0 + n) as i64), |_, _| {
                        done(Value::from(0i64))
                    })
                })
                .into_program(),
            };
            prog
        })
    }

    #[test]
    fn claims_hold_for_llsc_contenders_all_subsets() {
        let alg = llsc_contenders();
        let violations =
            check_claims_all_subsets(&alg, 5, Arc::new(ZeroTosses), &AdversaryConfig::default())
                .unwrap();
        assert_eq!(violations, 0);
    }

    #[test]
    fn claims_hold_for_mixed_operations_all_subsets() {
        let alg = mixed_alg();
        for seed in [0, 3] {
            let toss: Arc<dyn llsc_shmem::TossAssignment> = if seed == 0 {
                Arc::new(ZeroTosses)
            } else {
                Arc::new(SeededTosses::new(seed))
            };
            let violations =
                check_claims_all_subsets(&alg, 6, toss, &AdversaryConfig::default()).unwrap();
            assert_eq!(violations, 0, "seed={seed}");
        }
    }

    #[test]
    fn claims_hold_for_shipped_wakeup_style_runs() {
        // The counter-wakeup shape exercised via the claims checker
        // directly (not just via indistinguishability).
        let alg = llsc_contenders();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 6, Arc::new(ZeroTosses), &cfg).unwrap();
        let s: ProcSet = [1, 2, 4].into_iter().map(ProcessId).collect();
        let srun = build_s_run(&alg, 6, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        let report = check_appendix_claims(&all, &srun);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.instances > 0);
        assert!(report.to_string().contains("0 violation(s)"));
    }

    #[test]
    fn a4_is_nontrivial_on_repeated_sc_rounds() {
        // Two SC rounds on the same register: UP(R) transitions
        // {} -> {p0} -> {winner of round 4}, and A.4 demands monotonicity
        // relative to the previous round at each successful SC.
        let alg = llsc_contenders();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        // At least two rounds with successful SCs on R0.
        let sc_rounds = all
            .base
            .rounds
            .iter()
            .filter(|rec| rec.successful_sc.contains_key(&RegisterId(0)))
            .count();
        assert!(sc_rounds >= 2);
        let s: ProcSet = ProcessId::all(4).collect();
        let srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        assert!(check_appendix_claims(&all, &srun).ok());
    }

    #[test]
    fn violation_displays_are_informative() {
        let v = ClaimViolation::ScSuccessMismatch {
            r: RegisterId(0),
            round: 2,
            all: Some(ProcessId(1)),
            s: None,
        };
        assert!(v.to_string().contains("A.6/A.9"));
        let v2 = ClaimViolation::UpShrank {
            r: RegisterId(3),
            round: 1,
        };
        assert!(v2.to_string().contains("A.4"));
    }
}
