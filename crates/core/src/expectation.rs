//! Lemma 3.1 and the randomized lower bound: expected shared-access time
//! complexity, estimated by sampling toss assignments.
//!
//! Lemma 3.1: if an algorithm terminates with probability `c` and there is
//! a scheduler under which every terminating run has some process
//! performing at least `k` shared-memory operations, then the worst-case
//! *expected* shared-access time complexity is at least `c · k`.
//!
//! With the Figure-2 adversary as the scheduler and the Theorem 6.1 bound
//! `k = ⌈log₄ n⌉`, the paper's randomized bound is
//! `c · log₄ n`. [`estimate_expected_complexity`] samples toss assignments
//! (seeded, reproducible), builds the `(All, A)`-run for each, and reports
//! the empirical termination rate, winner-step statistics, and the implied
//! Lemma 3.1 bound.

use crate::all_run::{build_all_run, AdversaryConfig};
use crate::theorem::{ceil_log4, log4};
use crate::wakeup::check_wakeup;
use llsc_shmem::{Algorithm, RunError, SeededTosses, Sweep};
use std::fmt;
use std::sync::Arc;

/// The sampled-expectation report for a (possibly randomized) wakeup
/// algorithm under the adversary scheduler.
#[derive(Clone, Debug)]
pub struct ExpectationReport {
    /// The algorithm's name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Number of toss assignments sampled.
    pub samples: usize,
    /// Fraction of sampled assignments whose `(All, A)`-run terminated
    /// within the round limit — the empirical `c`.
    pub termination_rate: f64,
    /// Fraction of terminating runs that satisfied the wakeup spec.
    pub wakeup_ok_rate: f64,
    /// Mean, over terminating runs, of the first winner's shared-step
    /// count.
    pub mean_winner_steps: f64,
    /// Minimum winner step count over terminating runs — the empirical
    /// `k` of Lemma 3.1.
    pub min_winner_steps: u64,
    /// Maximum winner step count over terminating runs.
    pub max_winner_steps: u64,
    /// Mean, over terminating runs, of `t(R) = max_p t(p, R)`.
    pub mean_max_steps: f64,
    /// `log₄ n`.
    pub log4_n: f64,
    /// The Lemma 3.1 lower bound `c · k` computed from the empirical
    /// termination rate and minimum winner steps.
    pub lemma_3_1_bound: f64,
    /// `true` iff every sampled terminating run's winner met
    /// `⌈log₄ n⌉` — the randomized Theorem 6.1 check.
    pub all_meet_bound: bool,
}

impl fmt::Display for ExpectationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} samples={} c={:.2} E[winner]={:.2} min={} E[max]={:.2} log4(n)={:.2} c*k={:.2} bound {}",
            self.algorithm,
            self.n,
            self.samples,
            self.termination_rate,
            self.mean_winner_steps,
            self.min_winner_steps,
            self.mean_max_steps,
            self.log4_n,
            self.lemma_3_1_bound,
            if self.all_meet_bound { "HOLDS" } else { "REFUTED" }
        )
    }
}

/// Samples `seeds` toss assignments and estimates the expected
/// shared-access complexity of `alg` under the Figure-2 adversary.
///
/// Every seed yields a deterministic [`SeededTosses`] assignment, so the
/// whole estimate is reproducible.
///
/// # Examples
///
/// ```
/// use llsc_core::{estimate_expected_complexity, AdversaryConfig};
/// use llsc_shmem::dsl::{done, ll};
/// use llsc_shmem::{FnAlgorithm, RegisterId, Value};
///
/// let alg = FnAlgorithm::new("one-ll", |_p, _n| {
///     ll(RegisterId(0), |_| done(Value::from(1i64))).into_program()
/// });
/// let rep = estimate_expected_complexity(&alg, 2, 0..8, &AdversaryConfig::default()).unwrap();
/// assert_eq!(rep.samples, 8);
/// assert_eq!(rep.termination_rate, 1.0);
/// ```
pub fn estimate_expected_complexity(
    alg: &dyn Algorithm,
    n: usize,
    seeds: impl IntoIterator<Item = u64>,
    cfg: &AdversaryConfig,
) -> Result<ExpectationReport, RunError> {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    estimate_expected_complexity_sweep(alg, n, &seeds, cfg, &Sweep::sequential())
}

/// What one sampled toss assignment contributed to the estimate — the
/// checkpointable per-trial unit of a chunked expectation job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpectationSample {
    /// Whether the `(All, A)`-run terminated within the round limit.
    pub terminated: bool,
    /// Whether the terminated run satisfied the wakeup spec.
    pub wakeup_ok: bool,
    /// The first winner's shared-step count (terminating runs only).
    pub winner_steps: Option<u64>,
    /// `t(R) = max_p t(p, R)` (terminating runs only).
    pub max_steps: Option<u64>,
}

/// Runs one seeded toss assignment through the Figure-2 adversary and
/// records what it contributes to the estimate. Deterministic in
/// `(alg, n, seed, cfg)`, so samples may be computed in any order — or
/// any chunking — and reassembled via [`report_from_samples`].
///
/// # Errors
///
/// Propagates the [`RunError`] the `(All, A)`-run reports.
pub fn sample_expectation(
    alg: &dyn Algorithm,
    n: usize,
    seed: u64,
    cfg: &AdversaryConfig,
) -> Result<ExpectationSample, RunError> {
    let all = build_all_run(alg, n, Arc::new(SeededTosses::new(seed)), cfg)?;
    if !all.base.completed {
        return Ok(ExpectationSample {
            terminated: false,
            wakeup_ok: false,
            winner_steps: None,
            max_steps: None,
        });
    }
    let check = check_wakeup(&all.base.run);
    Ok(ExpectationSample {
        terminated: true,
        wakeup_ok: check.ok(),
        winner_steps: check.first_winner().map(|w| all.base.run.shared_steps(w)),
        max_steps: Some(all.base.run.max_shared_steps()),
    })
}

/// Folds per-seed samples (in seed order) into an [`ExpectationReport`].
/// A pure function of its inputs — both the plain sweep path and the
/// chunked job path assemble through here, so their floating-point
/// results are bit-identical by construction.
pub fn report_from_samples(
    algorithm: &str,
    n: usize,
    sampled: &[ExpectationSample],
) -> ExpectationReport {
    let samples = sampled.len();
    let mut terminating = 0usize;
    let mut wakeup_ok = 0usize;
    let mut winner_steps: Vec<u64> = Vec::new();
    let mut max_steps: Vec<u64> = Vec::new();
    for sample in sampled {
        if !sample.terminated {
            continue;
        }
        terminating += 1;
        if sample.wakeup_ok {
            wakeup_ok += 1;
        }
        winner_steps.extend(sample.winner_steps);
        max_steps.extend(sample.max_steps);
    }

    let c = if samples == 0 {
        0.0
    } else {
        terminating as f64 / samples as f64
    };
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    let min_winner = winner_steps.iter().copied().min().unwrap_or(0);
    let bound = ceil_log4(n);

    ExpectationReport {
        algorithm: algorithm.to_string(),
        n,
        samples,
        termination_rate: c,
        wakeup_ok_rate: if terminating == 0 {
            0.0
        } else {
            wakeup_ok as f64 / terminating as f64
        },
        mean_winner_steps: mean(&winner_steps),
        min_winner_steps: min_winner,
        max_winner_steps: winner_steps.iter().copied().max().unwrap_or(0),
        mean_max_steps: mean(&max_steps),
        log4_n: log4(n),
        lemma_3_1_bound: c * min_winner as f64,
        all_meet_bound: winner_steps.iter().all(|&s| s >= bound),
    }
}

/// [`estimate_expected_complexity`], fanning the seed samples out over the
/// given [`Sweep`]. Each seed's `(All, A)`-run is independent, and samples
/// are merged in seed order, so the report is identical at any thread
/// count.
///
/// # Errors
///
/// Propagates the first (lowest-seed-index) [`RunError`] any sampled run
/// reports; the other samples still execute to completion under the
/// sweep's panic/fault isolation.
pub fn estimate_expected_complexity_sweep(
    alg: &dyn Algorithm,
    n: usize,
    seeds: &[u64],
    cfg: &AdversaryConfig,
    sweep: &Sweep,
) -> Result<ExpectationReport, RunError> {
    let sampled = sweep
        .run(seeds, |_trial, &seed| sample_expectation(alg, n, seed, cfg))
        .into_iter()
        .collect::<Result<Vec<ExpectationSample>, RunError>>()?;
    Ok(report_from_samples(alg.name(), n, &sampled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, sc, toss};
    use llsc_shmem::{FnAlgorithm, ProcessId, RegisterId, Value};

    /// Randomized counter wakeup: before the deterministic LL/SC increment
    /// loop, each process tosses a coin to pick one of two scratch
    /// registers to LL first — harmless randomness that exercises toss
    /// assignments without breaking correctness.
    fn randomized_counter_wakeup() -> impl llsc_shmem::Algorithm {
        FnAlgorithm::new("rand-counter-wakeup", |_pid: ProcessId, n| {
            fn attempt(n: usize) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |prev| {
                    let v = prev.as_int().unwrap_or(0);
                    sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
                        if !ok {
                            attempt(n)
                        } else if v + 1 == n as i128 {
                            done(Value::from(1i64))
                        } else {
                            done(Value::from(0i64))
                        }
                    })
                })
            }
            toss(move |c| {
                let scratch = RegisterId(100 + (c % 2));
                ll(scratch, move |_| attempt(n))
            })
            .into_program()
        })
    }

    #[test]
    fn randomized_wakeup_meets_expected_bound() {
        let alg = randomized_counter_wakeup();
        for n in [4, 8, 16] {
            let rep =
                estimate_expected_complexity(&alg, n, 0..20, &AdversaryConfig::default()).unwrap();
            assert_eq!(rep.termination_rate, 1.0, "n={n}");
            assert_eq!(rep.wakeup_ok_rate, 1.0, "n={n}");
            assert!(rep.all_meet_bound, "n={n}: min={}", rep.min_winner_steps);
            // Lemma 3.1: expected ≥ c · k ≥ log4(n) here since c = 1 and
            // every winner meets ceil(log4 n).
            assert!(rep.lemma_3_1_bound >= rep.log4_n.floor(), "n={n}");
            assert!(rep.mean_winner_steps >= rep.min_winner_steps as f64);
            assert!(rep.max_winner_steps >= rep.min_winner_steps);
        }
    }

    #[test]
    fn non_terminating_runs_lower_the_rate() {
        // Half the coin outcomes spin forever: termination probability
        // should land strictly between 0 and 1 across seeds.
        let alg = FnAlgorithm::new("flaky", |_p, _n| {
            fn spin() -> llsc_shmem::dsl::Step {
                ll(RegisterId(9), |_| spin())
            }
            toss(|c| {
                if c % 2 == 0 {
                    ll(RegisterId(0), |_| done(Value::from(1i64)))
                } else {
                    spin()
                }
            })
            .into_program()
        });
        let cfg = AdversaryConfig {
            max_rounds: 50,
            ..AdversaryConfig::default()
        };
        let rep = estimate_expected_complexity(&alg, 2, 0..40, &cfg).unwrap();
        assert!(rep.termination_rate < 1.0);
        // With 2 processes and independent fair-ish coins, some runs do
        // terminate.
        assert!(rep.termination_rate > 0.0);
        assert!(rep.lemma_3_1_bound <= rep.termination_rate * rep.min_winner_steps as f64 + 1e-9);
    }

    #[test]
    fn chunked_samples_reassemble_to_the_sweep_report() {
        let alg = randomized_counter_wakeup();
        let cfg = AdversaryConfig::default();
        let seeds: Vec<u64> = (0..12).collect();
        let full =
            estimate_expected_complexity_sweep(&alg, 8, &seeds, &cfg, &Sweep::with_threads(3))
                .unwrap();
        // Sample the same seeds one at a time, out of order, then
        // reassemble in seed order.
        let mut sampled: Vec<(u64, ExpectationSample)> = seeds
            .iter()
            .rev()
            .map(|&seed| (seed, sample_expectation(&alg, 8, seed, &cfg).unwrap()))
            .collect();
        sampled.sort_by_key(|(seed, _)| *seed);
        let ordered: Vec<ExpectationSample> = sampled.into_iter().map(|(_, s)| s).collect();
        let assembled = report_from_samples(alg.name(), 8, &ordered);
        assert_eq!(assembled.samples, full.samples);
        assert_eq!(assembled.termination_rate, full.termination_rate);
        assert_eq!(assembled.mean_winner_steps, full.mean_winner_steps);
        assert_eq!(assembled.min_winner_steps, full.min_winner_steps);
        assert_eq!(assembled.max_winner_steps, full.max_winner_steps);
        assert_eq!(assembled.mean_max_steps, full.mean_max_steps);
        assert_eq!(assembled.lemma_3_1_bound, full.lemma_3_1_bound);
        assert_eq!(assembled.all_meet_bound, full.all_meet_bound);
    }

    #[test]
    fn report_is_reproducible_for_same_seeds() {
        let alg = randomized_counter_wakeup();
        let a = estimate_expected_complexity(&alg, 4, 0..10, &AdversaryConfig::default()).unwrap();
        let b = estimate_expected_complexity(&alg, 4, 0..10, &AdversaryConfig::default()).unwrap();
        assert_eq!(a.mean_winner_steps, b.mean_winner_steps);
        assert_eq!(a.min_winner_steps, b.min_winner_steps);
        assert_eq!(a.mean_max_steps, b.mean_max_steps);
    }

    #[test]
    fn empty_seed_set_is_degenerate_but_defined() {
        let alg = randomized_counter_wakeup();
        let rep =
            estimate_expected_complexity(&alg, 4, std::iter::empty(), &AdversaryConfig::default())
                .unwrap();
        assert_eq!(rep.samples, 0);
        assert_eq!(rep.termination_rate, 0.0);
        assert_eq!(rep.lemma_3_1_bound, 0.0);
    }

    #[test]
    fn display_summarises() {
        let alg = randomized_counter_wakeup();
        let rep = estimate_expected_complexity(&alg, 4, 0..4, &AdversaryConfig::default()).unwrap();
        assert!(rep.to_string().contains("rand-counter-wakeup"));
    }
}
