//! Gray-code incremental subset enumeration: `(S, A)`-runs built by
//! resuming a checkpoint instead of replaying from scratch.
//!
//! The exhaustive subset sweeps ([`crate::indist_all_subsets`]) build one
//! `(S, A)`-run per mask `S ⊆ {p_0, …, p_{n-1}}`. Because `S_1 = S`
//! always (`UP(p, 0) = {p}`), two masks diverge already in round 1 — but
//! only *after* the first event of a process on which they differ.
//! Walking the masks in a **Gray-code order**, where successive trials
//! flip exactly one process `p_b`, lets a worker checkpoint the executor
//! just before `p_b`'s first round-1 operation and rebuild the next trial
//! from that checkpoint, re-executing only the divergent tail.
//!
//! Three facts make the checkpoints cheap and the resumes sound:
//!
//! 1. **Round-1 behaviour is mask-independent.** Every participant of
//!    round 1 starts from its initial program state and consumes the same
//!    toss-assignment prefix, so its Phase-1 tosses, whether it terminates
//!    in Phase 1, and its first pending operation are the same in every
//!    trial — and equal to the `(All, A)`-run's round 1. The whole round-1
//!    *plan* (groups, move configuration, `σ`-restriction) is therefore a
//!    pure function of `(All-run round 1, mask)`; a checkpoint needs no
//!    bookkeeping, only executor state ([`ExecSnapshot`]).
//! 2. **Bit-reversed reflected Gray code puts the cheap flips first.**
//!    Position `w` maps to mask `bitrev_n(w ^ (w >> 1))`, so the
//!    highest-id process flips every second trial. Rounds execute in id
//!    order, so flipping `p_{n-1}` preserves the longest shared prefix.
//! 3. **A ruler-sequence capture schedule.** The flip into position `w`
//!    concerns bit `b = n - 1 - tz(w)`; that bit next flips `2^(n-1-b)`
//!    positions later. Capturing bit `b`'s checkpoint at every position
//!    `w ≡ 0 (mod 2^(n-b))` therefore provides each flip with a
//!    checkpoint captured inside the current segment — amortised one
//!    capture per trial, at most `n` checkpoints alive.
//!
//! A checkpoint for bit `b` is cut **inside the round-1 LL/validate
//! group**, after the members with id `< b` — by then every participant
//! has finished Phase 1, so the checkpoint also contains the Phase-1
//! events of *eventful* processes (those that toss or terminate in
//! Phase 1) with id `≥ b`. A resume is valid only if the new mask agrees
//! with the checkpoint below `b` exactly and on the eventful processes at
//! or above `b`; otherwise the trial silently falls back to a from-scratch
//! build. For the deterministic (`ZeroTosses`) experiment configurations
//! the eventful set is empty and every flip resumes incrementally.
//!
//! [`ExecSnapshot`]: llsc_shmem::ExecSnapshot

use crate::all_run::{AdversaryConfig, AllRun, RoundedRun};
use crate::rounds::{execute_round_with, MoveOrder, OpSummary, RoundGroups, RoundRecord};
use crate::s_run::{build_s_run_with, SRun};
use crate::secretive::{self, MoveConfig};
use crate::upsets::ProcSet;
use llsc_shmem::{
    Algorithm, ExecSnapshot, Executor, OpKind, Operation, ProcessId, RegisterId, Response, RunError,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The subset mask visited at Gray position `pos` of an `n`-process
/// enumeration: the bit-reversed reflected Gray code
/// `bitrev_n(pos ^ (pos >> 1))`.
///
/// A bijection from `0..2^n` onto `0..2^n` with `gray_mask(n, 0) == 0`;
/// consecutive positions differ in exactly one bit
/// ([`gray_flip_bit`]), and the *highest* bit flips most often.
///
/// # Panics
///
/// Panics if `pos >= 2^n` (debug builds).
pub fn gray_mask(n: usize, pos: usize) -> usize {
    debug_assert!(n == usize::BITS as usize || pos < 1usize << n);
    let g = pos ^ (pos >> 1);
    let mut mask = 0usize;
    for i in 0..n {
        if g & (1 << i) != 0 {
            mask |= 1 << (n - 1 - i);
        }
    }
    mask
}

/// The single bit in which `gray_mask(n, pos)` differs from
/// `gray_mask(n, pos - 1)`.
///
/// # Panics
///
/// Panics if `pos` is 0 (position 0 has no predecessor) or `pos >= 2^n`.
pub fn gray_flip_bit(n: usize, pos: usize) -> usize {
    assert!(pos > 0 && (n == usize::BITS as usize || pos < 1usize << n));
    n - 1 - pos.trailing_zeros() as usize
}

/// The bits whose checkpoint is (re)captured while executing the trial at
/// `pos`: bit `b` at every `pos ≡ 0 (mod 2^(n-b))`. Position 0 captures
/// every bit; odd positions capture none.
fn capture_bits(n: usize, pos: usize) -> std::ops::Range<usize> {
    if pos == 0 {
        0..n
    } else {
        (n - (pos.trailing_zeros() as usize).min(n))..n
    }
}

/// What the `(All, A)`-run's round 1 predetermines about *every* trial's
/// round 1 (see the module docs, fact 1): per process its Phase-1 toss
/// count, whether it terminates in Phase 1, and its first pending
/// operation; plus the unrestricted schedule `σ_1`.
#[derive(Clone, Debug)]
struct Round1Profile {
    steps: Vec<FirstStep>,
    /// Processes with recorded round-1 Phase-1 events (tosses or a
    /// termination): the ones whose participation is baked into a
    /// checkpoint's event prefix.
    eventful_mask: usize,
    sigma1: Vec<ProcessId>,
}

#[derive(Clone, Copy, Debug, Default)]
struct FirstStep {
    tosses: u64,
    terminates: bool,
    /// `(kind, target)` of the first shared operation; `None` iff the
    /// process terminates in Phase 1.
    op: Option<(OpKind, RegisterId)>,
    /// For a `move`: its source register.
    move_src: Option<RegisterId>,
}

impl Round1Profile {
    fn from_all(all: &AllRun) -> Round1Profile {
        let n = all.n();
        let mut steps = vec![FirstStep::default(); n];
        let mut eventful_mask = 0usize;
        let r1 = &all.base.rounds[0];
        for (&p, &t) in &r1.phase1_tosses {
            steps[p.0].tosses = t;
        }
        for &p in &r1.terminated_in_phase1 {
            steps[p.0].terminates = true;
        }
        for op in &r1.ops {
            steps[op.p.0].op = Some((op.kind, op.register));
        }
        for p in r1.move_config.processes() {
            let (src, _) = r1.move_config.get(p).expect("p iterated from the config");
            steps[p.0].move_src = Some(src);
        }
        for (i, st) in steps.iter().enumerate() {
            if st.tosses > 0 || st.terminates {
                eventful_mask |= 1 << i;
            }
        }
        Round1Profile {
            steps,
            eventful_mask,
            sigma1: r1.sigma.clone(),
        }
    }
}

/// One live checkpoint: executor state cut just before `p_cut_bit`'s
/// first round-1 operation, plus the mask slice it was captured under
/// (for the validity check at use).
#[derive(Clone, Debug)]
struct Snap {
    exec: Arc<ExecSnapshot>,
    cut_bit: usize,
    /// Plan index of the cut: the number of LL/validate-group members
    /// with id `< cut_bit` (recomputable at use; stored for the
    /// cross-check).
    cut: usize,
    /// Capture mask restricted to bits `< cut_bit`.
    mask_below: usize,
    /// Capture mask restricted to eventful bits `>= cut_bit`.
    mask_ge_eventful: usize,
}

/// The result of one Gray-position trial: the `(S, A)`-run (identical to
/// [`build_s_run_with`]'s output for the same mask) plus the replay
/// accounting.
#[derive(Clone, Debug)]
pub struct GrayTrial {
    /// The `(S, A)`-run of this position's mask.
    pub srun: SRun,
    /// Events restored from a checkpoint instead of being re-executed
    /// (0 when the trial fell back to a from-scratch build).
    pub replayed_events: u64,
}

impl GrayTrial {
    /// Events this trial actually executed (its run's total minus the
    /// checkpoint-restored prefix).
    pub fn executed_events(&self) -> u64 {
        self.srun.base.run.event_count() - self.replayed_events
    }
}

/// Per-worker scratch state of a Gray-code subset sweep: the round-1
/// profile, the live checkpoints (one per bit), and the continuity
/// cursor.
///
/// Feed it strictly consecutive positions and every trial at `pos >= 1`
/// resumes from a checkpoint (when valid — see the module docs); a jump
/// in the position sequence (a sweep block boundary, a resumed job chunk)
/// simply drops the checkpoints and rebuilds from scratch. The produced
/// runs are **byte-identical** to [`build_s_run_with`]'s in either case.
#[derive(Debug, Default)]
pub struct GraySubsetBuilder {
    profile: Option<Round1Profile>,
    snaps: Vec<Option<Snap>>,
    next_pos: Option<usize>,
}

impl GraySubsetBuilder {
    /// A fresh builder with no checkpoints.
    pub fn new() -> GraySubsetBuilder {
        GraySubsetBuilder::default()
    }

    /// Builds the `(S, A)`-run for the mask at Gray position `pos`
    /// ([`gray_mask`]) against `all`, resuming from a checkpoint when one
    /// is valid and capturing the checkpoints future positions need.
    ///
    /// `exec` is the worker's reusable executor (same contract as
    /// [`build_s_run_with`]); `alg`, `all`, and `cfg` must be the ones
    /// the surrounding sweep was configured with.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] the executor reports.
    ///
    /// # Panics
    ///
    /// Panics if `all.n() > 16` (positions would overflow the mask
    /// space) or `pos >= 2^n`.
    pub fn build_trial(
        &mut self,
        exec: &mut Executor,
        alg: &dyn Algorithm,
        all: &AllRun,
        cfg: &AdversaryConfig,
        pos: usize,
    ) -> Result<GrayTrial, RunError> {
        let n = all.n();
        assert!(n <= 16 && (n == usize::BITS as usize || pos < 1usize << n));
        self.snaps.resize_with(n, || None);
        let continuous = self.next_pos == Some(pos);
        self.next_pos = Some(pos + 1);
        if !continuous {
            self.snaps.iter_mut().for_each(|s| *s = None);
        }
        // Checkpoints require recorded histories (the restore replays
        // them) and at least one All-run round to profile; otherwise run
        // every trial from scratch.
        let incremental = cfg.executor.record_details && all.base.num_rounds() > 0;

        let mask = gray_mask(n, pos);
        let s: ProcSet = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(ProcessId)
            .collect();

        if mask == 0 || !incremental {
            if incremental {
                // Position 0: the initial configuration *is* the
                // checkpoint every bit starts from (cut 0 — no
                // participant has acted).
                exec.reset(alg);
                let snap = Arc::new(exec.capture());
                for b in capture_bits(n, pos) {
                    self.snaps[b] = Some(Snap {
                        exec: Arc::clone(&snap),
                        cut_bit: b,
                        cut: 0,
                        mask_below: 0,
                        mask_ge_eventful: 0,
                    });
                }
            }
            let srun = build_s_run_with(exec, alg, &s, all, cfg)?;
            return Ok(GrayTrial {
                srun,
                replayed_events: 0,
            });
        }

        let profile = self
            .profile
            .get_or_insert_with(|| Round1Profile::from_all(all));

        // Round 1, resumed/checkpointed; rounds >= 2 exactly as in
        // `build_s_run_with`.
        let participants: Vec<ProcessId> = s.iter().collect();
        let (round1, replayed_events) = round_one_incremental(
            exec,
            alg,
            profile,
            &mut self.snaps,
            mask,
            pos,
            &participants,
            cfg,
        )?;

        let mut rounds = vec![round1];
        let mut participants_per_round = vec![participants];
        for r in 2..=all.base.num_rounds() {
            let s_r: Vec<ProcessId> = ProcessId::all(n)
                .filter(|&p| all.up.proc(p, r - 1).is_subset(&s))
                .collect();
            if s_r.iter().all(|&p| exec.is_terminated(p)) {
                break;
            }
            let sigma_r = &all.base.rounds[r - 1].sigma;
            let rec = execute_round_with(
                exec,
                r,
                &s_r,
                MoveOrder::Given(sigma_r),
                cfg.record_snapshots,
            )?;
            participants_per_round.push(s_r);
            rounds.push(rec);
        }

        let completed = participants_per_round
            .last()
            .map(|ps| ps.iter().all(|&p| exec.is_terminated(p)))
            .unwrap_or(true);
        let outcome = exec.run_outcome();
        let srun = SRun {
            base: RoundedRun {
                n,
                rounds,
                run: exec.take_run(),
                initial_memory: Arc::clone(&all.base.initial_memory),
                completed,
                outcome,
            },
            s,
            participants_per_round,
        };
        Ok(GrayTrial {
            srun,
            replayed_events,
        })
    }
}

/// Executes round 1 for `mask`'s participants, resuming from the flip
/// bit's checkpoint when valid and capturing this position's due
/// checkpoints at their cut points. Returns the round record (identical
/// to [`execute_round_with`]'s) and the number of replayed events.
#[allow(clippy::too_many_arguments)]
fn round_one_incremental(
    exec: &mut Executor,
    alg: &dyn Algorithm,
    profile: &Round1Profile,
    snaps: &mut [Option<Snap>],
    mask: usize,
    pos: usize,
    participants: &[ProcessId],
    cfg: &AdversaryConfig,
) -> Result<(RoundRecord, u64), RunError> {
    let n = exec.n();

    // The round-1 plan, recomputed from the profile (fact 1 of the
    // module docs: it is mask-independent per process).
    let mut phase1_tosses = BTreeMap::new();
    let mut terminated_in_phase1 = Vec::new();
    let mut groups = RoundGroups::default();
    let mut move_config = MoveConfig::new();
    for &p in participants {
        let st = &profile.steps[p.0];
        phase1_tosses.insert(p, st.tosses);
        if st.terminates {
            terminated_in_phase1.push(p);
            continue;
        }
        let (kind, reg) = st.op.expect("a non-terminating participant has a first op");
        match kind {
            OpKind::Ll | OpKind::Validate => groups.g1_ll_validate.push(p),
            OpKind::Move => {
                groups.g2_move.push(p);
                let src = st.move_src.expect("movers carry their source register");
                move_config.insert(p, src, reg);
            }
            OpKind::Swap => groups.g3_swap.push(p),
            OpKind::Sc => groups.g4_sc.push(p),
        }
    }
    let keep: llsc_shmem::ProcMask = groups.g2_move.iter().copied().collect();
    let sigma = secretive::restrict(&profile.sigma1, &keep);
    let plan: Vec<ProcessId> = groups
        .g1_ll_validate
        .iter()
        .chain(sigma.iter())
        .chain(groups.g3_swap.iter())
        .chain(groups.g4_sc.iter())
        .copied()
        .collect();
    let g1_cut = |bit: usize| groups.g1_ll_validate.iter().filter(|p| p.0 < bit).count();

    // Resume from the flip bit's checkpoint, if it is valid for this
    // mask; otherwise run Phase 1 from scratch.
    let mut start_idx = 0usize;
    let mut replayed_events = 0u64;
    let mut resumed = false;
    if pos > 0 {
        let flip = gray_flip_bit(n, pos);
        let low = (1usize << flip) - 1;
        if let Some(snap) = &snaps[flip] {
            if snap.cut_bit == flip
                && snap.mask_below == mask & low
                && snap.mask_ge_eventful == mask & profile.eventful_mask & !low
            {
                let cut = g1_cut(flip);
                debug_assert_eq!(cut, snap.cut, "cut position drifted for bit {flip}");
                exec.restore_from(alg, &snap.exec, participants);
                start_idx = cut;
                replayed_events = snap.exec.event_count();
                resumed = true;
            }
        }
    }
    if !resumed {
        exec.reset(alg);
        for &p in participants {
            if !exec.is_runnable(p) {
                continue;
            }
            let tosses = exec.advance_local(p)?;
            debug_assert_eq!(
                tosses, profile.steps[p.0].tosses,
                "{p}: round-1 Phase 1 diverged from the (All, A)-run profile"
            );
            debug_assert_eq!(exec.is_terminated(p), profile.steps[p.0].terminates, "{p}");
        }
    }

    // This position's due captures, ordered by cut point. All cuts lie at
    // or after the resume point: captured bits exceed the flip bit, and
    // `g1_cut` is monotone in the bit.
    let mut captures: Vec<(usize, usize)> = capture_bits(n, pos).map(|b| (b, g1_cut(b))).collect();
    captures.sort_by_key(|&(_, cut)| cut);
    debug_assert!(captures.first().is_none_or(|&(_, cut)| cut >= start_idx));
    let mut cap_iter = captures.into_iter().peekable();

    // Phases 2-5, from the cut. The skipped prefix is synthesised from
    // the profile: all LL/validate ops, which carry no `sc_ok` and touch
    // none of the per-register tallies.
    let mut ops: Vec<OpSummary> = Vec::with_capacity(plan.len());
    for &p in &plan[..start_idx] {
        let (kind, register) = profile.steps[p.0].op.expect("prefix members have ops");
        debug_assert!(matches!(kind, OpKind::Ll | OpKind::Validate));
        ops.push(OpSummary {
            p,
            kind,
            register,
            sc_ok: None,
        });
    }
    let mut successful_sc = BTreeMap::new();
    let mut swaps: BTreeMap<RegisterId, Vec<ProcessId>> = BTreeMap::new();
    let mut moves_into: BTreeMap<RegisterId, Vec<ProcessId>> = BTreeMap::new();
    for i in start_idx..=plan.len() {
        let mut at_cut: Option<Arc<ExecSnapshot>> = None;
        while cap_iter.peek().is_some_and(|&(_, cut)| cut == i) {
            let (b, cut) = cap_iter.next().expect("peeked");
            let snap = at_cut
                .get_or_insert_with(|| Arc::new(exec.capture()))
                .clone();
            snaps[b] = Some(Snap {
                exec: snap,
                cut_bit: b,
                cut,
                mask_below: mask & ((1usize << b) - 1),
                mask_ge_eventful: mask & profile.eventful_mask & !((1usize << b) - 1),
            });
        }
        let Some(&p) = plan.get(i) else { break };
        let (op, resp) = exec.perform_shared(p)?;
        let mut sc_ok = None;
        match (&op, &resp) {
            (Operation::Sc(r, _), Response::Flagged { ok, .. }) => {
                sc_ok = Some(*ok);
                if *ok {
                    let prev = successful_sc.insert(*r, p);
                    debug_assert!(prev.is_none(), "two successful SCs on {r} in round 1");
                }
            }
            (Operation::Swap(r, _), _) => swaps.entry(*r).or_default().push(p),
            (Operation::Move { dst, .. }, _) => moves_into.entry(*dst).or_default().push(p),
            _ => {}
        }
        ops.push(OpSummary {
            p,
            kind: op.kind(),
            register: op.target(),
            sc_ok,
        });
    }

    let (end_values, end_psets) = if cfg.record_snapshots {
        (
            exec.memory().snapshot_values(),
            exec.memory().snapshot_psets(),
        )
    } else {
        (BTreeMap::new(), BTreeMap::new())
    };
    let end_tosses = ProcessId::all(n).map(|p| exec.run().tosses(p)).collect();
    let end_history_len = ProcessId::all(n)
        .map(|p| exec.run().history(p).len())
        .collect();
    let end_shared_steps = ProcessId::all(n)
        .map(|p| exec.run().shared_steps(p))
        .collect();

    Ok((
        RoundRecord {
            round: 1,
            participants: participants.to_vec(),
            phase1_tosses,
            terminated_in_phase1,
            groups,
            move_config,
            sigma,
            ops,
            successful_sc,
            swaps,
            moves_into,
            end_values,
            end_psets,
            end_tosses,
            end_history_len,
            end_shared_steps,
        },
        replayed_events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_run::build_all_run;
    use crate::s_run::build_s_run;
    use llsc_shmem::dsl::{done, ll, mv, sc, swap, toss, validate};
    use llsc_shmem::{
        ExecutorConfig, FnAlgorithm, SeededTosses, TossAssignment, Value, ZeroTosses,
    };

    #[test]
    fn gray_masks_are_a_bijection_flipping_one_bit() {
        for n in 0..=6usize {
            let total = 1usize << n;
            let mut seen = vec![false; total];
            let mut prev = None;
            for pos in 0..total {
                let m = gray_mask(n, pos);
                assert!(!seen[m], "n={n} pos={pos} repeats mask {m}");
                seen[m] = true;
                if let Some(pm) = prev {
                    let diff: usize = m ^ pm;
                    assert_eq!(diff.count_ones(), 1, "n={n} pos={pos}");
                    assert_eq!(diff, 1 << gray_flip_bit(n, pos), "n={n} pos={pos}");
                }
                prev = Some(m);
            }
            assert_eq!(gray_mask(n, 0), 0);
        }
    }

    #[test]
    fn highest_bit_flips_every_other_position() {
        let n = 5;
        for pos in (1..1usize << n).step_by(2) {
            assert_eq!(gray_flip_bit(n, pos), n - 1);
        }
    }

    #[test]
    fn capture_schedule_provides_every_flip_in_segment() {
        // The checkpoint used by the flip at position w must have been
        // captured at the latest prior capture point of that bit, with no
        // other flip of the bit in between.
        let n = 6;
        for use_pos in 1..1usize << n {
            let b = gray_flip_bit(n, use_pos);
            let stride = 1usize << (n - b);
            let cap_pos = use_pos - stride / 2;
            assert!(
                capture_bits(n, cap_pos).contains(&b),
                "flip of bit {b} at {use_pos} lacks a capture at {cap_pos}"
            );
        }
    }

    /// A zoo of round-1 shapes: LL/SC contention, movers, swappers,
    /// validates, instant terminators.
    fn mixed_alg() -> impl Algorithm {
        FnAlgorithm::new("gray-mixed", |pid: ProcessId, _n| {
            let prog: Box<dyn llsc_shmem::Program> = match pid.0 % 6 {
                0 => ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                        done(Value::from(ok))
                    })
                })
                .into_program(),
                1 => mv(RegisterId(1), RegisterId(2), || done(Value::from(0i64))).into_program(),
                2 => swap(RegisterId(3), Value::from(7i64), |_| {
                    done(Value::from(0i64))
                })
                .into_program(),
                3 => validate(RegisterId(0), |_, _| done(Value::from(0i64))).into_program(),
                4 => done(Value::from(0i64)).into_program(),
                _ => ll(RegisterId(4), |_| done(Value::from(0i64))).into_program(),
            };
            prog
        })
    }

    /// A randomized algorithm: tosses decide the register and whether to
    /// retry, so Phase 1 is eventful for every process.
    fn tossing_alg() -> impl Algorithm {
        FnAlgorithm::new("gray-toss", |pid: ProcessId, _n| {
            toss(move |c| {
                ll(RegisterId(c % 3), move |_| {
                    sc(RegisterId(c % 3), Value::from(pid.0 as i64), |ok, _| {
                        done(Value::from(ok))
                    })
                })
            })
            .into_program()
        })
    }

    fn assert_trials_match(
        alg: &dyn Algorithm,
        n: usize,
        toss_assignment: Arc<dyn TossAssignment>,
        cfg: &AdversaryConfig,
    ) {
        let all = build_all_run(alg, n, toss_assignment.clone(), cfg).unwrap();
        let mut exec = Executor::new(alg, n, toss_assignment.clone(), cfg.executor);
        let mut builder = GraySubsetBuilder::new();
        for pos in 0..1usize << n {
            let mask = gray_mask(n, pos);
            let s: ProcSet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let fresh = build_s_run(alg, n, toss_assignment.clone(), &s, &all, cfg).unwrap();
            let gray = builder.build_trial(&mut exec, alg, &all, cfg, pos).unwrap();
            assert_eq!(gray.srun.s, s, "pos={pos}");
            // Event-for-event identity.
            assert_eq!(
                fresh.base.run.events(),
                gray.srun.base.run.events(),
                "pos={pos} mask={mask:#b}"
            );
            for p in ProcessId::all(n) {
                assert_eq!(
                    fresh.base.run.history(p),
                    gray.srun.base.run.history(p),
                    "pos={pos} {p}"
                );
            }
            assert_eq!(
                fresh.participants_per_round, gray.srun.participants_per_round,
                "pos={pos}"
            );
            assert_eq!(fresh.base.rounds.len(), gray.srun.base.rounds.len());
            for (a, b) in fresh.base.rounds.iter().zip(&gray.srun.base.rounds) {
                assert_eq!(a.participants, b.participants, "pos={pos} r={}", a.round);
                assert_eq!(a.phase1_tosses, b.phase1_tosses, "pos={pos} r={}", a.round);
                assert_eq!(
                    a.terminated_in_phase1, b.terminated_in_phase1,
                    "pos={pos} r={}",
                    a.round
                );
                assert_eq!(a.groups, b.groups, "pos={pos} r={}", a.round);
                assert_eq!(a.move_config, b.move_config, "pos={pos} r={}", a.round);
                assert_eq!(a.sigma, b.sigma, "pos={pos} r={}", a.round);
                assert_eq!(a.ops, b.ops, "pos={pos} r={}", a.round);
                assert_eq!(a.successful_sc, b.successful_sc, "pos={pos}");
                assert_eq!(a.swaps, b.swaps, "pos={pos}");
                assert_eq!(a.moves_into, b.moves_into, "pos={pos}");
                assert_eq!(a.end_values, b.end_values, "pos={pos} r={}", a.round);
                assert_eq!(a.end_psets, b.end_psets, "pos={pos} r={}", a.round);
                assert_eq!(a.end_tosses, b.end_tosses, "pos={pos} r={}", a.round);
                assert_eq!(a.end_history_len, b.end_history_len, "pos={pos}");
                assert_eq!(a.end_shared_steps, b.end_shared_steps, "pos={pos}");
            }
            assert_eq!(fresh.base.completed, gray.srun.base.completed, "pos={pos}");
            assert_eq!(fresh.base.outcome, gray.srun.base.outcome, "pos={pos}");
            assert_eq!(
                gray.replayed_events + gray.executed_events(),
                gray.srun.base.run.event_count()
            );
        }
    }

    #[test]
    fn incremental_trials_match_from_scratch_llsc() {
        let alg = FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        });
        assert_trials_match(&alg, 5, Arc::new(ZeroTosses), &AdversaryConfig::default());
    }

    #[test]
    fn incremental_trials_match_from_scratch_mixed() {
        let alg = mixed_alg();
        assert_trials_match(&alg, 6, Arc::new(ZeroTosses), &AdversaryConfig::default());
    }

    #[test]
    fn incremental_trials_match_from_scratch_randomized() {
        // Eventful Phase 1 everywhere: most flips fail the validity check
        // and fall back to scratch, which must be just as identical.
        let alg = tossing_alg();
        for seed in [7u64, 99, 12345] {
            assert_trials_match(
                &alg,
                5,
                Arc::new(SeededTosses::new(seed)),
                &AdversaryConfig::default(),
            );
        }
    }

    #[test]
    fn incremental_trials_match_under_varied_configs() {
        let alg = mixed_alg();
        // No register snapshots.
        let cfg = AdversaryConfig {
            record_snapshots: false,
            ..AdversaryConfig::default()
        };
        assert_trials_match(&alg, 5, Arc::new(ZeroTosses), &cfg);
        // No detail recording: the incremental path must disable itself.
        let cfg = AdversaryConfig {
            executor: ExecutorConfig {
                record_details: false,
                ..ExecutorConfig::default()
            },
            ..AdversaryConfig::default()
        };
        assert_trials_match(&alg, 5, Arc::new(ZeroTosses), &cfg);
    }

    #[test]
    fn noncontiguous_positions_fall_back_but_stay_correct() {
        let alg = mixed_alg();
        let n = 6;
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        let mut exec = Executor::new(&alg, n, Arc::new(ZeroTosses), cfg.executor);
        let mut builder = GraySubsetBuilder::new();
        // A scrambled visit order: every trial must still match scratch.
        for pos in [5usize, 6, 7, 0, 1, 2, 63, 62, 31, 32, 33, 34] {
            let mask = gray_mask(n, pos);
            let s: ProcSet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let fresh = build_s_run(&alg, n, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
            let gray = builder
                .build_trial(&mut exec, &alg, &all, &cfg, pos)
                .unwrap();
            assert_eq!(
                fresh.base.run.events(),
                gray.srun.base.run.events(),
                "pos={pos}"
            );
        }
    }

    #[test]
    fn deterministic_algorithms_replay_events() {
        // With ZeroTosses nothing is eventful, so every position >= 1
        // must resume incrementally and replay a nonzero prefix whenever
        // the flip bit's cut is past the start of the plan.
        let alg = mixed_alg();
        let n = 6;
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, n, Arc::new(ZeroTosses), &cfg).unwrap();
        let mut exec = Executor::new(&alg, n, Arc::new(ZeroTosses), cfg.executor);
        let mut builder = GraySubsetBuilder::new();
        let mut replayed = 0u64;
        for pos in 0..1usize << n {
            replayed += builder
                .build_trial(&mut exec, &alg, &all, &cfg, pos)
                .unwrap()
                .replayed_events;
        }
        assert!(replayed > 0, "a contiguous sweep must reuse checkpoints");
    }
}
