//! The Indistinguishability Lemma (Lemma 5.2), checked mechanically.
//!
//! Lemma 5.2 states: for every `S`, every process or register `X`, and
//! every round `r`, if `UP(X, r) ⊆ S` then the `(All, A)`-run and the
//! `(S, A)`-run are indistinguishable to `X` up to the end of round `r`:
//!
//! * for a process `p`: same automaton state and same `numtosses`. Our
//!   programs are deterministic given their observations, so "same state"
//!   is checked as "same interaction history" (every toss outcome and every
//!   operation response received, in order);
//! * for a register `R`: same value, and the same `Pset` membership for
//!   every process `p` with `UP(p, r) ⊆ S`.
//!
//! [`check_indistinguishability`] evaluates these conditions for **every**
//! round, process, and touched register, returning a report that lists any
//! violations. For correct update rules this report is always clean; the
//! test suite also contains *negative* controls showing the checker does
//! flag genuinely distinguishable configurations when `UP ⊄ S`.

use crate::all_run::AllRun;
use crate::s_run::SRun;
use llsc_shmem::{ProcessId, RegisterId};
use std::fmt;

/// What the indistinguishability check found to differ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndistViolation {
    /// A process with `UP(p, r) ⊆ S` observed different histories.
    ProcessHistory {
        /// The process.
        p: ProcessId,
        /// The round at whose end the histories differ.
        round: usize,
    },
    /// A process with `UP(p, r) ⊆ S` tossed a different number of coins.
    ProcessTosses {
        /// The process.
        p: ProcessId,
        /// The round at whose end the counts differ.
        round: usize,
        /// `numtosses` in the `(All, A)`-run.
        all: u64,
        /// `numtosses` in the `(S, A)`-run.
        s: u64,
    },
    /// A register with `UP(R, r) ⊆ S` held different values.
    RegisterValue {
        /// The register.
        r: RegisterId,
        /// The round at whose end the values differ.
        round: usize,
    },
    /// A register with `UP(R, r) ⊆ S` disagreed on the `Pset` membership
    /// of some process with `UP(p, r) ⊆ S`.
    RegisterPset {
        /// The register.
        r: RegisterId,
        /// The process whose membership differs.
        p: ProcessId,
        /// The round at whose end the membership differs.
        round: usize,
    },
}

impl fmt::Display for IndistViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndistViolation::ProcessHistory { p, round } => {
                write!(f, "round {round}: {p} histories differ")
            }
            IndistViolation::ProcessTosses { p, round, all, s } => {
                write!(f, "round {round}: {p} numtosses differ (all={all}, s={s})")
            }
            IndistViolation::RegisterValue { r, round } => {
                write!(f, "round {round}: {r} values differ")
            }
            IndistViolation::RegisterPset { r, p, round } => {
                write!(f, "round {round}: {r} Pset membership of {p} differs")
            }
        }
    }
}

/// The outcome of checking Lemma 5.2 on one `(All, A)`/`(S, A)` run pair.
#[derive(Clone, Debug, Default)]
pub struct IndistReport {
    /// Rounds checked (`0..=rounds`).
    pub rounds_checked: usize,
    /// Number of `(process, round)` pairs whose `UP ⊆ S` condition held
    /// and were therefore compared.
    pub process_checks: usize,
    /// Number of `(register, round)` pairs compared.
    pub register_checks: usize,
    /// All violations found (empty for a sound update-rule system).
    pub violations: Vec<IndistViolation>,
}

impl IndistReport {
    /// `true` iff no violations were found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for IndistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "indistinguishability: {} rounds, {} process checks, {} register checks, {} violation(s)",
            self.rounds_checked,
            self.process_checks,
            self.register_checks,
            self.violations.len()
        )
    }
}

/// Mechanically checks Lemma 5.2 for the pair (`all`, `srun`).
///
/// For every round `r` from 0 to the number of rounds of the
/// `(All, A)`-run, compares every process with `UP(p, r) ⊆ S` and every
/// touched register with `UP(R, r) ⊆ S` across the two runs.
///
/// Rounds of the `(S, A)`-run beyond its early-exit point are empty; the
/// comparison extends the `(S, A)`-run's last snapshot to those rounds,
/// which is exact because nothing changes in empty rounds.
pub fn check_indistinguishability(all: &AllRun, srun: &SRun) -> IndistReport {
    let n = all.n();
    let s = &srun.s;
    let rounds = all.base.num_rounds();
    let mut report = IndistReport {
        rounds_checked: rounds + 1,
        ..IndistReport::default()
    };

    // The (S, A)-run may have stopped early; clamp its snapshot index.
    let s_round = |r: usize| r.min(srun.base.num_rounds());

    // Registers worth checking: touched in either run.
    let mut regs: Vec<RegisterId> = all.base.touched_registers();
    for r in srun.base.touched_registers() {
        if !regs.contains(&r) {
            regs.push(r);
        }
    }
    regs.sort_unstable();

    // Per-process incremental history comparison. The compared prefixes
    // only ever grow with `r`, so instead of re-walking the full prefix
    // each round (quadratic in rounds) we verify just the extension since
    // the previous round. `verified[p]` is the length compared equal so
    // far; a content mismatch is permanent (both histories are immutable
    // and only grow), so round `r`'s full-prefix comparison differs
    // exactly when a content mismatch was ever seen or the two prefix
    // lengths differ at `r`.
    let mut verified = vec![0usize; n];
    let mut content_mismatch = vec![false; n];

    for r in 0..=rounds {
        let sr = s_round(r);
        // Processes.
        for p in ProcessId::all(n) {
            if !all.up.proc(p, r).is_subset(s) {
                continue;
            }
            report.process_checks += 1;
            let h_all = all.base.history_at(p, r);
            let h_s = srun.base.history_at(p, sr);
            if !content_mismatch[p.0] {
                let common = h_all.len().min(h_s.len());
                if h_all[verified[p.0]..common] != h_s[verified[p.0]..common] {
                    content_mismatch[p.0] = true;
                } else {
                    verified[p.0] = common;
                }
            }
            if content_mismatch[p.0] || h_all.len() != h_s.len() {
                report
                    .violations
                    .push(IndistViolation::ProcessHistory { p, round: r });
            }
            let t_all = all.base.tosses_at(p, r);
            let t_s = srun.base.tosses_at(p, sr);
            if t_all != t_s {
                report.violations.push(IndistViolation::ProcessTosses {
                    p,
                    round: r,
                    all: t_all,
                    s: t_s,
                });
            }
        }
        // Registers.
        for &reg in &regs {
            if !all.up.reg(reg, r).is_subset(s) {
                continue;
            }
            report.register_checks += 1;
            if all.base.value_at(reg, r) != srun.base.value_at(reg, sr) {
                report
                    .violations
                    .push(IndistViolation::RegisterValue { r: reg, round: r });
            }
            let pset_all = all.base.pset_at(reg, r);
            let pset_s = srun.base.pset_at(reg, sr);
            for p in ProcessId::all(n) {
                if !all.up.proc(p, r).is_subset(s) {
                    continue;
                }
                if pset_all.contains(p) != pset_s.contains(p) {
                    report.violations.push(IndistViolation::RegisterPset {
                        r: reg,
                        p,
                        round: r,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_run::{build_all_run, AdversaryConfig};
    use crate::s_run::build_s_run;
    use crate::upsets::ProcSet;
    use llsc_shmem::dsl::{done, ll, mv, sc, swap, validate};
    use llsc_shmem::{
        Algorithm, FnAlgorithm, ProcessId, Program, RegisterId, SeededTosses, Value, ZeroTosses,
    };
    use std::sync::Arc;

    fn pset<const N: usize>(ids: [usize; N]) -> ProcSet {
        ids.into_iter().map(ProcessId).collect()
    }

    fn check_all_subsets(alg: &dyn Algorithm, n: usize, seed: Option<u64>) {
        let cfg = AdversaryConfig::default();
        let toss: Arc<dyn llsc_shmem::TossAssignment> = match seed {
            Some(s) => Arc::new(SeededTosses::new(s)),
            None => Arc::new(ZeroTosses),
        };
        let all = build_all_run(alg, n, toss.clone(), &cfg).unwrap();
        // Exhaustive over subsets for small n.
        for mask in 0..(1u32 << n) {
            let s: ProcSet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let srun = build_s_run(alg, n, toss.clone(), &s, &all, &cfg).unwrap();
            let report = check_indistinguishability(&all, &srun);
            assert!(
                report.ok(),
                "alg={} n={n} S={s:?}: {:?}",
                alg.name(),
                report.violations
            );
        }
    }

    #[test]
    fn lemma_5_2_llsc_contention() {
        let alg = FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        });
        check_all_subsets(&alg, 4, None);
    }

    #[test]
    fn lemma_5_2_retrying_llsc() {
        // Retry until success: the classic counter.
        let alg = FnAlgorithm::new("counter", |_pid, _n| {
            fn attempt() -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), |prev| {
                    let v = prev.as_int().unwrap_or(0);
                    sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
                        if ok {
                            done(Value::from(v + 1))
                        } else {
                            attempt()
                        }
                    })
                })
            }
            attempt().into_program()
        });
        check_all_subsets(&alg, 4, None);
    }

    #[test]
    fn lemma_5_2_with_swaps() {
        let alg = FnAlgorithm::new("swappers", |pid: ProcessId, _n| {
            swap(RegisterId(0), Value::from(pid.0 as i64), |prev| {
                swap(RegisterId(1), prev, |_| done(Value::from(0i64)))
            })
            .into_program()
        });
        check_all_subsets(&alg, 4, None);
    }

    #[test]
    fn lemma_5_2_with_moves() {
        // The Section-4 chain followed by a validate of the last register.
        let alg = FnAlgorithm::new("chain+read", |pid: ProcessId, n| {
            let prog: Box<dyn Program> = if pid.0 < n - 1 {
                mv(
                    RegisterId(pid.0 as u64),
                    RegisterId(pid.0 as u64 + 1),
                    || done(Value::from(0i64)),
                )
                .into_program()
            } else {
                validate(RegisterId(n as u64 - 1), |_, _| done(Value::from(0i64))).into_program()
            };
            prog
        })
        .with_initial_memory(vec![(RegisterId(0), Value::from(7i64))]);
        check_all_subsets(&alg, 5, None);
    }

    #[test]
    fn lemma_5_2_mixed_ops_randomized() {
        // Coin-flip between LL/SC, swap, and move behaviour.
        let alg = FnAlgorithm::new("mixed-rand", |pid: ProcessId, _n| {
            llsc_shmem::dsl::toss(move |c| match c % 3 {
                0 => ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), |_, _| {
                        done(Value::from(0i64))
                    })
                }),
                1 => swap(RegisterId(1), Value::from(pid.0 as i64), |_| {
                    done(Value::from(0i64))
                }),
                _ => mv(RegisterId(1), RegisterId(0), || done(Value::from(0i64))),
            })
            .into_program()
        });
        for seed in [1, 2, 42] {
            check_all_subsets(&alg, 4, Some(seed));
        }
    }

    #[test]
    fn checker_flags_differences_outside_the_lemma() {
        // Negative control. For the LL/SC contention algorithm, p1's
        // round-2 view *differs* between the runs when S = {p1, p2, p3}
        // (in the All-run p0 wins the SC; without p0, p1 wins). Lemma 5.2
        // does not apply to p1 at round 2 because UP(p1, 2) ∋ p0 ⊄ S —
        // verify both that UP escapes S and that the raw histories differ,
        // i.e. the checker's comparison is not vacuous.
        let alg = FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        });
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        let s = pset([1, 2, 3]);
        let srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        // UP(p1, 2) includes p0, so the lemma says nothing about p1.
        assert!(!all.up.proc(ProcessId(1), 2).is_subset(&s));
        // And indeed p1's histories differ at round 2 (SC failed vs
        // succeeded).
        assert_ne!(
            all.base.history_at(ProcessId(1), 2),
            srun.base.history_at(ProcessId(1), 2)
        );
        // The lemma-scoped check is still clean.
        let report = check_indistinguishability(&all, &srun);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.process_checks > 0);
        assert!(report.register_checks > 0);
    }

    #[test]
    fn checker_is_sensitive_to_mislabelled_runs() {
        // Sensitivity control: relabel an (S, A)-run as if it had been
        // built for a larger S. Processes in the difference did not step
        // in the run but have UP ⊆ S, so the checker MUST flag them —
        // proving the comparisons are not vacuous.
        let alg = FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        });
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        let small = pset([1]);
        let mut srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &small, &all, &cfg).unwrap();
        srun.s = pset([1, 2, 3]); // lie about S
        let report = check_indistinguishability(&all, &srun);
        assert!(!report.ok(), "mislabelled run must be flagged");
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, IndistViolation::ProcessHistory { .. })));
    }

    #[test]
    fn report_display_mentions_counts() {
        let alg = FnAlgorithm::new("noop", |_p, _n| done(Value::from(0i64)).into_program());
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 2, Arc::new(ZeroTosses), &cfg).unwrap();
        let s: ProcSet = ProcessId::all(2).collect();
        let srun = build_s_run(&alg, 2, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        let report = check_indistinguishability(&all, &srun);
        assert!(report.to_string().contains("0 violation(s)"));
    }

    #[test]
    fn violation_displays_are_informative() {
        let v = IndistViolation::ProcessTosses {
            p: ProcessId(1),
            round: 3,
            all: 2,
            s: 1,
        };
        assert_eq!(v.to_string(), "round 3: p1 numtosses differ (all=2, s=1)");
        let v2 = IndistViolation::RegisterValue {
            r: RegisterId(0),
            round: 1,
        };
        assert!(v2.to_string().contains("R0"));
    }
}
