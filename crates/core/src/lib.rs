//! # llsc-core: the lower-bound machinery of Jayanti (PODC 1998)
//!
//! This crate is the paper's primary contribution made executable, layered
//! over the shared-memory substrate of [`llsc_shmem`]:
//!
//! * **Section 4** — [`secretive_complete_schedule`] constructs, for any
//!   move configuration [`MoveConfig`], a complete schedule under which
//!   every register's final value was carried by at most two processes
//!   ([`movers`]); Lemma 4.2's restriction property is exposed via
//!   [`restrict`] and [`restriction_preserves_source`].
//! * **Section 5** — [`build_all_run`] executes the Figure-2 five-phase
//!   round adversary to produce the `(All, A)`-run, while [`UpTracker`]
//!   applies the `UP`-set update rules (Lemma 5.1:
//!   [`UpTracker::lemma_5_1_holds`]). [`build_s_run`] constructs the
//!   restricted `(S, A)`-run of Figure 3, and
//!   [`check_indistinguishability`] mechanically verifies Lemma 5.2 on the
//!   pair.
//! * **Section 6** — [`check_wakeup`] validates runs against the wakeup
//!   specification; [`verify_lower_bound`] runs the Theorem 6.1 argument on
//!   a concrete algorithm, constructing a real counterexample `(S, A)`-run
//!   whenever an algorithm's winner returns 1 in fewer than `⌈log₄ n⌉`
//!   shared-memory steps; [`estimate_expected_complexity`] samples toss
//!   assignments to estimate the randomized bound of Lemma 3.1.
//!
//! ## Example: the lower bound on a correct wakeup algorithm
//!
//! ```
//! use llsc_core::{verify_lower_bound, ceil_log4, AdversaryConfig};
//! use llsc_shmem::dsl::{done, ll, sc};
//! use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};
//! use std::sync::Arc;
//!
//! // One-shot fetch&increment wakeup: the process that installs n wins.
//! let alg = FnAlgorithm::new("counter-wakeup", |_pid, n| {
//!     fn attempt(n: usize) -> llsc_shmem::dsl::Step {
//!         ll(RegisterId(0), move |prev| {
//!             let v = prev.as_int().unwrap_or(0);
//!             sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
//!                 if !ok { attempt(n) }
//!                 else if v + 1 == n as i128 { done(Value::from(1i64)) }
//!                 else { done(Value::from(0i64)) }
//!             })
//!         })
//!     }
//!     attempt(n).into_program()
//! });
//!
//! let report = verify_lower_bound(&alg, 16, Arc::new(ZeroTosses), &AdversaryConfig::default())
//!     .expect("the run stays within the default event budget");
//! assert!(report.wakeup.ok());
//! assert!(report.bound_holds);
//! assert!(report.winner_steps >= ceil_log4(16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod all_run;
mod claims;
mod expectation;
mod gray;
mod indist;
mod rounds;
mod s_run;
mod secretive;
mod stress;
mod subsets;
mod theorem;
mod trace;
mod upsets;
mod wakeup;

pub use all_run::{build_all_run, AdversaryConfig, AllRun, RoundedRun};
pub use claims::{
    check_appendix_claims, check_claims_all_subsets, check_claims_all_subsets_sweep,
    ClaimViolation, ClaimsReport,
};
pub use expectation::{
    estimate_expected_complexity, estimate_expected_complexity_sweep, report_from_samples,
    sample_expectation, ExpectationReport, ExpectationSample,
};
pub use gray::{gray_flip_bit, gray_mask, GraySubsetBuilder, GrayTrial};
pub use indist::{check_indistinguishability, IndistReport, IndistViolation};
pub use rounds::{
    execute_round, execute_round_with, MoveOrder, OpSummary, RoundGroups, RoundRecord,
};
pub use s_run::{build_s_run, build_s_run_with, SRun};
pub use secretive::{
    flow_report, is_complete, is_secretive, movers, random_move_config, restrict,
    restriction_preserves_source, secretive_complete_schedule, source, MoveConfig,
};
pub use stress::{
    standard_portfolio, stress_wakeup, stress_wakeup_sweep, StressFailure, StressReport,
    StressSchedule,
};
pub use subsets::{
    indist_all_subsets, indist_subset_range, report_from_subset_records, SubsetChunk,
    SubsetSweepReport, SubsetTrialRecord,
};
pub use theorem::{
    ceil_log4, log4, report_from_all_run, verify_lower_bound, LowerBoundReport, Refutation,
};
pub use trace::{trace_all_run, trace_round, trace_up_sets};
pub use upsets::{lemma_5_1_bound, ProcSet, UpSnapshot, UpTracker};
pub use wakeup::{check_wakeup, WakeupCheck, WakeupViolation};
