//! The five-phase round structure of the adversary (Figure 2 / Figure 3).
//!
//! Both the `(All, A)`-run and the `(S, A)`-run proceed in rounds with the
//! same five phases; they differ only in *which* processes participate and
//! in how the move-group is ordered (the `(S, A)`-run reuses the secretive
//! schedule `σ_r` computed for the `(All, A)`-run). [`execute_round`]
//! implements one round over a live [`Executor`] and records everything the
//! `UP`-set update rules and the indistinguishability checker later need.

use crate::secretive::{self, MoveConfig};
use llsc_shmem::{
    Executor, OpKind, Operation, ProcMask, ProcessId, RegisterId, Response, RunError, Value,
};
use std::collections::BTreeMap;

/// A lean record of one shared-memory operation of a round: everything the
/// `UP` update rules need, without the (possibly large) operand/response
/// values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSummary {
    /// The invoking process.
    pub p: ProcessId,
    /// The operation's kind.
    pub kind: OpKind,
    /// The register whose state the operation targets (`dst` for a move).
    pub register: RegisterId,
    /// For an SC: whether it succeeded. `None` for other kinds.
    pub sc_ok: Option<bool>,
}

/// How Phase 3 (the move group) is ordered.
#[derive(Clone, Copy, Debug)]
pub enum MoveOrder<'a> {
    /// Compute a fresh secretive complete schedule for this round's move
    /// configuration — the `(All, A)`-run behaviour.
    Secretive,
    /// Follow the given schedule, restricted to this round's move group —
    /// the `(S, A)`-run behaviour ("processes in `S_{2,r}` perform one
    /// operation each, in the order in which they appear in `σ_r`").
    Given(&'a [ProcessId]),
}

/// The partition of a round's participants by the kind of their next
/// shared-memory operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundGroups {
    /// `G_1`: processes about to perform `LL` or `validate`.
    pub g1_ll_validate: Vec<ProcessId>,
    /// `G_2`: processes about to perform `move`.
    pub g2_move: Vec<ProcessId>,
    /// `G_3`: processes about to perform `swap`.
    pub g3_swap: Vec<ProcessId>,
    /// `G_4`: processes about to perform `SC`.
    pub g4_sc: Vec<ProcessId>,
}

impl RoundGroups {
    /// All grouped processes, i.e. the participants that perform a
    /// shared-memory operation this round.
    pub fn all(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.g1_ll_validate
            .iter()
            .chain(&self.g2_move)
            .chain(&self.g3_swap)
            .chain(&self.g4_sc)
            .copied()
    }
}

/// Everything that happened in one adversary round, in enough detail to
/// (a) apply the Section-5.3 `UP` update rules and (b) compare end-of-round
/// configurations between runs.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// The processes eligible to act this round (before termination
    /// filtering), in the order they were given.
    pub participants: Vec<ProcessId>,
    /// Coin tosses performed in Phase 1, per process.
    pub phase1_tosses: BTreeMap<ProcessId, u64>,
    /// Processes that terminated during Phase 1 of this round.
    pub terminated_in_phase1: Vec<ProcessId>,
    /// The group partition after Phase 1.
    pub groups: RoundGroups,
    /// The move configuration `(G_{2,r}, f_r)` of this round.
    pub move_config: MoveConfig,
    /// `σ_r`: the order in which the move group actually executed.
    pub sigma: Vec<ProcessId>,
    /// Every shared-memory operation of the round, in execution order
    /// (lean summaries; the full operations live in the underlying
    /// [`llsc_shmem::Run`] when detail recording is on).
    pub ops: Vec<OpSummary>,
    /// Per register: the process whose SC on it succeeded this round
    /// (at most one per register per round).
    pub successful_sc: BTreeMap<RegisterId, ProcessId>,
    /// Per register: the processes that swapped it this round, in
    /// execution order.
    pub swaps: BTreeMap<RegisterId, Vec<ProcessId>>,
    /// Per register: the processes that moved into it this round, in
    /// execution order.
    pub moves_into: BTreeMap<RegisterId, Vec<ProcessId>>,
    /// Values of all touched registers at the end of the round (empty when
    /// snapshot recording is disabled).
    pub end_values: BTreeMap<RegisterId, Value>,
    /// `Pset`s of all touched registers at the end of the round, as
    /// bitmasks (empty when snapshot recording is disabled).
    pub end_psets: BTreeMap<RegisterId, ProcMask>,
    /// Per process: cumulative coin-toss count at the end of the round.
    pub end_tosses: Vec<u64>,
    /// Per process: cumulative interaction-history length at the end of
    /// the round.
    pub end_history_len: Vec<usize>,
    /// Per process: cumulative shared-memory step count at the end of the
    /// round.
    pub end_shared_steps: Vec<u64>,
}

impl RoundRecord {
    /// `true` iff nothing at all happened this round (no tosses, no
    /// operations, no terminations) — the "empty rounds" that follow once
    /// every process has terminated.
    pub fn is_empty_round(&self) -> bool {
        self.ops.is_empty()
            && self.terminated_in_phase1.is_empty()
            && self.phase1_tosses.values().all(|&t| t == 0)
    }
}

/// Executes one five-phase round over `exec` for the given participants.
///
/// Phases (exactly Figure 2 / Figure 3):
///
/// 1. each participant, in id order, performs coin tosses until it
///    terminates or its next step is a shared-memory operation;
/// 2. the LL/validate group acts, in id order;
/// 3. the move group acts, ordered per `move_order`;
/// 4. the swap group acts, in id order;
/// 5. the SC group acts, in id order.
///
/// Already-terminated (or crashed) participants are skipped — their
/// rounds are empty, which is exactly the paper's "delayed forever"
/// adversary move.
///
/// # Errors
///
/// Propagates the first [`RunError`] the executor reports (a diverging
/// Phase-1 burst or an exhausted event budget).
///
/// # Panics
///
/// Panics if `move_order` is [`MoveOrder::Given`] and some mover of this
/// round does not appear in the given schedule (Claim A.3 guarantees this
/// cannot happen for the `(S, A)`-run construction).
pub fn execute_round(
    exec: &mut Executor,
    round: usize,
    participants: &[ProcessId],
    move_order: MoveOrder<'_>,
) -> Result<RoundRecord, RunError> {
    execute_round_with(exec, round, participants, move_order, true)
}

/// [`execute_round`] with control over end-of-round register snapshots.
///
/// Snapshots power the indistinguishability checker but can dominate
/// memory for value-heavy algorithms over many rounds; large measurement
/// sweeps disable them.
pub fn execute_round_with(
    exec: &mut Executor,
    round: usize,
    participants: &[ProcessId],
    move_order: MoveOrder<'_>,
    snapshots: bool,
) -> Result<RoundRecord, RunError> {
    let n = exec.n();
    let mut phase1_tosses = BTreeMap::new();
    let mut terminated_in_phase1 = Vec::new();

    // Phase 1: local steps, in id order.
    let mut ordered: Vec<ProcessId> = participants.to_vec();
    ordered.sort_unstable();
    for &p in &ordered {
        if !exec.is_runnable(p) {
            continue;
        }
        let tosses = exec.advance_local(p)?;
        phase1_tosses.insert(p, tosses);
        if exec.is_terminated(p) {
            terminated_in_phase1.push(p);
        }
    }

    // Partition survivors by the kind of their pending operation.
    let mut groups = RoundGroups::default();
    let mut move_config = MoveConfig::new();
    for &p in &ordered {
        if !exec.is_runnable(p) {
            continue;
        }
        let Some(op) = exec.pending_op(p) else {
            continue;
        };
        match op.kind() {
            OpKind::Ll | OpKind::Validate => groups.g1_ll_validate.push(p),
            OpKind::Move => {
                groups.g2_move.push(p);
                if let Operation::Move { src, dst } = *op {
                    move_config.insert(p, src, dst);
                }
            }
            OpKind::Swap => groups.g3_swap.push(p),
            OpKind::Sc => groups.g4_sc.push(p),
        }
    }

    // Phase 3 ordering.
    let sigma: Vec<ProcessId> = match move_order {
        MoveOrder::Secretive => secretive::secretive_complete_schedule(&move_config),
        MoveOrder::Given(outer) => {
            let keep: ProcMask = groups.g2_move.iter().copied().collect();
            let restricted = secretive::restrict(outer, &keep);
            assert!(
                restricted.len() == groups.g2_move.len(),
                "round {round}: mover(s) {:?} missing from the given σ_r (Claim A.3 violated)",
                groups
                    .g2_move
                    .iter()
                    .filter(|p| !outer.contains(p))
                    .collect::<Vec<_>>()
            );
            restricted
        }
    };

    let mut ops = Vec::new();
    let mut successful_sc = BTreeMap::new();
    let mut swaps: BTreeMap<RegisterId, Vec<ProcessId>> = BTreeMap::new();
    let mut moves_into: BTreeMap<RegisterId, Vec<ProcessId>> = BTreeMap::new();

    // Phases 2-5.
    let plan: Vec<ProcessId> = groups
        .g1_ll_validate
        .iter()
        .chain(sigma.iter())
        .chain(groups.g3_swap.iter())
        .chain(groups.g4_sc.iter())
        .copied()
        .collect();
    for p in plan {
        let (op, resp) = exec.perform_shared(p)?;
        let mut sc_ok = None;
        match (&op, &resp) {
            (Operation::Sc(r, _), Response::Flagged { ok, .. }) => {
                sc_ok = Some(*ok);
                if *ok {
                    let prev = successful_sc.insert(*r, p);
                    debug_assert!(prev.is_none(), "two successful SCs on {r} in round {round}");
                }
            }
            (Operation::Swap(r, _), _) => swaps.entry(*r).or_default().push(p),
            (Operation::Move { dst, .. }, _) => moves_into.entry(*dst).or_default().push(p),
            _ => {}
        }
        ops.push(OpSummary {
            p,
            kind: op.kind(),
            register: op.target(),
            sc_ok,
        });
    }

    // End-of-round snapshots.
    let (end_values, end_psets) = if snapshots {
        (
            exec.memory().snapshot_values(),
            exec.memory().snapshot_psets(),
        )
    } else {
        (BTreeMap::new(), BTreeMap::new())
    };
    let end_tosses = ProcessId::all(n).map(|p| exec.run().tosses(p)).collect();
    let end_history_len = ProcessId::all(n)
        .map(|p| exec.run().history(p).len())
        .collect();
    let end_shared_steps = ProcessId::all(n)
        .map(|p| exec.run().shared_steps(p))
        .collect();

    Ok(RoundRecord {
        round,
        participants: ordered,
        phase1_tosses,
        terminated_in_phase1,
        groups,
        move_config,
        sigma,
        ops,
        successful_sc,
        swaps,
        moves_into,
        end_values,
        end_psets,
        end_tosses,
        end_history_len,
        end_shared_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, mv, sc, swap, validate};
    use llsc_shmem::{Algorithm, ExecutorConfig, FnAlgorithm, Program, Value, ZeroTosses};
    use std::sync::Arc;

    fn exec_for(alg: &dyn Algorithm, n: usize) -> Executor {
        Executor::new(alg, n, Arc::new(ZeroTosses), ExecutorConfig::default())
    }

    fn all_pids(n: usize) -> Vec<ProcessId> {
        ProcessId::all(n).collect()
    }

    /// Four processes, one of each op kind, all targeting distinct
    /// registers.
    fn mixed_alg() -> impl Algorithm {
        FnAlgorithm::new("mixed", |pid: ProcessId, _n| {
            let prog: Box<dyn Program> = match pid.0 {
                0 => ll(RegisterId(0), |_| done(Value::from(0i64))).into_program(),
                1 => mv(RegisterId(1), RegisterId(2), || done(Value::from(0i64))).into_program(),
                2 => swap(RegisterId(3), Value::from(1i64), |_| {
                    done(Value::from(0i64))
                })
                .into_program(),
                _ => ll(RegisterId(4), |_| {
                    sc(RegisterId(4), Value::from(9i64), |_, _| {
                        done(Value::from(0i64))
                    })
                })
                .into_program(),
            };
            prog
        })
    }

    #[test]
    fn groups_partition_by_kind() {
        let alg = mixed_alg();
        let mut e = exec_for(&alg, 4);
        let rec = execute_round(&mut e, 1, &all_pids(4), MoveOrder::Secretive).unwrap();
        assert_eq!(rec.groups.g1_ll_validate, vec![ProcessId(0), ProcessId(3)]);
        assert_eq!(rec.groups.g2_move, vec![ProcessId(1)]);
        assert_eq!(rec.groups.g3_swap, vec![ProcessId(2)]);
        assert!(rec.groups.g4_sc.is_empty(), "p3's SC comes next round");
        assert_eq!(rec.ops.len(), 4);
    }

    #[test]
    fn phases_execute_in_order_ll_move_swap_sc() {
        let alg = mixed_alg();
        let mut e = exec_for(&alg, 4);
        // Round 1: LLs (p0, p3), move (p1), swap (p2).
        let r1 = execute_round(&mut e, 1, &all_pids(4), MoveOrder::Secretive).unwrap();
        let kinds: Vec<OpKind> = r1.ops.iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![OpKind::Ll, OpKind::Ll, OpKind::Move, OpKind::Swap]
        );
        // Round 2: p3's SC.
        let r2 = execute_round(&mut e, 2, &all_pids(4), MoveOrder::Secretive).unwrap();
        let kinds2: Vec<OpKind> = r2.ops.iter().map(|o| o.kind).collect();
        assert_eq!(kinds2, vec![OpKind::Sc]);
        assert_eq!(r2.successful_sc.get(&RegisterId(4)), Some(&ProcessId(3)));
    }

    #[test]
    fn sc_contention_one_winner_per_register_per_round() {
        // All processes LL R0 in round 1, then all SC R0 in round 2; only
        // the lowest-id process succeeds.
        let alg = FnAlgorithm::new("contend", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        });
        let mut e = exec_for(&alg, 5);
        execute_round(&mut e, 1, &all_pids(5), MoveOrder::Secretive).unwrap();
        let r2 = execute_round(&mut e, 2, &all_pids(5), MoveOrder::Secretive).unwrap();
        assert_eq!(r2.successful_sc.get(&RegisterId(0)), Some(&ProcessId(0)));
        assert_eq!(e.memory().peek(RegisterId(0)), Value::from(0i64));
        for p in ProcessId::all(5) {
            assert_eq!(
                e.verdict(p),
                Some(&Value::from(p == ProcessId(0))),
                "{p} verdict"
            );
        }
    }

    #[test]
    fn swap_order_is_by_id_and_recorded() {
        let alg = FnAlgorithm::new("swappers", |pid: ProcessId, _n| {
            swap(RegisterId(0), Value::from(pid.0 as i64), |_| {
                done(Value::from(0i64))
            })
            .into_program()
        });
        let mut e = exec_for(&alg, 3);
        let rec = execute_round(&mut e, 1, &all_pids(3), MoveOrder::Secretive).unwrap();
        assert_eq!(
            rec.swaps.get(&RegisterId(0)),
            Some(&vec![ProcessId(0), ProcessId(1), ProcessId(2)])
        );
        // Last swapper's value survives.
        assert_eq!(e.memory().peek(RegisterId(0)), Value::from(2i64));
    }

    #[test]
    fn move_group_uses_secretive_schedule() {
        // The chain example: p_i: move(R_i, R_{i+1}), all in one round.
        let alg = FnAlgorithm::new("chain", |pid: ProcessId, _n| {
            mv(
                RegisterId(pid.0 as u64),
                RegisterId(pid.0 as u64 + 1),
                || done(Value::from(0i64)),
            )
            .into_program()
        })
        .with_initial_memory(vec![(RegisterId(0), Value::from(100i64))]);
        let mut e = exec_for(&alg, 6);
        let rec = execute_round(&mut e, 1, &all_pids(6), MoveOrder::Secretive).unwrap();
        assert!(crate::secretive::is_secretive(&rec.sigma, &rec.move_config));
        // Every register's movers (this round) ≤ 2.
        for r in rec.move_config.destinations() {
            let m = crate::secretive::movers(r, &rec.sigma, &rec.move_config);
            assert!(m.len() <= 2, "{r} movers {m:?}");
        }
    }

    #[test]
    fn given_move_order_is_respected() {
        let alg = FnAlgorithm::new("movers", |pid: ProcessId, _n| {
            mv(RegisterId(10 + pid.0 as u64), RegisterId(0), || {
                done(Value::from(0i64))
            })
            .into_program()
        })
        .with_initial_memory(vec![
            (RegisterId(10), Value::from(10i64)),
            (RegisterId(11), Value::from(11i64)),
            (RegisterId(12), Value::from(12i64)),
        ]);
        // With order p2, p0, p1 the last mover into R0 is p1.
        let order = vec![ProcessId(2), ProcessId(0), ProcessId(1)];
        let mut e = exec_for(&alg, 3);
        let rec = execute_round(&mut e, 1, &all_pids(3), MoveOrder::Given(&order)).unwrap();
        assert_eq!(rec.sigma, order);
        assert_eq!(e.memory().peek(RegisterId(0)), Value::from(11i64));
    }

    #[test]
    #[should_panic(expected = "Claim A.3 violated")]
    fn given_order_missing_mover_panics() {
        let alg = FnAlgorithm::new("movers", |pid: ProcessId, _n| {
            mv(RegisterId(10 + pid.0 as u64), RegisterId(0), || {
                done(Value::from(0i64))
            })
            .into_program()
        });
        let order = vec![ProcessId(0)]; // p1 missing
        let mut e = exec_for(&alg, 2);
        execute_round(&mut e, 1, &all_pids(2), MoveOrder::Given(&order)).unwrap();
    }

    #[test]
    fn validate_goes_to_group_one() {
        let alg = FnAlgorithm::new("v", |_pid, _n| {
            validate(RegisterId(0), |_, _| done(Value::from(0i64))).into_program()
        });
        let mut e = exec_for(&alg, 2);
        let rec = execute_round(&mut e, 1, &all_pids(2), MoveOrder::Secretive).unwrap();
        assert_eq!(rec.groups.g1_ll_validate.len(), 2);
    }

    #[test]
    fn terminated_participants_yield_empty_rounds() {
        let alg = FnAlgorithm::new("instant", |_pid, _n| done(Value::from(0i64)).into_program());
        let mut e = exec_for(&alg, 3);
        let r1 = execute_round(&mut e, 1, &all_pids(3), MoveOrder::Secretive).unwrap();
        assert_eq!(r1.terminated_in_phase1.len(), 3);
        let r2 = execute_round(&mut e, 2, &all_pids(3), MoveOrder::Secretive).unwrap();
        assert!(r2.is_empty_round());
    }

    #[test]
    fn snapshots_capture_end_of_round_state() {
        let alg = mixed_alg();
        let mut e = exec_for(&alg, 4);
        let rec = execute_round(&mut e, 1, &all_pids(4), MoveOrder::Secretive).unwrap();
        // p2 swapped 1 into R3.
        assert_eq!(rec.end_values.get(&RegisterId(3)), Some(&Value::from(1i64)));
        // p0 holds a link on R0 from its LL.
        assert_eq!(
            rec.end_psets.get(&RegisterId(0)),
            Some(&ProcMask::from([ProcessId(0)]))
        );
        assert_eq!(rec.end_shared_steps, vec![1, 1, 1, 1]);
    }

    #[test]
    fn subset_participants_only_those_act() {
        let alg = mixed_alg();
        let mut e = exec_for(&alg, 4);
        let rec = execute_round(
            &mut e,
            1,
            &[ProcessId(0), ProcessId(2)],
            MoveOrder::Secretive,
        )
        .unwrap();
        let actors: Vec<_> = rec.ops.iter().map(|o| o.p).collect();
        assert_eq!(actors, vec![ProcessId(0), ProcessId(2)]);
        assert_eq!(e.run().shared_steps(ProcessId(1)), 0);
    }
}
