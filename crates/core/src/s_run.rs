//! Construction of the `(S, A)`-run (Figure 3).
//!
//! Given the `(All, A)`-run of an algorithm and a set `S` of processes, the
//! `(S, A)`-run replays the same algorithm, from the same initial
//! configuration, with the same toss assignment, but in each round `r` only
//! the processes that had not "witnessed" anyone outside `S` by the end of
//! round `r - 1` of the `(All, A)`-run take steps — i.e.
//! `S_r = { p | UP(p, r - 1) ⊆ S }`. The move group of round `r` is ordered
//! exactly as the `(All, A)`-run's secretive schedule `σ_r` (restricted to
//! the participants; Claim A.3 guarantees this is well defined).
//!
//! The Indistinguishability Lemma (Lemma 5.2) asserts that every process
//! and register whose `UP` stays inside `S` cannot tell the two runs apart;
//! [`crate::check_indistinguishability`] verifies that mechanically.

use crate::all_run::{AdversaryConfig, AllRun, RoundedRun};
use crate::rounds::{execute_round_with, MoveOrder};
use crate::upsets::ProcSet;
use llsc_shmem::{Algorithm, Executor, ProcessId, TossAssignment};
use std::sync::Arc;

/// The `(S, A)`-run of an algorithm, built by [`build_s_run`].
#[derive(Clone, Debug)]
pub struct SRun {
    /// The rounds, events, and snapshots.
    pub base: RoundedRun,
    /// The set `S` this run was built for.
    pub s: ProcSet,
    /// `S_r` for each executed round `r` (index 0 holds `S_1`).
    pub participants_per_round: Vec<Vec<ProcessId>>,
}

/// Builds the `(S, A)`-run corresponding to `all` for the process set `s`.
///
/// `alg`, `n`, and `toss` must be the same algorithm, process count, and
/// toss assignment that produced `all` — the construction replays them from
/// scratch. As many rounds are executed as the `(All, A)`-run had (further
/// rounds would be empty for terminating algorithms); construction stops
/// early once every eligible participant has terminated.
///
/// # Examples
///
/// ```
/// use llsc_core::{build_all_run, build_s_run, AdversaryConfig};
/// use llsc_shmem::dsl::{done, ll};
/// use llsc_shmem::{FnAlgorithm, ProcessId, RegisterId, Value, ZeroTosses};
/// use std::sync::Arc;
///
/// let alg = FnAlgorithm::new("one-ll", |_p, _n| {
///     ll(RegisterId(0), |_| done(Value::from(0i64))).into_program()
/// });
/// let cfg = AdversaryConfig::default();
/// let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
/// let s = [ProcessId(0), ProcessId(1)].into_iter().collect();
/// let srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
/// // Only p0 and p1 step in the (S, A)-run.
/// assert_eq!(srun.base.run.shared_steps(ProcessId(0)), 1);
/// assert_eq!(srun.base.run.shared_steps(ProcessId(2)), 0);
/// ```
pub fn build_s_run(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    s: &ProcSet,
    all: &AllRun,
    cfg: &AdversaryConfig,
) -> Result<SRun, llsc_shmem::RunError> {
    let mut exec = Executor::new(alg, n, toss, cfg.executor);
    build_s_run_with(&mut exec, alg, s, all, cfg)
}

/// The scratch-reusing core of [`build_s_run`]: replays the construction
/// on `exec`, which is [`Executor::reset`] first and left reusable (with
/// an empty run, via [`Executor::take_run`]) afterwards.
///
/// This is the per-trial entry point of the exhaustive subset sweeps
/// ([`crate::indist_all_subsets`]): one executor per *worker* is reset
/// between the `2^n` trials instead of constructed per trial, and the
/// `(S, A)`-run shares the `(All, A)`-run's initial-memory map instead of
/// rebuilding it. `exec` must have been built for the same algorithm,
/// process count, toss assignment, and executor config that produced
/// `all` — reset restores exactly that initial state, so the result is
/// byte-identical to [`build_s_run`]'s.
pub fn build_s_run_with(
    exec: &mut Executor,
    alg: &dyn Algorithm,
    s: &ProcSet,
    all: &AllRun,
    cfg: &AdversaryConfig,
) -> Result<SRun, llsc_shmem::RunError> {
    let n = exec.n();
    assert_eq!(n, all.n(), "process count must match the (All, A)-run");
    assert!(
        all.up.has_full_history(),
        "(S, A)-run construction needs an (All, A)-run built with track_up_history = true"
    );
    exec.reset(alg);
    let mut rounds = Vec::new();
    let mut participants_per_round = Vec::new();

    for r in 1..=all.base.num_rounds() {
        // S_r = { p | UP(p, r-1) ⊆ S }, computed from the (All, A)-run's
        // UP history. UP sets only grow, so S_r shrinks over rounds.
        let s_r: Vec<ProcessId> = ProcessId::all(n)
            .filter(|&p| all.up.proc(p, r - 1).is_subset(s))
            .collect();
        // Early exit: every eligible process has terminated, and
        // eligibility only shrinks, so all remaining rounds are empty.
        if s_r.iter().all(|&p| exec.is_terminated(p)) {
            break;
        }
        let sigma_r = &all.base.rounds[r - 1].sigma;
        let rec = execute_round_with(
            exec,
            r,
            &s_r,
            MoveOrder::Given(sigma_r),
            cfg.record_snapshots,
        )?;
        participants_per_round.push(s_r);
        rounds.push(rec);
    }

    let completed = participants_per_round
        .last()
        .map(|ps| ps.iter().all(|&p| exec.is_terminated(p)))
        .unwrap_or(true);
    let outcome = exec.run_outcome();
    Ok(SRun {
        base: RoundedRun {
            n,
            rounds,
            run: exec.take_run(),
            initial_memory: Arc::clone(&all.base.initial_memory),
            completed,
            outcome,
        },
        s: s.clone(),
        participants_per_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_run::build_all_run;
    use llsc_shmem::dsl::{done, ll, mv, sc};
    use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};

    fn pset<const N: usize>(ids: [usize; N]) -> ProcSet {
        ids.into_iter().map(ProcessId).collect()
    }

    fn llsc_alg() -> impl Algorithm {
        FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |ok, _| {
                    done(Value::from(ok))
                })
            })
            .into_program()
        })
    }

    #[test]
    fn only_s_members_step_in_round_one() {
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 5, Arc::new(ZeroTosses), &cfg).unwrap();
        let s = pset([1, 3]);
        let srun = build_s_run(&alg, 5, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        assert_eq!(
            srun.participants_per_round[0],
            vec![ProcessId(1), ProcessId(3)]
        );
        for p in [ProcessId(0), ProcessId(2), ProcessId(4)] {
            assert_eq!(srun.base.run.shared_steps(p), 0, "{p} must not step");
        }
    }

    #[test]
    fn participants_shrink_as_up_grows() {
        // With the LL/SC algorithm, in round 2 losers of the SC learn about
        // the winner (p0). For S excluding p0, those losers drop out of
        // S_3... but the algorithm terminates in 2 rounds anyway, so check
        // the S_r sets directly.
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        let s = pset([1, 2, 3]);
        let srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        // Round 1: UP(p,0) = {p}: p1..p3 participate.
        assert_eq!(
            srun.participants_per_round[0],
            vec![ProcessId(1), ProcessId(2), ProcessId(3)]
        );
        // Round 2: UP(p,1) = {p} still (LL of a fresh register reveals
        // nothing): same participants.
        assert_eq!(
            srun.participants_per_round[1],
            vec![ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn s_run_winner_differs_from_all_run() {
        // In the (All, A)-run p0's SC wins. In the (S, A)-run without p0,
        // p1's SC wins instead — the runs differ for processes whose UP
        // escapes S, exactly as the construction intends.
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        assert_eq!(
            all.base.rounds[1].successful_sc.get(&RegisterId(0)),
            Some(&ProcessId(0))
        );
        let s = pset([1, 2, 3]);
        let srun = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        assert_eq!(
            srun.base.rounds[1].successful_sc.get(&RegisterId(0)),
            Some(&ProcessId(1))
        );
    }

    #[test]
    fn full_s_equals_all_run() {
        // With S = all processes, the (S, A)-run replays the (All, A)-run
        // exactly.
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 6, Arc::new(ZeroTosses), &cfg).unwrap();
        let s: ProcSet = ProcessId::all(6).collect();
        let srun = build_s_run(&alg, 6, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        assert_eq!(all.base.run.events(), srun.base.run.events());
    }

    #[test]
    fn moves_replay_in_sigma_order() {
        // Chain moves: p_i: move(R_i, R_{i+1}) then terminate. The S-run
        // must order its movers as the All-run's σ_1 did.
        let alg = FnAlgorithm::new("chain", |pid: ProcessId, _n| {
            mv(
                RegisterId(pid.0 as u64),
                RegisterId(pid.0 as u64 + 1),
                || done(Value::from(0i64)),
            )
            .into_program()
        });
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 6, Arc::new(ZeroTosses), &cfg).unwrap();
        let s = pset([0, 1, 2, 3, 4, 5]);
        let srun = build_s_run(&alg, 6, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
        assert_eq!(srun.base.rounds[0].sigma, all.base.rounds[0].sigma);

        // A strict subset also preserves relative σ order.
        let s2 = pset([0, 2, 4]);
        let srun2 = build_s_run(&alg, 6, Arc::new(ZeroTosses), &s2, &all, &cfg).unwrap();
        let expect: Vec<ProcessId> = all.base.rounds[0]
            .sigma
            .iter()
            .copied()
            .filter(|p| s2.contains(*p))
            .collect();
        assert_eq!(srun2.base.rounds[0].sigma, expect);
    }

    #[test]
    fn reused_executor_builds_identical_s_runs() {
        // One executor reset across every subset of a 4-process system
        // must reproduce the fresh-executor construction exactly — the
        // invariant the 2^n subset sweeps rely on.
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 4, Arc::new(ZeroTosses), &cfg).unwrap();
        let mut exec = Executor::new(&alg, 4, Arc::new(ZeroTosses), cfg.executor);
        for mask in 0..16usize {
            let s: ProcSet = (0..4)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let fresh = build_s_run(&alg, 4, Arc::new(ZeroTosses), &s, &all, &cfg).unwrap();
            let reused = build_s_run_with(&mut exec, &alg, &s, &all, &cfg).unwrap();
            assert_eq!(
                fresh.base.run.events(),
                reused.base.run.events(),
                "mask={mask}"
            );
            assert_eq!(
                fresh.participants_per_round, reused.participants_per_round,
                "mask={mask}"
            );
            assert_eq!(fresh.base.completed, reused.base.completed, "mask={mask}");
            assert!(
                Arc::ptr_eq(&reused.base.initial_memory, &all.base.initial_memory),
                "the S-run shares the All-run's initial memory"
            );
        }
    }

    #[test]
    fn empty_s_produces_empty_run() {
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 3, Arc::new(ZeroTosses), &cfg).unwrap();
        let srun = build_s_run(&alg, 3, Arc::new(ZeroTosses), &ProcSet::new(), &all, &cfg).unwrap();
        assert!(srun.base.run.events().is_empty());
        assert!(srun.base.completed);
    }

    #[test]
    #[should_panic(expected = "process count must match")]
    fn mismatched_n_panics() {
        let alg = llsc_alg();
        let cfg = AdversaryConfig::default();
        let all = build_all_run(&alg, 3, Arc::new(ZeroTosses), &cfg).unwrap();
        build_s_run(&alg, 4, Arc::new(ZeroTosses), &ProcSet::new(), &all, &cfg).unwrap();
    }
}
