//! Section 4: limiting the influence of `move` — secretive complete
//! schedules.
//!
//! A set of pending `move` operations, one per process, is described by a
//! [`MoveConfig`] — the paper's pair `(S, f)`. Scheduling those moves in the
//! wrong order can aggregate information: the paper opens with the chain
//! `p_i: move(R_i, R_{i+1})`, where scheduling `p_0, ..., p_{n-1}` in id
//! order copies `R_0`'s value all the way to `R_n`, so a later reader of
//! `R_n` learns that *all* `n` processes took steps.
//!
//! A *secretive* complete schedule prevents this: after executing it, every
//! register's final value was put there by at most **two** of the moving
//! processes ([`movers`]), so a reader of any single register learns about
//! at most two movers. [`secretive_complete_schedule`] implements the
//! two-stage construction of Figure 1 (Lemma 4.1), and [`restrict`]/
//! [`source`] support the restriction property of Lemma 4.2 that the
//! `(S, A)`-run construction relies on.

use llsc_shmem::rng::XorShift64;
use llsc_shmem::{ProcMask, ProcessId, RegisterId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The paper's `(S, f)`: the set of processes with a pending `move`, and
/// each process's exact operation `f(p) = (R_src, R_dst)`.
///
/// # Examples
///
/// ```
/// use llsc_core::MoveConfig;
/// use llsc_shmem::{ProcessId, RegisterId};
///
/// // The paper's Section-4 chain: p_i moves R_i into R_{i+1}.
/// let cfg = MoveConfig::from_iter(
///     (0..4).map(|i| (ProcessId(i), RegisterId(i as u64), RegisterId(i as u64 + 1))),
/// );
/// assert_eq!(cfg.len(), 4);
/// assert_eq!(cfg.get(ProcessId(2)), Some((RegisterId(2), RegisterId(3))));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MoveConfig {
    moves: BTreeMap<ProcessId, (RegisterId, RegisterId)>,
}

impl MoveConfig {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        MoveConfig::default()
    }

    /// Records that `p`'s pending operation is `move(src, dst)`,
    /// replacing any previous entry for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`. Self-moves are excluded from the model: with
    /// them, Lemma 4.1 is false — three processes self-moving the same
    /// register produce a movers list of length 3 under *every* complete
    /// schedule, because each self-move appends to the register's own
    /// movers list without redirecting its source. The paper's
    /// `move(R_j, R_k)` is therefore read with `j ≠ k`.
    pub fn insert(&mut self, p: ProcessId, src: RegisterId, dst: RegisterId) {
        assert_ne!(
            src, dst,
            "{p}: self-move on {src} is outside the Section-4 model (see MoveConfig::insert docs)"
        );
        self.moves.insert(p, (src, dst));
    }

    /// `f(p)`, if `p ∈ S`.
    pub fn get(&self, p: ProcessId) -> Option<(RegisterId, RegisterId)> {
        self.moves.get(&p).copied()
    }

    /// `true` iff `p ∈ S`.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.moves.contains_key(&p)
    }

    /// The processes of `S`, in id order.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.moves.keys().copied()
    }

    /// `|S|`.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// `true` iff `S` is empty.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// All registers appearing as a destination of some move, in id order.
    pub fn destinations(&self) -> BTreeSet<RegisterId> {
        self.moves.values().map(|&(_, dst)| dst).collect()
    }
}

impl FromIterator<(ProcessId, RegisterId, RegisterId)> for MoveConfig {
    /// Creates a configuration from `(process, src, dst)` triples.
    ///
    /// # Panics
    ///
    /// Panics on self-moves, like [`MoveConfig::insert`].
    fn from_iter<I: IntoIterator<Item = (ProcessId, RegisterId, RegisterId)>>(iter: I) -> Self {
        let mut cfg = MoveConfig::new();
        for (p, src, dst) in iter {
            cfg.insert(p, src, dst);
        }
        cfg
    }
}

/// A random move configuration over `regs` registers (no self-moves),
/// drawn from the repository's deterministic [`XorShift64`] stream.
///
/// This is the generator behind the E1/E2 experiment tables and the
/// `llsc secretive --seed` demo; its output for a given `(n, regs, seed)`
/// is stable across releases (the committed tables depend on it).
///
/// # Panics
///
/// Panics if `regs < 2` (self-moves are outside the Section-4 model).
pub fn random_move_config(n: usize, regs: u64, seed: u64) -> MoveConfig {
    assert!(regs >= 2, "need at least 2 registers to avoid self-moves");
    let mut rng = XorShift64::new(seed);
    MoveConfig::from_iter((0..n).map(|i| {
        let src = rng.next_u64() % regs;
        let dst = (src + 1 + rng.next_u64() % (regs - 1)) % regs;
        (ProcessId(i), RegisterId(src), RegisterId(dst))
    }))
}

impl fmt::Display for MoveConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (p, (src, dst))) in self.moves.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}: move({src}, {dst})")?;
        }
        write!(f, "}}")
    }
}

/// The outcome of symbolically executing a schedule prefix: for each
/// destination register, where its current value originated and which moves
/// carried it there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct FlowState {
    /// `R -> (source(R, σ), movers(R, σ))`. Registers absent from the map
    /// have `source = themselves` and `movers = λ`.
    flows: BTreeMap<RegisterId, (RegisterId, Vec<ProcessId>)>,
}

impl FlowState {
    fn source_of(&self, r: RegisterId) -> RegisterId {
        self.flows.get(&r).map(|(s, _)| *s).unwrap_or(r)
    }

    fn movers_of(&self, r: RegisterId) -> &[ProcessId] {
        self.flows.get(&r).map(|(_, m)| m.as_slice()).unwrap_or(&[])
    }

    /// Applies one scheduled move `p: move(src, dst)` (the inductive case
    /// `σ = σ' · p` of the paper's definition).
    fn apply(&mut self, p: ProcessId, src: RegisterId, dst: RegisterId) {
        let new_source = self.source_of(src);
        let mut new_movers = self.movers_of(src).to_vec();
        new_movers.push(p);
        self.flows.insert(dst, (new_source, new_movers));
    }
}

fn flow_after(schedule: &[ProcessId], cfg: &MoveConfig) -> FlowState {
    let mut state = FlowState::default();
    for &p in schedule {
        let (src, dst) = cfg
            .get(p)
            .unwrap_or_else(|| panic!("{p} appears in schedule but not in the move config"));
        state.apply(p, src, dst);
    }
    state
}

/// The full flow outcome of a schedule: for every register that received
/// at least one move, its [`source`] and [`movers`] — computed in a single
/// pass over the schedule instead of one pass per query.
///
/// Registers absent from the map are their own source with no movers.
///
/// # Panics
///
/// Panics if `schedule` mentions a process absent from `cfg`.
///
/// # Examples
///
/// ```
/// use llsc_core::{flow_report, secretive_complete_schedule, MoveConfig};
/// use llsc_shmem::{ProcessId, RegisterId};
///
/// let cfg = MoveConfig::from_iter([(ProcessId(0), RegisterId(0), RegisterId(1))]);
/// let sigma = secretive_complete_schedule(&cfg);
/// let flows = flow_report(&sigma, &cfg);
/// assert_eq!(flows[&RegisterId(1)], (RegisterId(0), vec![ProcessId(0)]));
/// ```
pub fn flow_report(
    schedule: &[ProcessId],
    cfg: &MoveConfig,
) -> BTreeMap<RegisterId, (RegisterId, Vec<ProcessId>)> {
    flow_after(schedule, cfg).flows
}

/// `source(R, σ, (S, f))`: the register whose *original* value resides in
/// `R` after executing the schedule `σ`.
///
/// # Panics
///
/// Panics if `schedule` mentions a process absent from `cfg`.
pub fn source(r: RegisterId, schedule: &[ProcessId], cfg: &MoveConfig) -> RegisterId {
    flow_after(schedule, cfg).source_of(r)
}

/// `movers(R, σ, (S, f))`: the sequence of processes whose moves, in order,
/// carried [`source`]`(R, σ)`'s original value into `R`.
///
/// # Panics
///
/// Panics if `schedule` mentions a process absent from `cfg`.
pub fn movers(r: RegisterId, schedule: &[ProcessId], cfg: &MoveConfig) -> Vec<ProcessId> {
    flow_after(schedule, cfg).movers_of(r).to_vec()
}

/// `true` iff `schedule` is *complete* with respect to `cfg`: every process
/// of `S` appears exactly once and nothing else appears.
pub fn is_complete(schedule: &[ProcessId], cfg: &MoveConfig) -> bool {
    let mut seen = BTreeSet::new();
    for &p in schedule {
        if !cfg.contains(p) || !seen.insert(p) {
            return false;
        }
    }
    seen.len() == cfg.len()
}

/// `true` iff `schedule` is a *secretive* complete schedule: it is complete
/// and every register's movers list has at most two processes.
pub fn is_secretive(schedule: &[ProcessId], cfg: &MoveConfig) -> bool {
    if !is_complete(schedule, cfg) {
        return false;
    }
    let state = flow_after(schedule, cfg);
    // Only destination registers can have movers.
    cfg.destinations()
        .iter()
        .all(|&r| state.movers_of(r).len() <= 2)
}

/// `σ|A`: the subsequence of `schedule` containing exactly the processes in
/// `keep`.
pub fn restrict(schedule: &[ProcessId], keep: &ProcMask) -> Vec<ProcessId> {
    schedule
        .iter()
        .copied()
        .filter(|p| keep.contains(*p))
        .collect()
}

/// Constructs a secretive complete schedule for `cfg` — the algorithm of
/// Figure 1, made deterministic (Lemma 4.1).
///
/// **Stage 1.** While some unscheduled process `p` has a *fresh* source
/// register (no move has landed in it yet), schedule *all* unscheduled
/// processes whose destination equals `p`'s destination, with `p` last.
/// Ties are broken by process id (lowest-id `p` with a fresh source first;
/// the rest of its destination group in id order).
///
/// **Stage 2.** Schedule the remaining processes in id order.
///
/// The returned schedule always satisfies [`is_secretive`]; the unit and
/// property tests assert this over adversarial and random configurations.
///
/// # Examples
///
/// ```
/// use llsc_core::{secretive_complete_schedule, is_secretive, movers, MoveConfig};
/// use llsc_shmem::{ProcessId, RegisterId};
///
/// // The paper's chain example: a naive id-order schedule gives R_4 a
/// // movers list of length 4; the secretive schedule caps every register
/// // at two movers.
/// let cfg = MoveConfig::from_iter(
///     (0..4).map(|i| (ProcessId(i), RegisterId(i as u64), RegisterId(i as u64 + 1))),
/// );
/// let naive: Vec<_> = (0..4).map(ProcessId).collect();
/// assert_eq!(movers(RegisterId(4), &naive, &cfg).len(), 4);
///
/// let sigma = secretive_complete_schedule(&cfg);
/// assert!(is_secretive(&sigma, &cfg));
/// ```
pub fn secretive_complete_schedule(cfg: &MoveConfig) -> Vec<ProcessId> {
    let mut sigma: Vec<ProcessId> = Vec::with_capacity(cfg.len());
    let mut state = FlowState::default();
    let mut unscheduled: BTreeSet<ProcessId> = cfg.processes().collect();

    // Stage 1: while some unscheduled process has a fresh source register,
    // schedule its whole destination group (lowest-id such process first).
    while let Some(p) = unscheduled.iter().copied().find(|&q| {
        let (src, _) = cfg.get(q).expect("unscheduled ⊆ S");
        state.movers_of(src).is_empty()
    }) {
        let (_, dst) = cfg.get(p).expect("p ∈ S");
        // A: all unscheduled processes whose destination is p's destination,
        // ordered by id with p last.
        let mut group: Vec<ProcessId> = unscheduled
            .iter()
            .copied()
            .filter(|&q| q != p && cfg.get(q).expect("unscheduled ⊆ S").1 == dst)
            .collect();
        group.push(p);
        for q in group {
            let (src, dst) = cfg.get(q).expect("group ⊆ S");
            state.apply(q, src, dst);
            sigma.push(q);
            unscheduled.remove(&q);
        }
    }

    // Stage 2: remaining processes in id order.
    for p in unscheduled {
        let (src, dst) = cfg.get(p).expect("unscheduled ⊆ S");
        state.apply(p, src, dst);
        sigma.push(p);
    }

    debug_assert!(is_secretive(&sigma, cfg), "Lemma 4.1 violated for {cfg}");
    sigma
}

/// Checks the conclusion of Lemma 4.2 for one register: restricting a
/// secretive complete schedule `sigma` to any superset `keep` of
/// `movers(r, sigma)` preserves `source(r, ·)`.
///
/// Returns `true` iff `source(r, σ|keep) == source(r, σ)`.
pub fn restriction_preserves_source(
    r: RegisterId,
    sigma: &[ProcessId],
    cfg: &MoveConfig,
    keep: &ProcMask,
) -> bool {
    let restricted = restrict(sigma, keep);
    source(r, &restricted, cfg) == source(r, sigma, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }
    fn reg(i: u64) -> RegisterId {
        RegisterId(i)
    }

    /// The paper's worked example: `p_i` moves `R_i` into `R_{i+1}`.
    fn chain(n: usize) -> MoveConfig {
        MoveConfig::from_iter((0..n).map(|i| (p(i), reg(i as u64), reg(i as u64 + 1))))
    }

    #[test]
    fn empty_schedule_is_identity_flow() {
        let cfg = chain(3);
        assert_eq!(source(reg(2), &[], &cfg), reg(2));
        assert!(movers(reg(2), &[], &cfg).is_empty());
    }

    #[test]
    fn id_order_chain_aggregates_everything() {
        // The motivating bad schedule: R_n receives R_0's value via all n
        // movers.
        let n = 5;
        let cfg = chain(n);
        let naive: Vec<_> = (0..n).map(p).collect();
        assert_eq!(source(reg(n as u64), &naive, &cfg), reg(0));
        assert_eq!(movers(reg(n as u64), &naive, &cfg), naive);
    }

    #[test]
    fn even_odd_chain_schedule_matches_paper() {
        // The paper's alternative: even-id processes first, then odd.
        // R_i then holds R_{i-1}'s original value if i is odd, R_{i-2}'s if
        // i is even, and each register has at most two movers.
        let n = 6;
        let cfg = chain(n);
        let mut order: Vec<_> = (0..n).step_by(2).map(p).collect();
        order.extend((1..n).step_by(2).map(p));
        for i in 1..=n as u64 {
            let src = source(reg(i), &order, &cfg);
            let mv = movers(reg(i), &order, &cfg);
            if i % 2 == 1 {
                assert_eq!(src, reg(i - 1), "odd R{i}");
                assert_eq!(mv, vec![p((i - 1) as usize)]);
            } else {
                assert_eq!(src, reg(i - 2), "even R{i}");
                assert_eq!(mv, vec![p((i - 2) as usize), p((i - 1) as usize)]);
            }
        }
        assert!(is_secretive(&order, &cfg));
    }

    #[test]
    fn constructed_schedule_is_secretive_on_chain() {
        for n in [1, 2, 3, 7, 16, 64] {
            let cfg = chain(n);
            let sigma = secretive_complete_schedule(&cfg);
            assert!(is_complete(&sigma, &cfg), "n={n}");
            assert!(is_secretive(&sigma, &cfg), "n={n}");
        }
    }

    #[test]
    fn constructed_schedule_is_secretive_on_star() {
        // Everyone moves into the same register: only the last scheduled
        // process's value survives; exactly one mover.
        let cfg = MoveConfig::from_iter((0..8).map(|i| (p(i), reg(i as u64 + 10), reg(0))));
        let sigma = secretive_complete_schedule(&cfg);
        assert!(is_secretive(&sigma, &cfg));
        assert_eq!(movers(reg(0), &sigma, &cfg).len(), 1);
    }

    #[test]
    #[should_panic(expected = "self-move")]
    fn self_moves_are_rejected() {
        let _ = MoveConfig::from_iter([(p(0), reg(0), reg(0)), (p(1), reg(0), reg(1))]);
    }

    #[test]
    fn constructed_schedule_handles_two_cycles() {
        // p0: R0 -> R1, p1: R1 -> R0 (a swap cycle).
        let cfg = MoveConfig::from_iter([(p(0), reg(0), reg(1)), (p(1), reg(1), reg(0))]);
        let sigma = secretive_complete_schedule(&cfg);
        assert!(is_secretive(&sigma, &cfg));
        // Both registers end with exactly one mover: each move reads its
        // source before the other overwrote it only if scheduled that way;
        // either way the movers lists stay ≤ 2.
        for r in [reg(0), reg(1)] {
            assert!(!movers(r, &sigma, &cfg).is_empty());
        }
    }

    #[test]
    fn empty_config_yields_empty_schedule() {
        let cfg = MoveConfig::new();
        let sigma = secretive_complete_schedule(&cfg);
        assert!(sigma.is_empty());
        assert!(is_complete(&sigma, &cfg));
        assert!(is_secretive(&sigma, &cfg));
    }

    #[test]
    fn is_complete_rejects_duplicates_and_strangers() {
        let cfg = chain(2);
        assert!(!is_complete(&[p(0), p(0)], &cfg));
        assert!(!is_complete(&[p(0), p(7)], &cfg));
        assert!(!is_complete(&[p(0)], &cfg));
        assert!(is_complete(&[p(1), p(0)], &cfg));
    }

    #[test]
    fn restrict_keeps_order() {
        let sigma = vec![p(4), p(1), p(3), p(2)];
        let keep: ProcMask = [p(2), p(1)].into_iter().collect();
        assert_eq!(restrict(&sigma, &keep), vec![p(1), p(2)]);
    }

    #[test]
    fn lemma_4_2_on_chain() {
        // For every destination register of the secretive schedule,
        // restricting to exactly its movers preserves the source.
        let cfg = chain(8);
        let sigma = secretive_complete_schedule(&cfg);
        for i in 0..=8u64 {
            let keep: ProcMask = movers(reg(i), &sigma, &cfg).into_iter().collect();
            assert!(
                restriction_preserves_source(reg(i), &sigma, &cfg, &keep),
                "register R{i}"
            );
        }
    }

    #[test]
    fn lemma_4_2_with_supersets() {
        let cfg = chain(6);
        let sigma = secretive_complete_schedule(&cfg);
        for i in 0..=6u64 {
            let mut keep: ProcMask = movers(reg(i), &sigma, &cfg).into_iter().collect();
            // Any superset works too.
            keep.insert(p(0));
            keep.insert(p(5));
            assert!(restriction_preserves_source(reg(i), &sigma, &cfg, &keep));
        }
    }

    #[test]
    fn display_is_informative() {
        let cfg = chain(1);
        assert_eq!(cfg.to_string(), "{p0: move(R0, R1)}");
    }

    #[test]
    #[should_panic(expected = "not in the move config")]
    fn source_panics_on_unknown_process() {
        let cfg = chain(1);
        source(reg(0), &[p(9)], &cfg);
    }

    /// Deterministic pseudo-random configurations: every process picks a
    /// source and destination among `regs` registers.
    fn random_cfg(n: usize, regs: u64, seed: u64) -> MoveConfig {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        MoveConfig::from_iter((0..n).map(|i| {
            let src = reg(next() % regs);
            // Distinct destination: self-moves are outside the model.
            let dst = reg((src.0 + 1 + next() % (regs - 1)) % regs);
            (p(i), src, dst)
        }))
    }

    #[test]
    fn lemma_4_1_on_many_random_configs() {
        for seed in 0..50 {
            for (n, regs) in [(5, 3), (16, 4), (16, 40), (40, 8)] {
                let cfg = random_cfg(n, regs, seed * 31 + n as u64);
                let sigma = secretive_complete_schedule(&cfg);
                assert!(
                    is_secretive(&sigma, &cfg),
                    "seed={seed} n={n} regs={regs} cfg={cfg}"
                );
            }
        }
    }

    #[test]
    fn lemma_4_2_on_many_random_configs() {
        for seed in 0..20 {
            let cfg = random_cfg(12, 5, seed);
            let sigma = secretive_complete_schedule(&cfg);
            for r in cfg.destinations() {
                let keep: ProcMask = movers(r, &sigma, &cfg).into_iter().collect();
                assert!(
                    restriction_preserves_source(r, &sigma, &cfg, &keep),
                    "seed={seed} register={r} cfg={cfg}"
                );
            }
        }
    }
}
