//! Wakeup stress testing beyond the Figure-2 adversary.
//!
//! The paper's adversary is engineered for the *lower bound* — its
//! round-synchronous structure keeps every process in lockstep, which
//! means it never exhibits the partial-participation runs that condition 3
//! of the wakeup specification is really about (in an `(All, A)`-run,
//! everyone has stepped by the end of round 1). A "wakeup algorithm" that
//! declares victory after seeing only half the processes sails through the
//! adversary (see `llsc-wakeup`'s half-count strawman).
//!
//! [`stress_wakeup`] closes that gap: it drives the algorithm under a
//! portfolio of *partial* and *skewed* schedules — every contiguous and
//! random subset of processes, sequential runs, random interleavings — and
//! checks the wakeup specification on each resulting run (including
//! non-terminating prefixes, where condition 3 still applies).

use crate::wakeup::{check_wakeup, WakeupViolation};
use llsc_shmem::{
    Algorithm, Executor, ExecutorConfig, PartitionScheduler, ProcessId, RandomScheduler, RunError,
    Scheduler, SequentialScheduler, Sweep, TossAssignment,
};
use std::fmt;
use std::sync::Arc;

/// One schedule of the stress portfolio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StressSchedule {
    /// Only the given subset runs (round-robin among them), forever.
    Partition(Vec<ProcessId>),
    /// Everyone runs, one process at a time to completion.
    Sequential,
    /// Everyone runs under a seeded random interleaving.
    Random(u64),
}

impl fmt::Display for StressSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StressSchedule::Partition(ps) => {
                write!(f, "partition[")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]")
            }
            StressSchedule::Sequential => write!(f, "sequential"),
            StressSchedule::Random(seed) => write!(f, "random({seed})"),
        }
    }
}

/// One failed stress case.
#[derive(Clone, Debug)]
pub struct StressFailure {
    /// The schedule that exposed the failure.
    pub schedule: StressSchedule,
    /// The violations the run exhibited.
    pub violations: Vec<WakeupViolation>,
}

/// The outcome of a stress sweep.
#[derive(Clone, Debug, Default)]
pub struct StressReport {
    /// Schedules tried.
    pub schedules_tried: usize,
    /// Schedules on which every check passed.
    pub passed: usize,
    /// The failures, with their witnesses.
    pub failures: Vec<StressFailure>,
}

impl StressReport {
    /// `true` iff every schedule passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for StressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wakeup stress: {}/{} schedules passed",
            self.passed, self.schedules_tried
        )?;
        for fail in &self.failures {
            write!(f, "; FAILED under {}", fail.schedule)?;
        }
        Ok(())
    }
}

/// The default stress portfolio for `n` processes: every prefix subset
/// `{p_0..p_k}`, a handful of stride subsets, the sequential schedule, and
/// `random_seeds` random interleavings.
pub fn standard_portfolio(n: usize, random_seeds: u64) -> Vec<StressSchedule> {
    let mut schedules = Vec::new();
    for k in 1..n {
        schedules.push(StressSchedule::Partition((0..k).map(ProcessId).collect()));
    }
    // Odd processes only; every third process.
    for stride in [2usize, 3] {
        let subset: Vec<ProcessId> = (0..n).step_by(stride).map(ProcessId).collect();
        if subset.len() < n && !subset.is_empty() {
            schedules.push(StressSchedule::Partition(subset));
        }
    }
    schedules.push(StressSchedule::Sequential);
    for seed in 0..random_seeds {
        schedules.push(StressSchedule::Random(seed));
    }
    schedules
}

/// Runs `alg` under every schedule of the portfolio and checks the wakeup
/// specification on each resulting run (complete or truncated).
///
/// Partition schedules usually leave the run non-terminating (the excluded
/// processes never step); condition 3 is still checked on the prefix —
/// which is exactly how partial-participation bugs are caught.
///
/// # Errors
///
/// Propagates the first [`RunError`] any schedule's executor reports
/// (event budget, divergent local burst). A schedule that merely runs out
/// of `max_steps` is *not* an error — its prefix is still checked.
pub fn stress_wakeup(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    portfolio: &[StressSchedule],
    max_steps: u64,
) -> Result<StressReport, RunError> {
    stress_wakeup_sweep(alg, n, toss, portfolio, max_steps, &Sweep::sequential())
}

/// [`stress_wakeup`], fanning the portfolio's schedules out over the given
/// [`Sweep`]. Each schedule drives its own executor, and failures are
/// merged in portfolio order, so the report is identical at any thread
/// count.
pub fn stress_wakeup_sweep(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    portfolio: &[StressSchedule],
    max_steps: u64,
    sweep: &Sweep,
) -> Result<StressReport, RunError> {
    let outcomes = sweep.run(portfolio, |_trial, schedule| {
        let mut exec = Executor::new(alg, n, toss.clone(), ExecutorConfig::default());
        let mut sched: Box<dyn Scheduler> = match schedule {
            StressSchedule::Partition(ps) => Box::new(PartitionScheduler::new(ps.clone())),
            StressSchedule::Sequential => Box::new(SequentialScheduler::new()),
            StressSchedule::Random(seed) => Box::new(RandomScheduler::new(*seed)),
        };
        exec.drive(sched.as_mut(), max_steps)?;
        let check = check_wakeup(exec.run());
        // For non-terminating prefixes only conditions 1 and 3 apply;
        // check_wakeup already restricts NoWinner to terminating runs.
        if check.ok() {
            Ok(None)
        } else {
            Ok(Some(StressFailure {
                schedule: schedule.clone(),
                violations: check.violations,
            }))
        }
    });

    let mut report = StressReport {
        schedules_tried: outcomes.len(),
        ..StressReport::default()
    };
    for outcome in outcomes {
        match outcome? {
            None => report.passed += 1,
            Some(failure) => report.failures.push(failure),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::ZeroTosses;

    // The stress harness is exercised against the shipped algorithms in
    // the `llsc-wakeup` crate and the workspace integration tests (this
    // crate cannot depend on `llsc-wakeup`). Here: portfolio shape and a
    // minimal inline algorithm.

    #[test]
    fn portfolio_covers_prefixes_strides_and_randoms() {
        let portfolio = standard_portfolio(6, 3);
        let partitions = portfolio
            .iter()
            .filter(|s| matches!(s, StressSchedule::Partition(_)))
            .count();
        assert_eq!(partitions, 5 + 2, "5 prefixes + 2 strides");
        assert!(portfolio.contains(&StressSchedule::Sequential));
        assert_eq!(
            portfolio
                .iter()
                .filter(|s| matches!(s, StressSchedule::Random(_)))
                .count(),
            3
        );
    }

    #[test]
    fn premature_inline_algorithm_fails_partition_schedules() {
        use llsc_shmem::dsl::{done, ll};
        use llsc_shmem::{FnAlgorithm, RegisterId, Value};
        let alg = FnAlgorithm::new("inline-premature", |_p, _n| {
            ll(RegisterId(0), |_| done(Value::from(1i64))).into_program()
        });
        let report = stress_wakeup(
            &alg,
            4,
            Arc::new(ZeroTosses),
            &standard_portfolio(4, 2),
            10_000,
        )
        .unwrap();
        assert!(!report.ok());
        assert!(report.to_string().contains("FAILED"));
        // Every partition schedule catches it.
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f.schedule, StressSchedule::Partition(_))));
    }

    #[test]
    fn correct_inline_counter_passes_everything() {
        use llsc_shmem::dsl::{done, ll, sc};
        use llsc_shmem::{FnAlgorithm, RegisterId, Value};
        let alg = FnAlgorithm::new("inline-counter", |_p, n| {
            fn attempt(n: usize) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |prev| {
                    let v = prev.as_int().unwrap_or(0);
                    sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
                        if !ok {
                            attempt(n)
                        } else if v + 1 == n as i128 {
                            done(Value::from(1i64))
                        } else {
                            done(Value::from(0i64))
                        }
                    })
                })
            }
            attempt(n).into_program()
        });
        let report = stress_wakeup(
            &alg,
            5,
            Arc::new(ZeroTosses),
            &standard_portfolio(5, 3),
            100_000,
        )
        .unwrap();
        assert!(report.ok(), "{report}");
        assert_eq!(report.passed, report.schedules_tried);
    }
}
