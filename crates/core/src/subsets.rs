//! Exhaustive subset sweeps: Lemma 5.2 (and optionally the appendix
//! claims) over every `S ⊆ {p_0, …, p_{n-1}}`.
//!
//! This is the heaviest verification loop in the repository — `2^n`
//! `(S, A)`-runs per `(All, A)`-run — and it is embarrassingly parallel:
//! each subset's run is built independently against the shared
//! `(All, A)`-run. [`indist_all_subsets`] therefore fans the masks out
//! over a [`Sweep`], merging per-subset tallies in mask order so the
//! report is identical at any thread count.

use crate::all_run::{build_all_run, AdversaryConfig};
use crate::claims::check_appendix_claims;
use crate::indist::check_indistinguishability;
use crate::s_run::build_s_run_with;
use crate::upsets::ProcSet;
use llsc_shmem::{Algorithm, Executor, ProcessId, RunError, Sweep, TossAssignment};
use std::fmt;
use std::sync::Arc;

/// The aggregate outcome of an exhaustive subset sweep.
#[derive(Clone, Debug, Default)]
pub struct SubsetSweepReport {
    /// Subsets `S` tested (always `2^n`).
    pub subsets: usize,
    /// Individual Lemma 5.2 state comparisons performed (process checks
    /// plus register checks, summed over subsets).
    pub comparisons: usize,
    /// Appendix-claim instances evaluated (0 unless claims were checked).
    pub claim_instances: usize,
    /// Total simulated executor events across the `(All, A)`-run and every
    /// `(S, A)`-run of the sweep — the denominator of the bench-smoke
    /// events/sec figure.
    pub events: u64,
    /// Every violation found, rendered with the subset that exposed it.
    /// Sound machinery leaves this empty.
    pub violations: Vec<String>,
}

impl SubsetSweepReport {
    /// `true` iff no subset exposed a violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SubsetSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subset sweep: {} subsets, {} comparisons, {} claim instances, {} violation(s)",
            self.subsets,
            self.comparisons,
            self.claim_instances,
            self.violations.len()
        )
    }
}

/// Checks Lemma 5.2 — and, when `check_claims` is set, claims A.2 – A.9 —
/// on every subset of an `n`-process system, fanning the `2^n` masks out
/// over `sweep`.
///
/// The `(All, A)`-run is built **once** per sweep and shared immutably
/// (behind an [`Arc`]) by all worker threads; each trial builds one
/// `(S, A)`-run against it and compares. Each *worker* keeps one reusable
/// executor as its sweep scratch ([`Sweep::run_indexed_with_scratch`]),
/// reset between trials instead of reallocated, and every `(S, A)`-run
/// shares the `(All, A)`-run's initial-memory map. Tallies are merged in
/// mask order, so the report does not depend on `sweep.threads`.
///
/// # Errors
///
/// Propagates the first [`RunError`] the `(All, A)`-run or any
/// `(S, A)`-run reports.
///
/// # Panics
///
/// Panics if `n > 16` (the enumeration is exhaustive).
pub fn indist_all_subsets(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
    check_claims: bool,
    sweep: &Sweep,
) -> Result<SubsetSweepReport, RunError> {
    assert!(n <= 16, "exhaustive subset check needs small n");
    let all = Arc::new(build_all_run(alg, n, toss.clone(), cfg)?);

    let per_mask = sweep.run_indexed_with_scratch(
        1usize << n,
        || Executor::new(alg, n, toss.clone(), cfg.executor),
        |exec, trial| {
            let mask = trial.index;
            let s: ProcSet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId)
                .collect();
            let srun = build_s_run_with(exec, alg, &s, &all, cfg)?;
            let lemma = check_indistinguishability(&all, &srun);
            let mut partial = SubsetSweepReport {
                subsets: 1,
                comparisons: lemma.process_checks + lemma.register_checks,
                claim_instances: 0,
                events: srun.base.run.event_count(),
                violations: lemma
                    .violations
                    .iter()
                    .map(|v| format!("S={s:?}: {v}"))
                    .collect(),
            };
            if check_claims {
                let claims = check_appendix_claims(&all, &srun);
                partial.claim_instances = claims.instances;
                partial
                    .violations
                    .extend(claims.violations.iter().map(|v| format!("S={s:?}: {v}")));
            }
            Ok(partial)
        },
    );

    let mut report = SubsetSweepReport {
        events: all.base.run.event_count(),
        ..SubsetSweepReport::default()
    };
    for partial in per_mask {
        let partial: SubsetSweepReport = partial?;
        report.subsets += partial.subsets;
        report.comparisons += partial.comparisons;
        report.claim_instances += partial.claim_instances;
        report.events += partial.events;
        report.violations.extend(partial.violations);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, sc};
    use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};

    fn llsc_contenders() -> impl Algorithm {
        FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            fn attempt(pid: ProcessId) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), move |ok, _| {
                        if ok {
                            done(Value::from(1i64))
                        } else {
                            attempt(pid)
                        }
                    })
                })
            }
            attempt(pid).into_program()
        })
    }

    #[test]
    fn sweep_report_is_thread_count_invariant() {
        let alg = llsc_contenders();
        let cfg = AdversaryConfig::default();
        let base = indist_all_subsets(
            &alg,
            5,
            Arc::new(ZeroTosses),
            &cfg,
            true,
            &Sweep::sequential(),
        )
        .unwrap();
        assert!(base.ok(), "{:?}", base.violations);
        assert_eq!(base.subsets, 32);
        assert!(base.comparisons > 0);
        assert!(base.claim_instances > 0);
        for threads in [2, 4, 8] {
            let par = indist_all_subsets(
                &alg,
                5,
                Arc::new(ZeroTosses),
                &cfg,
                true,
                &Sweep::with_threads(threads),
            )
            .unwrap();
            assert_eq!(par.subsets, base.subsets, "threads={threads}");
            assert_eq!(par.comparisons, base.comparisons, "threads={threads}");
            assert_eq!(par.claim_instances, base.claim_instances);
            assert_eq!(par.violations, base.violations);
        }
    }

    #[test]
    fn claims_can_be_skipped() {
        let alg = llsc_contenders();
        let report = indist_all_subsets(
            &alg,
            4,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
            false,
            &Sweep::sequential(),
        )
        .unwrap();
        assert!(report.ok());
        assert_eq!(report.claim_instances, 0);
        assert!(report.to_string().contains("16 subsets"));
    }
}
