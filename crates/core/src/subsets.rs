//! Exhaustive subset sweeps: Lemma 5.2 (and optionally the appendix
//! claims) over every `S ⊆ {p_0, …, p_{n-1}}`.
//!
//! This is the heaviest verification loop in the repository — `2^n`
//! `(S, A)`-runs per `(All, A)`-run — and it is embarrassingly parallel:
//! each subset's run is built independently against the shared
//! `(All, A)`-run. [`indist_all_subsets`] therefore fans the trials out
//! over a [`Sweep`], merging per-subset tallies in mask order so the
//! report is identical at any thread count.
//!
//! Internally the masks are visited in **Gray-code order**
//! ([`crate::gray_mask`]): each worker walks a contiguous block of Gray
//! positions, letting the [`GraySubsetBuilder`] resume successive
//! `(S, A)`-runs from executor checkpoints instead of rebuilding them
//! from scratch (see the [`GraySubsetBuilder`] docs). The enumeration
//! order is an implementation detail: records are merged back **in mask
//! order**, so every report and artifact is byte-identical to the naive
//! per-mask sweep at any thread count and chunking.

use crate::all_run::{build_all_run, AdversaryConfig};
use crate::claims::check_appendix_claims;
use crate::gray::GraySubsetBuilder;
use crate::indist::check_indistinguishability;
#[cfg(test)]
use llsc_shmem::ProcessId;
use llsc_shmem::{Algorithm, Executor, RunError, Sweep, TossAssignment};
use std::fmt;
use std::sync::Arc;

/// The aggregate outcome of an exhaustive subset sweep.
#[derive(Clone, Debug, Default)]
pub struct SubsetSweepReport {
    /// Subsets `S` tested (always `2^n`).
    pub subsets: usize,
    /// Individual Lemma 5.2 state comparisons performed (process checks
    /// plus register checks, summed over subsets).
    pub comparisons: usize,
    /// Appendix-claim instances evaluated (0 unless claims were checked).
    pub claim_instances: usize,
    /// Total simulated executor events across the `(All, A)`-run and every
    /// `(S, A)`-run of the sweep — the denominator of the bench-smoke
    /// events/sec figure.
    pub events: u64,
    /// Of [`SubsetSweepReport::events`], how many were restored from a
    /// Gray-code checkpoint instead of being re-executed (see
    /// [`GraySubsetBuilder`]) — the counted-work saving of the
    /// incremental enumeration. 0 under configurations where checkpoints
    /// are disabled.
    pub replayed_events: u64,
    /// Every violation found, rendered with the subset that exposed it.
    /// Sound machinery leaves this empty.
    pub violations: Vec<String>,
}

impl SubsetSweepReport {
    /// `true` iff no subset exposed a violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SubsetSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subset sweep: {} subsets, {} comparisons, {} claim instances, {} violation(s)",
            self.subsets,
            self.comparisons,
            self.claim_instances,
            self.violations.len()
        )
    }
}

/// What one subset trial (one mask) contributed to the sweep — the
/// checkpointable per-trial unit of a chunked subset job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsetTrialRecord {
    /// The subset bitmask (trial index within the `2^n` space).
    pub mask: usize,
    /// Lemma 5.2 comparisons performed for this subset.
    pub comparisons: usize,
    /// Appendix-claim instances evaluated (0 unless claims were checked).
    pub claim_instances: usize,
    /// Simulated events of this subset's `(S, A)`-run (checkpoint-restored
    /// prefix included, so the figure is independent of how the trial was
    /// built).
    pub events: u64,
    /// Of [`SubsetTrialRecord::events`], how many were restored from a
    /// Gray-code checkpoint instead of being re-executed.
    pub replayed_events: u64,
    /// Violations exposed by this subset, rendered with the subset.
    pub violations: Vec<String>,
}

/// The output of one contiguous mask-range of a subset sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsetChunk {
    /// Events of the shared `(All, A)`-run (identical for every chunk of
    /// the same sweep — counted once at assembly).
    pub all_events: u64,
    /// One record per mask, in mask order.
    pub records: Vec<SubsetTrialRecord>,
}

/// Checks Lemma 5.2 — and, when `check_claims` is set, claims A.2 – A.9 —
/// for the Gray positions `trials.start .. trials.end` of an `n`-process
/// system, fanning them out over `sweep`.
///
/// Position `w` tests the subset [`crate::gray_mask`]`(n, w)`; the
/// position space is `0..2^n`, visited so that consecutive trials differ
/// in one process and can share executor checkpoints. Records are
/// returned **sorted by mask**, so this is observably a per-mask sweep:
/// any partition of `0..2^n` into position ranges covers every mask
/// exactly once.
///
/// This is the chunkable core of [`indist_all_subsets`]: the `(All, A)`-run
/// is rebuilt deterministically per call (it depends only on
/// `(alg, n, toss, cfg)`), so concatenating the records of any partition
/// of `0 .. 2^n` reproduces the full sweep exactly — see
/// [`report_from_subset_records`].
///
/// # Errors
///
/// Returns [`RunError::UnsupportedSweep`] when `n > 16` or the range
/// exceeds the `2^n` trial space (pre-flight validation; no run is
/// started). Otherwise propagates the first (lowest-mask) [`RunError`]
/// the `(All, A)`-run or any `(S, A)`-run reports.
pub fn indist_subset_range(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
    check_claims: bool,
    sweep: &Sweep,
    trials: std::ops::Range<usize>,
) -> Result<SubsetChunk, RunError> {
    if n > 16 || trials.end > 1usize << n || trials.start > trials.end {
        return Err(RunError::UnsupportedSweep { n, end: trials.end });
    }
    let all = Arc::new(build_all_run(alg, n, toss.clone(), cfg)?);

    // One contiguous Gray segment per worker: longer segments mean more
    // checkpoint reuse, and a block boundary merely costs one
    // from-scratch rebuild.
    let block = trials.len().div_ceil(sweep.threads.max(1));
    let per_trial = sweep.run_indexed_range_with_scratch_blocked(
        trials.start,
        trials.len(),
        block,
        || {
            (
                Executor::new(alg, n, toss.clone(), cfg.executor),
                GraySubsetBuilder::new(),
            )
        },
        |(exec, builder), trial| {
            let mask = crate::gray::gray_mask(n, trial.index);
            let result = builder
                .build_trial(exec, alg, &all, cfg, trial.index)
                .map(|gray| {
                    let srun = &gray.srun;
                    let s = &srun.s;
                    let lemma = check_indistinguishability(&all, srun);
                    let mut record = SubsetTrialRecord {
                        mask,
                        comparisons: lemma.process_checks + lemma.register_checks,
                        claim_instances: 0,
                        events: srun.base.run.event_count(),
                        replayed_events: gray.replayed_events,
                        violations: lemma
                            .violations
                            .iter()
                            .map(|v| format!("S={s:?}: {v}"))
                            .collect(),
                    };
                    if check_claims {
                        let claims = check_appendix_claims(&all, srun);
                        record.claim_instances = claims.instances;
                        record
                            .violations
                            .extend(claims.violations.iter().map(|v| format!("S={s:?}: {v}")));
                    }
                    record
                });
            (mask, result)
        },
    );

    // Merge in mask order — the public contract — and surface the
    // lowest-mask error, exactly as a naive per-mask sweep would.
    let mut per_trial = per_trial;
    per_trial.sort_by_key(|(mask, _)| *mask);
    let records = per_trial
        .into_iter()
        .map(|(_, result)| result)
        .collect::<Result<Vec<SubsetTrialRecord>, RunError>>()?;
    Ok(SubsetChunk {
        all_events: all.base.run.event_count(),
        records,
    })
}

/// Assembles a [`SubsetSweepReport`] from per-mask records — a pure fold,
/// so any chunking of the mask space yields the same report as long as
/// `records` is presented in mask order.
pub fn report_from_subset_records(
    all_events: u64,
    records: &[SubsetTrialRecord],
) -> SubsetSweepReport {
    let mut report = SubsetSweepReport {
        events: all_events,
        ..SubsetSweepReport::default()
    };
    for record in records {
        report.subsets += 1;
        report.comparisons += record.comparisons;
        report.claim_instances += record.claim_instances;
        report.events += record.events;
        report.replayed_events += record.replayed_events;
        report.violations.extend(record.violations.iter().cloned());
    }
    report
}

/// Checks Lemma 5.2 — and, when `check_claims` is set, claims A.2 – A.9 —
/// on every subset of an `n`-process system, fanning the `2^n` masks out
/// over `sweep`.
///
/// The `(All, A)`-run is built **once** per sweep and shared immutably
/// (behind an [`Arc`]) by all worker threads; each trial builds one
/// `(S, A)`-run against it and compares. Each *worker* walks a
/// contiguous Gray-code segment of the mask space with one reusable
/// executor and one [`GraySubsetBuilder`] as its sweep scratch, resuming
/// successive `(S, A)`-runs from checkpoints instead of rebuilding them
/// ([`SubsetSweepReport::replayed_events`] counts the saving), and every
/// `(S, A)`-run shares the `(All, A)`-run's initial-memory map. Tallies
/// are merged in mask order, so the report does not depend on
/// `sweep.threads`.
///
/// # Errors
///
/// Returns [`RunError::UnsupportedSweep`] when `n > 16` (the enumeration
/// is exhaustive). Otherwise propagates the first [`RunError`] the
/// `(All, A)`-run or any `(S, A)`-run reports.
pub fn indist_all_subsets(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
    check_claims: bool,
    sweep: &Sweep,
) -> Result<SubsetSweepReport, RunError> {
    let chunk = indist_subset_range(alg, n, toss, cfg, check_claims, sweep, 0..1usize << n)?;
    Ok(report_from_subset_records(chunk.all_events, &chunk.records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, sc};
    use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};

    fn llsc_contenders() -> impl Algorithm {
        FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            fn attempt(pid: ProcessId) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), move |ok, _| {
                        if ok {
                            done(Value::from(1i64))
                        } else {
                            attempt(pid)
                        }
                    })
                })
            }
            attempt(pid).into_program()
        })
    }

    #[test]
    fn sweep_report_is_thread_count_invariant() {
        let alg = llsc_contenders();
        let cfg = AdversaryConfig::default();
        let base = indist_all_subsets(
            &alg,
            5,
            Arc::new(ZeroTosses),
            &cfg,
            true,
            &Sweep::sequential(),
        )
        .unwrap();
        assert!(base.ok(), "{:?}", base.violations);
        assert_eq!(base.subsets, 32);
        assert!(base.comparisons > 0);
        assert!(base.claim_instances > 0);
        for threads in [2, 4, 8] {
            let par = indist_all_subsets(
                &alg,
                5,
                Arc::new(ZeroTosses),
                &cfg,
                true,
                &Sweep::with_threads(threads),
            )
            .unwrap();
            assert_eq!(par.subsets, base.subsets, "threads={threads}");
            assert_eq!(par.comparisons, base.comparisons, "threads={threads}");
            assert_eq!(par.claim_instances, base.claim_instances);
            assert_eq!(par.violations, base.violations);
        }
    }

    #[test]
    fn chunked_ranges_concatenate_to_the_full_sweep() {
        let alg = llsc_contenders();
        let cfg = AdversaryConfig::default();
        let full = indist_all_subsets(
            &alg,
            5,
            Arc::new(ZeroTosses),
            &cfg,
            true,
            &Sweep::sequential(),
        )
        .unwrap();
        // An uneven partition of the 32-mask space, executed out of order
        // and at a different thread count per chunk.
        let mut all_events = 0;
        let mut records = Vec::new();
        for (offset, count, threads) in [(20, 12, 3), (0, 7, 1), (7, 13, 2)] {
            let chunk = indist_subset_range(
                &alg,
                5,
                Arc::new(ZeroTosses),
                &cfg,
                true,
                &Sweep::with_threads(threads),
                offset..offset + count,
            )
            .unwrap();
            assert_eq!(chunk.records.len(), count);
            all_events = chunk.all_events;
            records.extend(chunk.records);
        }
        records.sort_by_key(|r| r.mask);
        let assembled = report_from_subset_records(all_events, &records);
        assert_eq!(assembled.subsets, full.subsets);
        assert_eq!(assembled.comparisons, full.comparisons);
        assert_eq!(assembled.claim_instances, full.claim_instances);
        assert_eq!(assembled.events, full.events);
        assert_eq!(assembled.violations, full.violations);
    }

    #[test]
    fn claims_can_be_skipped() {
        let alg = llsc_contenders();
        let report = indist_all_subsets(
            &alg,
            4,
            Arc::new(ZeroTosses),
            &AdversaryConfig::default(),
            false,
            &Sweep::sequential(),
        )
        .unwrap();
        assert!(report.ok());
        assert_eq!(report.claim_instances, 0);
        assert!(report.to_string().contains("16 subsets"));
    }
}
