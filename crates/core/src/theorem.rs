//! Theorem 6.1 and Corollary 6.1: the Ω(log n) wakeup lower bound, as an
//! executable driver.
//!
//! Theorem 6.1 argues: take any toss assignment `A` for which the
//! `(All, A)`-run terminates; let `p_i` be the process that returns 1 and
//! `r` its number of shared-memory operations. If `r < log₄ n` then
//! `S = UP(p_i, r)` has fewer than `n` processes, yet by Lemma 5.2 the
//! `(S, A)`-run is indistinguishable to `p_i` — so `p_i` returns 1 in a run
//! where fewer than `n` processes ever step, violating the wakeup
//! specification. Hence `r ≥ log₄ n`.
//!
//! [`verify_lower_bound`] runs this argument *constructively* on a concrete
//! algorithm: it builds the `(All, A)`-run, measures the winner's step
//! count against `log₄ n`, and — when the count falls below the bound — it
//! actually constructs the refuting `(S, A)`-run and reports the wakeup
//! violation it exhibits. For a correct wakeup algorithm the bound always
//! holds; for the deliberately broken algorithms in `llsc-wakeup` the
//! refutation materialises.

use crate::all_run::{build_all_run, AdversaryConfig, AllRun};
use crate::s_run::build_s_run;
use crate::upsets::ProcSet;
use crate::wakeup::{check_wakeup, WakeupCheck, WakeupViolation};
use llsc_shmem::{Algorithm, ProcessId, RunError, TossAssignment};
use std::fmt;
use std::sync::Arc;

/// `log₄ n`.
pub fn log4(n: usize) -> f64 {
    (n.max(1) as f64).log2() / 2.0
}

/// The smallest integer `r` with `4^r ≥ n` — the concrete per-winner step
/// bound Theorem 6.1 certifies.
pub fn ceil_log4(n: usize) -> u64 {
    let mut r = 0u64;
    let mut pow = 1u128;
    while pow < n as u128 {
        pow *= 4;
        r += 1;
    }
    r
}

/// Concrete counterexample evidence produced when an algorithm's winner
/// beats the bound: the `(S, A)`-run in which the winner still returns 1
/// although processes outside `S` never step.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// The witnessing set `S = UP(winner, r)`.
    pub s: ProcSet,
    /// Whether the winner still returns 1 in the `(S, A)`-run (it must, by
    /// indistinguishability).
    pub winner_returns_one_in_s_run: bool,
    /// Processes that never take a step in the `(S, A)`-run.
    pub never_step: Vec<ProcessId>,
    /// The wakeup violations the `(S, A)`-run exhibits.
    pub violations: Vec<WakeupViolation>,
}

/// The result of running the Theorem 6.1 driver on one algorithm instance.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// The algorithm's name.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Rounds the `(All, A)`-run took.
    pub rounds: usize,
    /// Whether the `(All, A)`-run terminated within the round limit.
    pub completed: bool,
    /// The wakeup-specification check of the `(All, A)`-run.
    pub wakeup: WakeupCheck,
    /// The first process to return 1.
    pub winner: Option<ProcessId>,
    /// `r`: the winner's shared-memory step count.
    pub winner_steps: u64,
    /// `t(R)`: the maximum shared-memory step count over all processes.
    pub max_steps: u64,
    /// `|UP(winner, r)|`.
    pub up_winner_size: usize,
    /// `log₄ n`.
    pub log4_n: f64,
    /// `true` iff `winner_steps ≥ ⌈log₄ n⌉`, i.e. `4^r ≥ n`.
    pub bound_holds: bool,
    /// When the bound fails: the constructed counterexample.
    pub refutation: Option<Refutation>,
}

impl fmt::Display for LowerBoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} rounds={} winner={} steps={} max={} log4(n)={:.2} bound {}",
            self.algorithm,
            self.n,
            self.rounds,
            self.winner
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            self.winner_steps,
            self.max_steps,
            self.log4_n,
            if self.bound_holds { "HOLDS" } else { "REFUTED" }
        )
    }
}

/// Runs the Theorem 6.1 argument on `alg` with `n` processes under toss
/// assignment `toss`.
///
/// See the module docs for the structure of the argument. The returned
/// report contains the measured step counts; when the winner's step count
/// is below `⌈log₄ n⌉` (possible only for algorithms that violate the
/// wakeup specification) it also contains the constructed `(S, A)`-run
/// [`Refutation`].
///
/// # Errors
///
/// Propagates any [`RunError`] (event-budget exhaustion, local-burst
/// divergence) the underlying runs report.
pub fn verify_lower_bound(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
) -> Result<LowerBoundReport, RunError> {
    let all = build_all_run(alg, n, toss.clone(), cfg)?;
    report_from_all_run(alg, n, toss, cfg, &all)
}

/// Like [`verify_lower_bound`], but reuses an already-constructed
/// `(All, A)`-run (useful when the caller also needs the run itself).
pub fn report_from_all_run(
    alg: &dyn Algorithm,
    n: usize,
    toss: Arc<dyn TossAssignment>,
    cfg: &AdversaryConfig,
    all: &AllRun,
) -> Result<LowerBoundReport, RunError> {
    assert!(
        all.base.run.is_detailed(),
        "the Theorem 6.1 driver needs a detailed run (events/verdicts);          build the (All, A)-run with record_details = true —          AdversaryConfig::lightweight() is for complexity sweeps only"
    );
    let wakeup = check_wakeup(&all.base.run);
    let winner = wakeup.first_winner();
    let winner_steps = winner.map(|p| all.base.run.shared_steps(p)).unwrap_or(0);
    let max_steps = all.base.run.max_shared_steps();
    let bound = ceil_log4(n);
    let bound_holds = winner.is_none() || winner_steps >= bound;

    let (up_winner_size, refutation) = match winner {
        Some(w) => {
            // A terminated process's UP set never changes again (rule P8),
            // so for the winner the final snapshot equals the snapshot at
            // its termination round — which lets rolling trackers serve
            // the bound measurement too.
            let s = if all.up.has_full_history() {
                let r = (winner_steps as usize).min(all.up.rounds());
                all.up.proc(w, r).clone()
            } else {
                all.up.current().proc(w).clone()
            };
            let size = s.len();
            let refutation = if !bound_holds && s.len() < n {
                // The refuting (S, A)-run needs the full UP history;
                // rebuild the (All, A)-run with it if necessary
                // (refutations only arise for broken algorithms, which are
                // cheap to re-run).
                let full_cfg = AdversaryConfig {
                    track_up_history: true,
                    record_snapshots: true,
                    executor: llsc_shmem::ExecutorConfig {
                        record_details: true,
                        ..cfg.executor
                    },
                    ..*cfg
                };
                let rebuilt;
                let all_full = if all.up.has_full_history() {
                    all
                } else {
                    rebuilt = build_all_run(alg, n, toss.clone(), &full_cfg)?;
                    &rebuilt
                };
                let srun = build_s_run(alg, n, toss, &s, all_full, &full_cfg)?;
                let s_wakeup = check_wakeup(&srun.base.run);
                let never_step: Vec<ProcessId> = ProcessId::all(n)
                    .filter(|&p| {
                        !srun.base.run.events().iter().any(|e| {
                            e.pid() == p && !matches!(e, llsc_shmem::RunEvent::Terminated { .. })
                        })
                    })
                    .collect();
                Some(Refutation {
                    s,
                    winner_returns_one_in_s_run: srun.base.run.verdict(w).and_then(|v| v.as_int())
                        == Some(1),
                    never_step,
                    violations: s_wakeup.violations,
                })
            } else {
                None
            };
            (size, refutation)
        }
        None => (0, None),
    };

    Ok(LowerBoundReport {
        algorithm: alg.name().to_string(),
        n,
        rounds: all.base.num_rounds(),
        completed: all.base.completed,
        wakeup,
        winner,
        winner_steps,
        max_steps,
        up_winner_size,
        log4_n: log4(n),
        bound_holds,
        refutation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::dsl::{done, ll, sc};
    use llsc_shmem::{FnAlgorithm, RegisterId, Value, ZeroTosses};

    /// The canonical correct wakeup algorithm: one-shot increments on a
    /// counter via LL/SC retry; the process that installs `n` wins.
    fn counter_wakeup() -> impl Algorithm {
        FnAlgorithm::new("counter-wakeup", |_pid, n| {
            fn attempt(n: usize) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |prev| {
                    let v = prev.as_int().unwrap_or(0);
                    sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
                        if !ok {
                            attempt(n)
                        } else if v + 1 == n as i128 {
                            done(Value::from(1i64))
                        } else {
                            done(Value::from(0i64))
                        }
                    })
                })
            }
            attempt(n).into_program()
        })
    }

    /// A broken "wakeup" algorithm: every process immediately returns 1
    /// after a single LL, without evidence anyone else is up.
    fn premature_wakeup() -> impl Algorithm {
        FnAlgorithm::new("premature", |_pid, _n| {
            ll(RegisterId(0), |_| done(Value::from(1i64))).into_program()
        })
    }

    #[test]
    fn ceil_log4_values() {
        assert_eq!(ceil_log4(1), 0);
        assert_eq!(ceil_log4(2), 1);
        assert_eq!(ceil_log4(4), 1);
        assert_eq!(ceil_log4(5), 2);
        assert_eq!(ceil_log4(16), 2);
        assert_eq!(ceil_log4(17), 3);
        assert_eq!(ceil_log4(1024), 5);
    }

    #[test]
    fn log4_matches_definition() {
        assert!((log4(4) - 1.0).abs() < 1e-12);
        assert!((log4(16) - 2.0).abs() < 1e-12);
        assert!((log4(1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn correct_algorithm_meets_the_bound() {
        let alg = counter_wakeup();
        for n in [2, 4, 8, 16, 32] {
            let rep =
                verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                    .unwrap();
            assert!(rep.completed, "n={n}");
            assert!(rep.wakeup.ok(), "n={n}: {}", rep.wakeup);
            assert!(
                rep.bound_holds,
                "n={n}: winner {} steps {} < ceil(log4) {}",
                rep.winner.unwrap(),
                rep.winner_steps,
                ceil_log4(n)
            );
            assert!(rep.refutation.is_none());
            // The UP of the winner covers everybody it could know about;
            // Lemma 5.1 caps it by 4^r.
            assert!(
                rep.up_winner_size <= crate::upsets::lemma_5_1_bound(rep.winner_steps as usize)
            );
        }
    }

    #[test]
    fn broken_algorithm_is_refuted_constructively() {
        let alg = premature_wakeup();
        let n = 16;
        let rep =
            verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        // The (All, A)-run itself already violates wakeup (premature
        // winner), and the bound fails.
        assert!(!rep.wakeup.ok());
        assert!(!rep.bound_holds);
        let refutation = rep.refutation.expect("refutation must be constructed");
        // S is small (the winner knows almost nothing).
        assert!(refutation.s.len() < n);
        // The winner still returns 1 in the (S, A)-run...
        assert!(refutation.winner_returns_one_in_s_run);
        // ...while processes outside S never step: the wakeup violation.
        assert!(!refutation.never_step.is_empty());
        assert!(refutation
            .violations
            .iter()
            .any(|v| matches!(v, WakeupViolation::PrematureWinner { .. })));
    }

    #[test]
    fn winner_steps_grow_logarithmically() {
        // The measured minimum winner step count must weakly dominate
        // ceil(log4(n)) across a sweep.
        let alg = counter_wakeup();
        let mut prev_bound = 0;
        for n in [4, 16, 64, 256] {
            let rep =
                verify_lower_bound(&alg, n, Arc::new(ZeroTosses), &AdversaryConfig::default())
                    .unwrap();
            let bound = ceil_log4(n);
            assert!(bound >= prev_bound);
            assert!(rep.winner_steps >= bound, "n={n}");
            prev_bound = bound;
        }
    }

    #[test]
    #[should_panic(expected = "detailed run")]
    fn lightweight_runs_are_rejected() {
        // A detail-less run has no events, so the wakeup check would pass
        // vacuously; the driver must refuse instead.
        let alg = counter_wakeup();
        verify_lower_bound(
            &alg,
            4,
            Arc::new(ZeroTosses),
            &AdversaryConfig::lightweight(),
        )
        .unwrap();
    }

    #[test]
    fn report_display_summarises() {
        let alg = counter_wakeup();
        let rep =
            verify_lower_bound(&alg, 4, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        let s = rep.to_string();
        assert!(s.contains("counter-wakeup"));
        assert!(s.contains("HOLDS"));
    }
}
