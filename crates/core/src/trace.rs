//! Human-readable traces of adversary runs.
//!
//! The `(All, A)`-run is the star object of the paper; being able to *look
//! at one* — round by round, phase by phase, with the `UP` sets alongside —
//! is how the update rules were debugged and is genuinely useful when
//! studying the proof. [`trace_all_run`] renders a complete run;
//! [`trace_round`] renders one round.

use crate::all_run::AllRun;
use crate::rounds::RoundRecord;
use crate::upsets::UpTracker;
use llsc_shmem::{OpKind, ProcessId};
use std::fmt::Write as _;

/// Renders one round of an `(All, A)`-run (or an `(S, A)`-run, given its
/// record) as indented text.
pub fn trace_round(rec: &RoundRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "round {}:", rec.round);
    let tosses: u64 = rec.phase1_tosses.values().sum();
    if tosses > 0 {
        let _ = writeln!(out, "  phase 1: {tosses} coin toss(es)");
    }
    if !rec.terminated_in_phase1.is_empty() {
        let names: Vec<String> = rec
            .terminated_in_phase1
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = writeln!(out, "  terminated in phase 1: {}", names.join(", "));
    }
    let phase_of = |kind: OpKind| match kind {
        OpKind::Ll | OpKind::Validate => 2,
        OpKind::Move => 3,
        OpKind::Swap => 4,
        OpKind::Sc => 5,
    };
    let mut last_phase = 0;
    for op in &rec.ops {
        let phase = phase_of(op.kind);
        if phase != last_phase {
            let label = match phase {
                2 => "phase 2 (LL/validate)",
                3 => "phase 3 (moves, secretive order)",
                4 => "phase 4 (swaps)",
                _ => "phase 5 (SCs)",
            };
            let _ = writeln!(out, "  {label}:");
            last_phase = phase;
        }
        let suffix = match op.sc_ok {
            Some(true) => " -> success",
            Some(false) => " -> fail",
            None => "",
        };
        let _ = writeln!(out, "    {} {} {}{}", op.p, op.kind, op.register, suffix);
    }
    if !rec.sigma.is_empty() {
        let sigma: Vec<String> = rec.sigma.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "  sigma_{} = [{}]", rec.round, sigma.join(", "));
    }
    out
}

/// Renders the `UP` sets of the given round.
pub fn trace_up_sets(up: &UpTracker, round: usize) -> String {
    let mut out = String::new();
    let snapshot = up.snapshot(round);
    let _ = write!(out, "  UP(p, {round}):");
    for p in ProcessId::all(up.n()) {
        let _ = write!(out, " {}:{}", p, snapshot.proc(p).len());
    }
    let _ = writeln!(out);
    for (r, set) in &snapshot.regs {
        let members: Vec<String> = set.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "  UP({r}, {round}) = {{{}}}", members.join(", "));
    }
    out
}

/// Renders an entire `(All, A)`-run: every round followed by the `UP` sets
/// at its end. `max_rounds` truncates long runs.
pub fn trace_all_run(all: &AllRun, max_rounds: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "(All, A)-run: n = {}, {} round(s), completed = {}",
        all.n(),
        all.base.num_rounds(),
        all.base.completed
    );
    for (i, rec) in all.base.rounds.iter().enumerate().take(max_rounds) {
        out.push_str(&trace_round(rec));
        out.push_str(&trace_up_sets(&all.up, i + 1));
    }
    if all.base.num_rounds() > max_rounds {
        let _ = writeln!(
            out,
            "... {} more round(s)",
            all.base.num_rounds() - max_rounds
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_run::{build_all_run, AdversaryConfig};
    use llsc_shmem::dsl::{done, ll, mv, sc, swap};
    use llsc_shmem::{FnAlgorithm, Program, RegisterId, Value, ZeroTosses};
    use std::sync::Arc;

    fn mixed() -> impl llsc_shmem::Algorithm {
        FnAlgorithm::new("mixed", |pid: ProcessId, _n| {
            let prog: Box<dyn Program> = match pid.0 {
                0 => ll(RegisterId(0), |_| {
                    sc(RegisterId(0), Value::from(1i64), |_, _| {
                        done(Value::from(0i64))
                    })
                })
                .into_program(),
                1 => swap(RegisterId(1), Value::from(2i64), |_| {
                    done(Value::from(0i64))
                })
                .into_program(),
                _ => mv(RegisterId(1), RegisterId(2), || done(Value::from(0i64))).into_program(),
            };
            prog
        })
    }

    #[test]
    fn trace_mentions_every_phase() {
        let alg = mixed();
        let all =
            build_all_run(&alg, 3, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        let text = trace_all_run(&all, 10);
        assert!(text.contains("phase 2 (LL/validate)"));
        assert!(text.contains("phase 3 (moves, secretive order)"));
        assert!(text.contains("phase 4 (swaps)"));
        assert!(text.contains("phase 5 (SCs)"));
        assert!(text.contains("sigma_1"));
        assert!(text.contains("UP("));
        assert!(text.contains("completed = true"));
    }

    #[test]
    fn trace_truncates_long_runs() {
        let alg = FnAlgorithm::new("counter", |_p, n| {
            fn attempt(n: usize) -> llsc_shmem::dsl::Step {
                ll(RegisterId(0), move |prev| {
                    let v = prev.as_int().unwrap_or(0);
                    sc(RegisterId(0), Value::from(v + 1), move |ok, _| {
                        if ok && v + 1 == n as i128 {
                            done(Value::from(1i64))
                        } else if ok {
                            done(Value::from(0i64))
                        } else {
                            attempt(n)
                        }
                    })
                })
            }
            attempt(n).into_program()
        });
        let all =
            build_all_run(&alg, 8, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        let text = trace_all_run(&all, 2);
        assert!(text.contains("more round(s)"));
    }

    #[test]
    fn sc_outcomes_are_annotated() {
        let alg = mixed();
        let all =
            build_all_run(&alg, 3, Arc::new(ZeroTosses), &AdversaryConfig::default()).unwrap();
        let text = trace_all_run(&all, 10);
        assert!(text.contains("-> success"));
    }
}
