//! Section 5.3: the `UP`-set update rules and Lemma 5.1.
//!
//! For the `(All, A)`-run, `UP(p, r)` over-approximates the set of processes
//! that `p` *might know to be up* by the end of round `r`, and `UP(R, r)`
//! the set of processes whose up-ness can be inferred from register `R`'s
//! value at the end of round `r`. [`UpTracker`] applies the paper's eight
//! process rules and four register rules to each [`RoundRecord`], keeping
//! the full per-round history that the `(S, A)`-run construction and the
//! indistinguishability checker consume.
//!
//! Lemma 5.1 — `|UP(X, r)| ≤ 4^r` — is checked by
//! [`UpTracker::max_up_size`] plus [`lemma_5_1_bound`].

use crate::rounds::RoundRecord;
use crate::secretive;
use llsc_shmem::{OpKind, ProcMask, ProcessId, RegisterId};
use std::collections::{BTreeMap, BTreeSet};

/// A set of processes — a fixed-width bitmask ([`ProcMask`]), so the
/// `UP`-set bookkeeping unions and subset checks are word operations
/// instead of tree merges.
pub type ProcSet = ProcMask;

/// One round's worth of `UP` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpSnapshot {
    /// `UP(p, r)` for every process, indexed by process id.
    pub procs: Vec<ProcSet>,
    /// `UP(R, r)` for every register that has a non-empty `UP`; registers
    /// absent from the map have `UP(R, r) = ∅`.
    pub regs: BTreeMap<RegisterId, ProcSet>,
}

impl UpSnapshot {
    fn initial(n: usize) -> Self {
        UpSnapshot {
            procs: ProcessId::all(n).map(|p| ProcSet::from([p])).collect(),
            regs: BTreeMap::new(),
        }
    }

    /// `UP(p, r)` for this snapshot's round.
    pub fn proc(&self, p: ProcessId) -> &ProcSet {
        &self.procs[p.0]
    }

    /// `UP(R, r)` for this snapshot's round (empty if never written).
    pub fn reg(&self, r: RegisterId) -> ProcSet {
        self.regs.get(&r).cloned().unwrap_or_default()
    }

    /// The largest `|UP(X, r)|` over all processes and registers.
    pub fn max_size(&self) -> usize {
        let p = self.procs.iter().map(ProcSet::len).max().unwrap_or(0);
        let r = self.regs.values().map(ProcSet::len).max().unwrap_or(0);
        p.max(r)
    }
}

/// `4^r`, saturating — the Lemma 5.1 bound for round `r`.
pub fn lemma_5_1_bound(r: usize) -> usize {
    4usize.saturating_pow(r.min(32) as u32)
}

/// Tracks `UP(p, r)` and `UP(R, r)` across the rounds of an
/// `(All, A)`-run.
///
/// # Examples
///
/// ```
/// use llsc_core::UpTracker;
/// use llsc_shmem::ProcessId;
///
/// let t = UpTracker::new(3);
/// // Round 0: UP(p, 0) = {p}, UP(R, 0) = ∅.
/// assert_eq!(t.proc(ProcessId(1), 0), &llsc_core::ProcSet::from([ProcessId(1)]));
/// ```
#[derive(Clone, Debug)]
pub struct UpTracker {
    n: usize,
    /// Full mode: one snapshot per round (index = round). Rolling mode:
    /// only the latest snapshot.
    history: Vec<UpSnapshot>,
    /// `max |UP(X, r)|` per round, always maintained (Lemma 5.1 needs only
    /// this).
    max_sizes: Vec<usize>,
    rounds_applied: usize,
    keep_history: bool,
}

impl UpTracker {
    /// Creates a tracker in its round-0 state: `UP(p, 0) = {p}` and
    /// `UP(R, 0) = ∅`, retaining the full per-round history (needed by the
    /// `(S, A)`-run construction and the indistinguishability checker).
    pub fn new(n: usize) -> Self {
        Self::with_history(n, true)
    }

    /// Creates a *rolling* tracker that retains only the latest snapshot
    /// plus the per-round `max |UP|` sizes.
    ///
    /// Full per-round UP histories cost `Θ(rounds · Σ|UP|)` memory — for
    /// `Θ(n)`-round algorithms at `n = 1024` that is tens of gigabytes.
    /// The rolling tracker suffices for Lemma 5.1 checking and for the
    /// Theorem 6.1 bound measurement (a terminated winner's UP set no
    /// longer changes, so its final set equals its set at termination
    /// time).
    pub fn new_rolling(n: usize) -> Self {
        Self::with_history(n, false)
    }

    fn with_history(n: usize, keep_history: bool) -> Self {
        let initial = UpSnapshot::initial(n);
        UpTracker {
            n,
            max_sizes: vec![initial.max_size()],
            history: vec![initial],
            rounds_applied: 0,
            keep_history,
        }
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether every round's snapshot is retained (full mode).
    pub fn has_full_history(&self) -> bool {
        self.keep_history
    }

    /// The number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.rounds_applied
    }

    /// The snapshot at the end of round `r` (round 0 is the initial state).
    ///
    /// # Panics
    ///
    /// Panics if round `r` has not been applied yet, or if this is a
    /// rolling tracker and `r` is not the latest round.
    pub fn snapshot(&self, r: usize) -> &UpSnapshot {
        assert!(r <= self.rounds_applied, "round {r} not applied yet");
        if self.keep_history {
            &self.history[r]
        } else {
            assert_eq!(
                r, self.rounds_applied,
                "rolling UpTracker only retains the latest round ({})",
                self.rounds_applied
            );
            self.current()
        }
    }

    /// The latest snapshot (available in both modes).
    pub fn current(&self) -> &UpSnapshot {
        self.history.last().expect("initial snapshot always exists")
    }

    /// `UP(p, r)`.
    pub fn proc(&self, p: ProcessId, r: usize) -> &ProcSet {
        self.snapshot(r).proc(p)
    }

    /// `UP(R, r)`.
    pub fn reg(&self, reg: RegisterId, r: usize) -> ProcSet {
        self.snapshot(r).reg(reg)
    }

    /// The largest `|UP(X, r)|` at round `r` (available in both modes).
    pub fn max_up_size(&self, r: usize) -> usize {
        self.max_sizes[r]
    }

    /// `true` iff Lemma 5.1 holds at every applied round:
    /// `|UP(X, r)| ≤ 4^r` (available in both modes).
    pub fn lemma_5_1_holds(&self) -> bool {
        (0..=self.rounds()).all(|r| self.max_up_size(r) <= lemma_5_1_bound(r))
    }

    /// Applies one round's update rules, appending the round-`r` snapshot.
    ///
    /// `rec` must be round `self.rounds() + 1` of the `(All, A)`-run.
    ///
    /// # Panics
    ///
    /// Panics if `rec.round` is not the next round.
    pub fn apply_round(&mut self, rec: &RoundRecord) {
        assert_eq!(
            rec.round,
            self.rounds() + 1,
            "rounds must be applied in order"
        );
        // The rules read some round-(r-1) values while producing round-r
        // values. Rather than cloning the whole snapshot (which dominates
        // the cost of long runs — Θ(rounds · Σ|UP|)), save exactly the old
        // values the rules can read and update the snapshot in place:
        //
        // * register UPs (rules R3, P1, P3, P4, P6 read them) — the `regs`
        //   map holds only registers with non-empty UP, typically few;
        // * the UP sets of this round's "knowledge sources": successful
        //   SC-ers (R1), swappers (R2, P5), and movers (R3, P4).
        //
        // Each participant performs at most one operation per round, so a
        // process's own entry is still its round-(r-1) value when its rule
        // fires.
        let prev = self.current();
        let old_regs: BTreeMap<RegisterId, ProcSet> = prev.regs.clone();
        let mut old_procs: BTreeMap<ProcessId, ProcSet> = BTreeMap::new();
        for p in rec
            .successful_sc
            .values()
            .copied()
            .chain(rec.swaps.values().flatten().copied())
            .chain(rec.move_config.processes())
        {
            old_procs.entry(p).or_insert_with(|| prev.proc(p).clone());
        }

        if self.keep_history {
            let next = self.current().clone();
            self.history.push(next);
        }
        let snapshot = self.history.last_mut().expect("non-empty history");
        let UpSnapshot { procs, regs } = snapshot;
        let old_reg = |r: RegisterId| old_regs.get(&r).cloned().unwrap_or_default();
        let old_proc = |p: ProcessId| -> &ProcSet {
            old_procs
                .get(&p)
                .expect("knowledge sources were saved above")
        };

        // ---- Register rules (use only round r-1 values) ----
        // Collect the registers affected this round.
        let mut affected: BTreeSet<RegisterId> = BTreeSet::new();
        affected.extend(rec.successful_sc.keys().copied());
        affected.extend(rec.swaps.keys().copied());
        affected.extend(rec.moves_into.keys().copied());

        for &r in &affected {
            let new_up: ProcSet = if let Some(&p) = rec.successful_sc.get(&r) {
                // Rule R1: a successful SC on R.
                old_proc(p).clone()
            } else if let Some(swappers) = rec.swaps.get(&r) {
                // Rule R2: the last swapper's knowledge.
                let last = *swappers.last().expect("non-empty by construction");
                old_proc(last).clone()
            } else {
                // Rule R3: moves into R (no swap on R, no successful SC).
                let src = secretive::source(r, &rec.sigma, &rec.move_config);
                let mvs = secretive::movers(r, &rec.sigma, &rec.move_config);
                let mut up = old_reg(src);
                for q in mvs {
                    up.union_with(old_proc(q));
                }
                up
            };
            // Rule R4 (else: unchanged) is the default — untouched entries
            // keep their round-(r-1) values.
            if new_up.is_empty() {
                regs.remove(&r);
            } else {
                regs.insert(r, new_up);
            }
        }

        // ---- Process rules (may use the *new* register values: rule P7) ----
        for op in &rec.ops {
            let (p, r) = (op.p, op.register);
            let up = &mut procs[p.0];
            match op.kind {
                // Rule P1: LL or validate on R joins UP(R, r-1).
                OpKind::Ll | OpKind::Validate => {
                    up.union_with(&old_reg(r));
                }
                // Rule P2: move learns nothing.
                OpKind::Move => {}
                // Rules P3-P5: swap on R.
                OpKind::Swap => {
                    let swappers = rec.swaps.get(&r).expect("recorded");
                    let my_pos = swappers.iter().position(|q| *q == p).expect("p swapped r");
                    if my_pos == 0 {
                        if rec.moves_into.contains_key(&r) {
                            // Rule P4: first swapper, after moves into R.
                            let src = secretive::source(r, &rec.sigma, &rec.move_config);
                            let mvs = secretive::movers(r, &rec.sigma, &rec.move_config);
                            up.union_with(&old_reg(src));
                            for q in mvs {
                                up.union_with(old_proc(q));
                            }
                        } else {
                            // Rule P3: first swapper, no moves into R.
                            up.union_with(&old_reg(r));
                        }
                    } else {
                        // Rule P5: learns the previous swapper's knowledge.
                        let q = swappers[my_pos - 1];
                        up.union_with(old_proc(q));
                    }
                }
                // Rules P6/P7: SC on R.
                OpKind::Sc => {
                    if op.sc_ok == Some(true) {
                        // Rule P6: successful SC sees the end-of-(r-1) value.
                        up.union_with(&old_reg(r));
                    } else {
                        // Rule P7: unsuccessful SC may see the round-r
                        // value (already updated in `regs` above).
                        if let Some(new_reg) = regs.get(&r) {
                            up.union_with(new_reg);
                        }
                    }
                }
            }
        }
        // Rule P8 (no operation: unchanged) is the default.

        let max = self.history.last().expect("non-empty history").max_size();
        self.max_sizes.push(max);
        self.rounds_applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::{execute_round, MoveOrder};
    use llsc_shmem::dsl::{done, ll, mv, sc, swap, validate};
    use llsc_shmem::{
        Algorithm, Executor, ExecutorConfig, FnAlgorithm, Program, Value, ZeroTosses,
    };
    use std::sync::Arc;

    fn pset<const N: usize>(ids: [usize; N]) -> ProcSet {
        ids.into_iter().map(ProcessId).collect()
    }

    fn run_rounds(alg: &dyn Algorithm, n: usize, rounds: usize) -> (UpTracker, Executor) {
        let mut e = Executor::new(alg, n, Arc::new(ZeroTosses), ExecutorConfig::default());
        let mut t = UpTracker::new(n);
        let all: Vec<_> = ProcessId::all(n).collect();
        for r in 1..=rounds {
            let rec = execute_round(&mut e, r, &all, MoveOrder::Secretive).unwrap();
            t.apply_round(&rec);
        }
        (t, e)
    }

    #[test]
    fn initial_state_matches_paper() {
        let t = UpTracker::new(4);
        for p in ProcessId::all(4) {
            assert_eq!(t.proc(p, 0), &ProcSet::from([p]));
        }
        assert!(t.reg(RegisterId(0), 0).is_empty());
        assert_eq!(t.rounds(), 0);
        assert!(t.lemma_5_1_holds());
    }

    #[test]
    fn ll_then_sc_spreads_knowledge_via_register() {
        // Everyone LLs R0 (round 1), then SCs R0 (round 2). In round 2 the
        // winner (p0) writes its knowledge into R0; losers' failed SCs read
        // the round-2 value (rule P7), so they learn p0's knowledge.
        let alg = FnAlgorithm::new("llsc", |pid: ProcessId, _n| {
            ll(RegisterId(0), move |_| {
                sc(RegisterId(0), Value::from(pid.0 as i64), |_, _| {
                    done(Value::from(0i64))
                })
            })
            .into_program()
        });
        let (t, _) = run_rounds(&alg, 3, 2);
        // Round 1: LL on a fresh register (UP(R,0) = ∅) adds nothing.
        for p in ProcessId::all(3) {
            assert_eq!(t.proc(p, 1), &ProcSet::from([p]));
        }
        // Round 2: register rule R1 gives UP(R0,2) = UP(p0,1) = {p0};
        // winner p0 learns UP(R0,1)=∅; losers learn UP(R0,2)={p0}.
        assert_eq!(t.reg(RegisterId(0), 2), pset([0]));
        assert_eq!(t.proc(ProcessId(0), 2), &pset([0]));
        assert_eq!(t.proc(ProcessId(1), 2), &pset([0, 1]));
        assert_eq!(t.proc(ProcessId(2), 2), &pset([0, 2]));
        assert!(t.lemma_5_1_holds());
    }

    #[test]
    fn swap_chain_learns_predecessor_only() {
        // Three swappers on R0 in one round: rule P5 — p1 learns p0, p2
        // learns p1; rule R2 — UP(R0,1) = UP(last=p2, 0) = {p2}.
        let alg = FnAlgorithm::new("swaps", |pid: ProcessId, _n| {
            swap(RegisterId(0), Value::from(pid.0 as i64), |_| {
                done(Value::from(0i64))
            })
            .into_program()
        });
        let (t, _) = run_rounds(&alg, 3, 1);
        assert_eq!(t.proc(ProcessId(0), 1), &pset([0])); // first swapper: ∪ UP(R,0)=∅
        assert_eq!(t.proc(ProcessId(1), 1), &pset([0, 1]));
        assert_eq!(t.proc(ProcessId(2), 1), &pset([1, 2]));
        assert_eq!(t.reg(RegisterId(0), 1), pset([2]));
        assert!(t.lemma_5_1_holds());
    }

    #[test]
    fn move_reveals_source_and_movers() {
        // p0 and p1 move R10/R11 into R0; p2 LLs R0 the next round.
        let alg = FnAlgorithm::new("mv", |pid: ProcessId, _n| {
            let prog: Box<dyn Program> = match pid.0 {
                0 => mv(RegisterId(10), RegisterId(0), || done(Value::from(0i64))).into_program(),
                1 => mv(RegisterId(11), RegisterId(0), || done(Value::from(0i64))).into_program(),
                _ => ll(RegisterId(0), |_| {
                    ll(RegisterId(0), |_| done(Value::from(0i64)))
                })
                .into_program(),
            };
            prog
        });
        let (t, _) = run_rounds(&alg, 3, 2);
        // Round 1 register rule R3: UP(R0,1) = UP(source,0) ∪ UP(last mover,0).
        // Source is one of R10/R11 (UP = ∅); the movers list is the last
        // mover only (both moved into R0, the later one wins).
        let up_r0 = t.reg(RegisterId(0), 1);
        assert_eq!(up_r0.len(), 1, "exactly the surviving mover: {up_r0:?}");
        // p2's round-1 LL: UP(R0, 0) = ∅, learns nothing; its round-2 LL
        // learns UP(R0, 1).
        assert_eq!(t.proc(ProcessId(2), 1), &pset([2]));
        let p2_r2 = t.proc(ProcessId(2), 2).clone();
        assert!(p2_r2.is_superset(&up_r0));
        assert!(t.lemma_5_1_holds());
    }

    #[test]
    fn movers_see_nothing() {
        // Rule P2: a mover's own UP never grows.
        let alg = FnAlgorithm::new("mv2", |pid: ProcessId, _n| {
            mv(
                RegisterId(pid.0 as u64),
                RegisterId(pid.0 as u64 + 1),
                || done(Value::from(0i64)),
            )
            .into_program()
        });
        let (t, _) = run_rounds(&alg, 4, 1);
        for p in ProcessId::all(4) {
            assert_eq!(t.proc(p, 1), &ProcSet::from([p]));
        }
    }

    #[test]
    fn validate_learns_previous_round_register_value() {
        // p0 swaps into R0 in round 1; p1 validates R0 in round 2 and
        // learns UP(R0, 1) = {p0}.
        let alg = FnAlgorithm::new("val", |pid: ProcessId, _n| {
            let prog: Box<dyn Program> = match pid.0 {
                0 => swap(RegisterId(0), Value::from(1i64), |_| {
                    done(Value::from(0i64))
                })
                .into_program(),
                _ => validate(RegisterId(0), |_, _| {
                    validate(RegisterId(0), |_, _| done(Value::from(0i64)))
                })
                .into_program(),
            };
            prog
        });
        let (t, _) = run_rounds(&alg, 2, 2);
        assert_eq!(t.proc(ProcessId(1), 1), &pset([1]));
        assert_eq!(t.proc(ProcessId(1), 2), &pset([0, 1]));
    }

    #[test]
    fn up_growth_respects_lemma_5_1_under_heavy_mixing() {
        // A stress algorithm: every process LLs and SCs a common register
        // repeatedly — knowledge mixes as fast as the rules allow.
        let alg = FnAlgorithm::new("mix", |pid: ProcessId, _n| {
            fn round_trip(pid: ProcessId, k: usize) -> llsc_shmem::dsl::Step {
                if k == 0 {
                    return done(Value::from(0i64));
                }
                ll(RegisterId(0), move |_| {
                    sc(RegisterId(0), Value::from(pid.0 as i64), move |_, _| {
                        round_trip(pid, k - 1)
                    })
                })
            }
            round_trip(pid, 6).into_program()
        });
        let (t, _) = run_rounds(&alg, 16, 12);
        assert!(t.lemma_5_1_holds());
        // And the bound is not vacuous: knowledge did spread.
        assert!(t.max_up_size(12) > 1);
    }

    #[test]
    #[should_panic(expected = "applied in order")]
    fn out_of_order_round_application_panics() {
        let alg = FnAlgorithm::new("noop", |_p, _n| done(Value::from(0i64)).into_program());
        let mut e = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        let rec = execute_round(&mut e, 5, &[ProcessId(0)], MoveOrder::Secretive).unwrap();
        let mut t = UpTracker::new(1);
        t.apply_round(&rec);
    }

    #[test]
    fn lemma_bound_values() {
        assert_eq!(lemma_5_1_bound(0), 1);
        assert_eq!(lemma_5_1_bound(1), 4);
        assert_eq!(lemma_5_1_bound(3), 64);
        // Saturates rather than overflowing.
        assert!(lemma_5_1_bound(1000) >= lemma_5_1_bound(32));
    }
}
