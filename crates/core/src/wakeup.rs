//! The wakeup problem (Fischer–Moran–Rudich–Taubenfeld), as specified in
//! Section 1.1, and its run checker.
//!
//! The `n`-process wakeup problem:
//!
//! 1. every process terminates in a finite number of its steps, returning
//!    either 0 or 1;
//! 2. in every run in which all processes terminate, at least one process
//!    returns 1;
//! 3. in every run in which one or more processes return 1, every process
//!    takes at least one step before any process returns 1.
//!
//! "Intuitively, the problem requires the process that wakes up last to
//! detect that every other process is up."
//!
//! [`check_wakeup`] validates a recorded [`Run`] against this
//! specification. A *step* here is a coin toss or a shared-memory
//! operation, matching the paper's step notion; entering a termination
//! state by itself does not count.

use llsc_shmem::{ProcessId, Run, RunEvent, Value};
use std::fmt;

/// A way a run can violate the wakeup specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WakeupViolation {
    /// A terminated process returned something other than 0 or 1.
    NonBinaryReturn {
        /// The offending process.
        p: ProcessId,
        /// Its return value.
        value: Value,
    },
    /// The run is terminating but nobody returned 1 (condition 2).
    NoWinner,
    /// Someone returned 1 before every process had taken a step
    /// (condition 3).
    PrematureWinner {
        /// The process that returned 1 too early.
        winner: ProcessId,
        /// Processes that had not yet taken any step at that point.
        missing: Vec<ProcessId>,
    },
}

impl fmt::Display for WakeupViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WakeupViolation::NonBinaryReturn { p, value } => {
                write!(f, "{p} returned non-binary value {value}")
            }
            WakeupViolation::NoWinner => write!(f, "terminating run with no process returning 1"),
            WakeupViolation::PrematureWinner { winner, missing } => {
                write!(f, "{winner} returned 1 before ")?;
                for (i, p) in missing.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, " took any step")
            }
        }
    }
}

/// The verdict of checking a run against the wakeup specification.
#[derive(Clone, Debug, Default)]
pub struct WakeupCheck {
    /// Whether every process terminated (conditions 2 and 3 are only
    /// evaluated on the available prefix otherwise).
    pub terminating: bool,
    /// Processes that returned 1, in the order they did.
    pub winners: Vec<ProcessId>,
    /// All violations found.
    pub violations: Vec<WakeupViolation>,
}

impl WakeupCheck {
    /// `true` iff no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first process to return 1, if any.
    pub fn first_winner(&self) -> Option<ProcessId> {
        self.winners.first().copied()
    }
}

impl fmt::Display for WakeupCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(
                f,
                "wakeup OK ({} winner(s), terminating={})",
                self.winners.len(),
                self.terminating
            )
        } else {
            write!(f, "wakeup VIOLATED: ")?;
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
    }
}

/// Checks a run against the wakeup specification.
///
/// Condition 1 is checked as "every *terminated* process returned 0 or 1"
/// (finite termination itself is an algorithm property witnessed by the run
/// being terminating). Condition 2 is only applicable to terminating runs.
/// Condition 3 is checked on any run.
///
/// # Examples
///
/// ```
/// use llsc_core::check_wakeup;
/// use llsc_shmem::{ProcessId, Run, RunEvent, Value};
///
/// // A 1-process run that returns 1 after one step: valid wakeup.
/// let mut run = Run::new(1);
/// run.record(RunEvent::Toss { pid: ProcessId(0), index: 0, outcome: 0 });
/// run.record(RunEvent::Terminated { pid: ProcessId(0), value: Value::from(1i64) });
/// assert!(check_wakeup(&run).ok());
/// ```
pub fn check_wakeup(run: &Run) -> WakeupCheck {
    let n = run.n();
    let mut check = WakeupCheck {
        terminating: run.is_terminating(),
        ..WakeupCheck::default()
    };

    // Condition 1: binary returns.
    for p in ProcessId::all(n) {
        if let Some(v) = run.verdict(p) {
            match v.as_int() {
                Some(0) | Some(1) => {}
                _ => check.violations.push(WakeupViolation::NonBinaryReturn {
                    p,
                    value: v.clone(),
                }),
            }
        }
    }

    // Walk events once, tracking who has stepped, to evaluate condition 3
    // and collect winners in order.
    let mut stepped = vec![false; n];
    let mut premature_reported = false;
    for ev in run.events() {
        match ev {
            RunEvent::Toss { pid, .. } | RunEvent::SharedOp { pid, .. } => {
                stepped[pid.0] = true;
            }
            RunEvent::Terminated { pid, value } => {
                if value.as_int() == Some(1) {
                    check.winners.push(*pid);
                    if !premature_reported {
                        let missing: Vec<ProcessId> =
                            ProcessId::all(n).filter(|q| !stepped[q.0]).collect();
                        if !missing.is_empty() {
                            premature_reported = true;
                            check.violations.push(WakeupViolation::PrematureWinner {
                                winner: *pid,
                                missing,
                            });
                        }
                    }
                }
            }
        }
    }

    // Condition 2.
    if check.terminating && check.winners.is_empty() {
        check.violations.push(WakeupViolation::NoWinner);
    }

    check
}

#[cfg(test)]
mod tests {
    use super::*;
    use llsc_shmem::{Operation, RegisterId, Response};

    fn step_event(pid: usize) -> RunEvent {
        RunEvent::SharedOp {
            pid: ProcessId(pid),
            op: Operation::Ll(RegisterId(0)),
            resp: Response::Value(Value::Unit),
        }
    }

    fn ret(pid: usize, v: i64) -> RunEvent {
        RunEvent::Terminated {
            pid: ProcessId(pid),
            value: Value::from(v),
        }
    }

    #[test]
    fn valid_wakeup_run_passes() {
        let mut run = Run::new(2);
        run.record(step_event(0));
        run.record(step_event(1));
        run.record(ret(0, 0));
        run.record(ret(1, 1));
        let check = check_wakeup(&run);
        assert!(check.ok(), "{check}");
        assert_eq!(check.winners, vec![ProcessId(1)]);
        assert_eq!(check.first_winner(), Some(ProcessId(1)));
        assert!(check.terminating);
    }

    #[test]
    fn no_winner_is_flagged() {
        let mut run = Run::new(2);
        run.record(step_event(0));
        run.record(step_event(1));
        run.record(ret(0, 0));
        run.record(ret(1, 0));
        let check = check_wakeup(&run);
        assert_eq!(check.violations, vec![WakeupViolation::NoWinner]);
        assert!(check.to_string().contains("VIOLATED"));
    }

    #[test]
    fn premature_winner_is_flagged_with_missing_processes() {
        let mut run = Run::new(3);
        run.record(step_event(0));
        run.record(ret(0, 1)); // p1 and p2 have not stepped
        let check = check_wakeup(&run);
        assert_eq!(
            check.violations,
            vec![WakeupViolation::PrematureWinner {
                winner: ProcessId(0),
                missing: vec![ProcessId(1), ProcessId(2)],
            }]
        );
    }

    #[test]
    fn winner_after_everyone_stepped_is_fine_even_mid_run() {
        // Non-terminating prefix: p1 returned 1 but p0 is still running —
        // condition 3 holds because p0 already stepped.
        let mut run = Run::new(2);
        run.record(step_event(0));
        run.record(step_event(1));
        run.record(ret(1, 1));
        let check = check_wakeup(&run);
        assert!(check.ok());
        assert!(!check.terminating);
    }

    #[test]
    fn non_binary_return_is_flagged() {
        let mut run = Run::new(1);
        run.record(step_event(0));
        run.record(ret(0, 7));
        let check = check_wakeup(&run);
        assert!(matches!(
            check.violations[0],
            WakeupViolation::NonBinaryReturn { .. }
        ));
        // 7 ≠ 1 so it is not a winner, and the run is terminating: also
        // NoWinner.
        assert_eq!(check.violations.len(), 2);
    }

    #[test]
    fn toss_counts_as_a_step() {
        let mut run = Run::new(2);
        run.record(RunEvent::Toss {
            pid: ProcessId(1),
            index: 0,
            outcome: 0,
        });
        run.record(step_event(0));
        run.record(ret(0, 1));
        run.record(ret(1, 0));
        assert!(check_wakeup(&run).ok());
    }

    #[test]
    fn termination_itself_is_not_a_step() {
        // p1 terminates (returning 0) without any toss or shared op; p0
        // then returns 1. Condition 3 is violated: p1 never took a step.
        let mut run = Run::new(2);
        run.record(step_event(0));
        run.record(ret(1, 0));
        run.record(ret(0, 1));
        let check = check_wakeup(&run);
        assert_eq!(
            check.violations,
            vec![WakeupViolation::PrematureWinner {
                winner: ProcessId(0),
                missing: vec![ProcessId(1)],
            }]
        );
    }

    #[test]
    fn multiple_winners_allowed() {
        let mut run = Run::new(2);
        run.record(step_event(0));
        run.record(step_event(1));
        run.record(ret(0, 1));
        run.record(ret(1, 1));
        let check = check_wakeup(&run);
        assert!(check.ok());
        assert_eq!(check.winners.len(), 2);
    }

    #[test]
    fn empty_terminating_run_of_zero_processes_is_vacuously_odd() {
        // n = 0: terminating, no winners — NoWinner fires. This documents
        // the degenerate behaviour rather than leaving it undefined.
        let run = Run::new(0);
        let check = check_wakeup(&run);
        assert_eq!(check.violations, vec![WakeupViolation::NoWinner]);
    }
}
