//! Fixed-width bit-string arithmetic for `k`-bit object states.
//!
//! Theorem 6.2 instantiates objects with `k ≥ n` bits (fetch&and,
//! fetch&or, fetch&complement, fetch&multiply), so `k` routinely exceeds
//! any machine word. This module implements the handful of operations those
//! sequential specifications need over little-endian `u64`-limb vectors:
//! masking to a width, bitwise AND/OR, single-bit complement, addition, and
//! schoolbook multiplication, all modulo `2^k`.

/// The number of 64-bit limbs needed for `k` bits.
pub fn limbs_for(k: usize) -> usize {
    k.div_ceil(64).max(1)
}

/// Masks `words` in place so only the low `k` bits survive.
pub fn mask_to_width(words: &mut [u64], k: usize) {
    let full = k / 64;
    for (i, w) in words.iter_mut().enumerate() {
        if i > full || (i == full && k.is_multiple_of(64)) {
            *w = 0;
        } else if i == full {
            *w &= (1u64 << (k % 64)) - 1;
        }
    }
}

/// Returns `words` resized to exactly `limbs_for(k)` limbs and masked to
/// `k` bits.
pub fn normalize(mut words: Vec<u64>, k: usize) -> Vec<u64> {
    words.resize(limbs_for(k), 0);
    mask_to_width(&mut words, k);
    words
}

/// `(a & b) mod 2^k`, operands normalised to `k` bits.
pub fn and(a: &[u64], b: &[u64], k: usize) -> Vec<u64> {
    let mut out = vec![0u64; limbs_for(k)];
    for (i, o) in out.iter_mut().enumerate() {
        *o = a.get(i).copied().unwrap_or(0) & b.get(i).copied().unwrap_or(0);
    }
    mask_to_width(&mut out, k);
    out
}

/// `(a | b) mod 2^k`.
pub fn or(a: &[u64], b: &[u64], k: usize) -> Vec<u64> {
    let mut out = vec![0u64; limbs_for(k)];
    for (i, o) in out.iter_mut().enumerate() {
        *o = a.get(i).copied().unwrap_or(0) | b.get(i).copied().unwrap_or(0);
    }
    mask_to_width(&mut out, k);
    out
}

/// `a` with bit `i` complemented, `i < k`.
///
/// # Panics
///
/// Panics if `i >= k`.
pub fn complement_bit(a: &[u64], i: usize, k: usize) -> Vec<u64> {
    assert!(i < k, "bit index {i} out of width {k}");
    let mut out = normalize(a.to_vec(), k);
    out[i / 64] ^= 1u64 << (i % 64);
    out
}

/// `(a + b) mod 2^k`.
pub fn add(a: &[u64], b: &[u64], k: usize) -> Vec<u64> {
    let limbs = limbs_for(k);
    let mut out = vec![0u64; limbs];
    let mut carry = 0u64;
    for (i, o) in out.iter_mut().enumerate() {
        let (s1, c1) = a
            .get(i)
            .copied()
            .unwrap_or(0)
            .overflowing_add(b.get(i).copied().unwrap_or(0));
        let (s2, c2) = s1.overflowing_add(carry);
        *o = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    mask_to_width(&mut out, k);
    out
}

/// `(a * b) mod 2^k` (schoolbook; `O(limbs²)`).
pub fn mul(a: &[u64], b: &[u64], k: usize) -> Vec<u64> {
    let limbs = limbs_for(k);
    let mut out = vec![0u64; limbs];
    for i in 0..limbs.min(a.len()) {
        if a[i] == 0 {
            continue;
        }
        let mut carry = 0u128;
        for j in 0..limbs - i {
            let bj = b.get(j).copied().unwrap_or(0);
            let cur = out[i + j] as u128 + (a[i] as u128) * (bj as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
    }
    mask_to_width(&mut out, k);
    out
}

/// `true` iff all `k` bits are zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&w| w == 0)
}

/// A `k`-bit string from a small unsigned value.
pub fn from_u64(v: u64, k: usize) -> Vec<u64> {
    normalize(vec![v], k)
}

/// Reads bit `i` (zero beyond the stored limbs).
pub fn bit(a: &[u64], i: usize) -> bool {
    a.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limb_counts() {
        assert_eq!(limbs_for(1), 1);
        assert_eq!(limbs_for(64), 1);
        assert_eq!(limbs_for(65), 2);
        assert_eq!(limbs_for(128), 2);
        assert_eq!(limbs_for(0), 1);
    }

    #[test]
    fn mask_clears_high_bits() {
        let mut w = vec![u64::MAX, u64::MAX];
        mask_to_width(&mut w, 70);
        assert_eq!(w, vec![u64::MAX, 0x3f]);
        let mut x = vec![u64::MAX];
        mask_to_width(&mut x, 64);
        assert_eq!(x, vec![u64::MAX]);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = vec![u64::MAX];
        let b = vec![1];
        assert_eq!(add(&a, &b, 128), vec![0, 1]);
        // Modulo 64 bits: wraps to zero.
        assert_eq!(add(&a, &b, 64), vec![0]);
    }

    #[test]
    fn mul_matches_small_cases() {
        assert_eq!(mul(&[7], &[6], 64), vec![42]);
        // (2^64 - 1)^2 mod 2^128 = 2^128 - 2^65 + 1.
        let sq = mul(&[u64::MAX], &[u64::MAX], 128);
        assert_eq!(sq, vec![1, u64::MAX - 1]);
        // Multiplying by 2 shifts.
        let x = vec![1u64 << 63];
        assert_eq!(mul(&x, &[2], 128), vec![0, 1]);
        assert_eq!(mul(&x, &[2], 64), vec![0], "overflow drops mod 2^64");
    }

    #[test]
    fn mul_by_two_repeatedly_reaches_zero_at_width() {
        // This is exactly the fetch&multiply wakeup mechanism: starting
        // from 1, the n-th doubling mod 2^n is 0.
        let k = 130;
        let mut v = from_u64(1, k);
        for _ in 0..k {
            v = mul(&v, &[2], k);
        }
        assert!(is_zero(&v));
    }

    #[test]
    fn and_or_width_masking() {
        let a = vec![0b1100, 0xff];
        let b = vec![0b1010, 0xff];
        assert_eq!(and(&a, &b, 128), vec![0b1000, 0xff]);
        assert_eq!(or(&a, &b, 4), vec![0b1110]);
    }

    #[test]
    fn complement_flips_one_bit() {
        let a = from_u64(0, 70);
        let c = complement_bit(&a, 69, 70);
        assert!(bit(&c, 69));
        assert!(!bit(&c, 68));
        let back = complement_bit(&c, 69, 70);
        assert!(is_zero(&back));
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn complement_out_of_width_panics() {
        complement_bit(&[0], 64, 64);
    }

    #[test]
    fn zero_detection() {
        assert!(is_zero(&[0, 0]));
        assert!(!is_zero(&[0, 1]));
        assert!(is_zero(&[]));
    }

    #[test]
    fn normalize_resizes_and_masks() {
        assert_eq!(normalize(vec![u64::MAX], 4), vec![0xf]);
        assert_eq!(normalize(vec![], 65), vec![0, 0]);
        assert_eq!(normalize(vec![1, 2, 3], 64), vec![1]);
    }
}
