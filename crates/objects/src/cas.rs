//! A compare&swap register object.
//!
//! Mentioned throughout the paper's introduction and open problems:
//! compare&swap has a *constant-time* implementation from LL/SC — but only
//! by exploiting its semantics; no oblivious universal construction can
//! produce one (that is the point of the lower bound). The direct
//! implementation lives in `llsc-universal`; this module is its sequential
//! specification.

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_CAS: i64 = 40;
const TAG_READ: i64 = 41;

/// A compare&swap register: `cas(expected, new)` installs `new` iff the
/// state equals `expected`, returning the previous state either way;
/// `read()` returns the state.
///
/// # Examples
///
/// ```
/// use llsc_objects::{CasRegister, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let c = CasRegister::with_initial(Value::from(0i64));
/// let op = CasRegister::cas_op(Value::from(0i64), Value::from(1i64));
/// let (s, prev) = c.apply(&c.initial(), &op);
/// assert_eq!(prev, Value::from(0i64));
/// assert_eq!(s, Value::from(1i64));
/// // A stale CAS fails but still reports the current value.
/// let (s2, prev2) = c.apply(&s, &op);
/// assert_eq!(prev2, Value::from(1i64));
/// assert_eq!(s2, s);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CasRegister {
    initial: Value,
}

impl CasRegister {
    /// A CAS register initially holding [`Value::Unit`].
    pub fn new() -> Self {
        CasRegister::default()
    }

    /// A CAS register initially holding `v`.
    pub fn with_initial(v: Value) -> Self {
        CasRegister { initial: v }
    }

    /// `cas(expected, new)`.
    pub fn cas_op(expected: Value, new: Value) -> Value {
        encode_op(TAG_CAS, [expected, new])
    }

    /// `read()`.
    pub fn read_op() -> Value {
        encode_op(TAG_READ, [])
    }
}

impl ObjectSpec for CasRegister {
    fn name(&self) -> String {
        "cas-register".into()
    }

    fn initial(&self) -> Value {
        self.initial.clone()
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        match op_tag(op) {
            Some(t) if t == i128::from(TAG_CAS) => {
                let expected = op_arg(op, 0).expect("cas expected");
                let new = op_arg(op, 1).expect("cas new");
                if state == expected {
                    (new.clone(), state.clone())
                } else {
                    (state.clone(), state.clone())
                }
            }
            Some(t) if t == i128::from(TAG_READ) => (state.clone(), state.clone()),
            _ => panic!("bad cas op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_cas_installs() {
        let c = CasRegister::with_initial(Value::from(0i64));
        let (s, prev) = c.apply(
            &c.initial(),
            &CasRegister::cas_op(Value::from(0i64), Value::from(7i64)),
        );
        assert_eq!(prev, Value::from(0i64));
        assert_eq!(s, Value::from(7i64));
    }

    #[test]
    fn failed_cas_leaves_state() {
        let c = CasRegister::with_initial(Value::from(0i64));
        let (s, prev) = c.apply(
            &c.initial(),
            &CasRegister::cas_op(Value::from(9i64), Value::from(7i64)),
        );
        assert_eq!(prev, Value::from(0i64));
        assert_eq!(s, Value::from(0i64));
    }

    #[test]
    fn only_one_of_n_contending_cas_succeeds() {
        // The classic consensus-like usage: everyone CASes from Unit to
        // their own id; exactly the first succeeds.
        let c = CasRegister::new();
        let mut s = c.initial();
        let mut winners = 0;
        for i in 0..5 {
            let before = s.clone();
            let (next, _) = c.apply(&s, &CasRegister::cas_op(Value::Unit, Value::from(i as i64)));
            if next != before {
                winners += 1;
            }
            s = next;
        }
        assert_eq!(winners, 1);
        assert_eq!(s, Value::from(0i64));
    }

    #[test]
    fn read_is_pure() {
        let c = CasRegister::with_initial(Value::from(3i64));
        let (s, v) = c.apply(&c.initial(), &CasRegister::read_op());
        assert_eq!(s, Value::from(3i64));
        assert_eq!(v, Value::from(3i64));
    }

    #[test]
    #[should_panic(expected = "bad cas op")]
    fn rejects_foreign_op() {
        CasRegister::new().apply(&Value::Unit, &Value::Unit);
    }
}
