//! A (single-shot) consensus object.
//!
//! Consensus underpins the related-work bounds the paper cites (Fich–
//! Herlihy–Shavit's Ω(√n) space bound, Aspnes's time bound, and the
//! Jayanti–Tan–Toueg Ω(n) bound for consensus-based oblivious universal
//! constructions). `propose(v)` decides the first proposed value and
//! returns the decision.

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_PROPOSE: i64 = 50;

/// A consensus object: the first `propose(v)` fixes the decision to `v`;
/// every `propose` returns the decided value.
///
/// State: [`Value::Unit`] while undecided, then `(decided,)`.
///
/// # Examples
///
/// ```
/// use llsc_objects::{Consensus, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let c = Consensus::new();
/// let (s, d1) = c.apply(&c.initial(), &Consensus::propose_op(Value::from(4i64)));
/// let (_, d2) = c.apply(&s, &Consensus::propose_op(Value::from(9i64)));
/// assert_eq!(d1, Value::from(4i64));
/// assert_eq!(d2, Value::from(4i64), "agreement");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Consensus;

impl Consensus {
    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        Consensus
    }

    /// `propose(v)`.
    pub fn propose_op(v: Value) -> Value {
        encode_op(TAG_PROPOSE, [v])
    }
}

impl ObjectSpec for Consensus {
    fn name(&self) -> String {
        "consensus".into()
    }

    fn initial(&self) -> Value {
        Value::Unit
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(op_tag(op), Some(i128::from(TAG_PROPOSE)), "bad op {op}");
        let v = op_arg(op, 0).expect("propose argument");
        match state {
            Value::Unit => {
                let decided = Value::tuple([v.clone()]);
                (decided, v.clone())
            }
            decided => {
                let d = decided.index(0).expect("decided state").clone();
                (decided.clone(), d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_wins_validity_and_agreement() {
        let c = Consensus::new();
        let mut s = c.initial();
        let mut decisions = Vec::new();
        for i in [5i64, 3, 8] {
            let (next, d) = c.apply(&s, &Consensus::propose_op(Value::from(i)));
            s = next;
            decisions.push(d);
        }
        // Agreement: all equal. Validity: the decision was proposed first.
        assert!(decisions.iter().all(|d| d == &Value::from(5i64)));
    }

    #[test]
    fn unit_can_not_be_confused_with_decided_unit() {
        // Deciding on a tuple value still works because the decided state
        // wraps the value.
        let c = Consensus::new();
        let v = Value::empty_tuple();
        let (s, d) = c.apply(&c.initial(), &Consensus::propose_op(v.clone()));
        assert_eq!(d, v);
        let (_, d2) = c.apply(&s, &Consensus::propose_op(Value::from(1i64)));
        assert_eq!(d2, v);
    }

    #[test]
    #[should_panic(expected = "bad op")]
    fn rejects_foreign_op() {
        Consensus::new().apply(&Value::Unit, &Value::Unit);
    }
}
