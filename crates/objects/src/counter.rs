//! A `k`-bit read/increment counter.
//!
//! This is the fourth object class of Theorem 6.2: `increment` adds 1 and
//! returns only an acknowledgement, `read` returns the state. Because
//! detecting "everyone is up" now takes *two* operations per process
//! (increment, then read), the derived wakeup bound is `(1/2)·c·log₄ n`
//! rather than `c·log₄ n` — which is why the paper states the constant
//! separately for this case.

use crate::seqspec::{encode_op, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_INCREMENT: i64 = 20;
const TAG_READ: i64 = 21;

/// A `k`-bit counter supporting `increment` (ack-only) and `read`.
///
/// # Examples
///
/// ```
/// use llsc_objects::{Counter, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let c = Counter::new(16);
/// let (s, ack) = c.apply(&c.initial(), &Counter::increment_op());
/// assert_eq!(ack, Value::Unit);
/// let (_, v) = c.apply(&s, &Counter::read_op());
/// assert_eq!(v, Value::from(1i64));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter {
    k: u32,
}

impl Counter {
    /// Creates a `k`-bit counter, initially 0.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 126`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0 && k <= 126, "k = {k} out of supported range 1..=126");
        Counter { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> u32 {
        self.k
    }

    /// `increment()`: adds 1 modulo `2^k`, returns `ack`.
    pub fn increment_op() -> Value {
        encode_op(TAG_INCREMENT, [])
    }

    /// `read()`: returns the state, unchanged.
    pub fn read_op() -> Value {
        encode_op(TAG_READ, [])
    }
}

impl ObjectSpec for Counter {
    fn name(&self) -> String {
        format!("counter(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::from(0i64)
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        let s = state.as_int().expect("counter state is an int");
        match op_tag(op) {
            Some(t) if t == i128::from(TAG_INCREMENT) => {
                (Value::Int((s + 1) % (1i128 << self.k)), Value::Unit)
            }
            Some(t) if t == i128::from(TAG_READ) => (state.clone(), state.clone()),
            _ => panic!("bad counter op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn increment_acks_and_read_observes() {
        let c = Counter::new(8);
        let ops = vec![
            Counter::increment_op(),
            Counter::increment_op(),
            Counter::read_op(),
        ];
        let (state, resps) = apply_all(&c, &ops);
        assert_eq!(state, Value::from(2i64));
        assert_eq!(resps, vec![Value::Unit, Value::Unit, Value::from(2i64)]);
    }

    #[test]
    fn read_does_not_mutate() {
        let c = Counter::new(8);
        let (s, _) = c.apply(&c.initial(), &Counter::read_op());
        assert_eq!(s, c.initial());
    }

    #[test]
    fn wraps_at_width() {
        let c = Counter::new(1);
        let (s, _) = c.apply(&Value::from(1i64), &Counter::increment_op());
        assert_eq!(s, Value::from(0i64));
    }

    #[test]
    fn theorem_6_2_two_op_wakeup_shape() {
        // n increments then a read: the read sees n — the two-operation
        // wakeup detection.
        let n = 12;
        let c = Counter::new(16);
        let mut ops: Vec<Value> = (0..n).map(|_| Counter::increment_op()).collect();
        ops.push(Counter::read_op());
        let (_, resps) = apply_all(&c, &ops);
        assert_eq!(resps.last().unwrap(), &Value::from(n as i64));
    }

    #[test]
    #[should_panic(expected = "bad counter op")]
    fn rejects_foreign_op() {
        let c = Counter::new(4);
        c.apply(&c.initial(), &crate::queue::Queue::dequeue_op());
    }
}
