//! Additional object types from the paper's related-work and open-problems
//! discussion: `fetch&add` and the `swap` object.
//!
//! * **fetch&add** — Moir's observation (cited in Section 2) is that the
//!   Anderson and Cypher results already rule out constant-time fetch&add
//!   from LL/SC; and the open-problems section asks whether the `Ω(log n)`
//!   bound survives when the memory itself supports fetch&add. The type is
//!   needed to state either question executably.
//! * **swap object** — Cypher's lower bound (also Section 2) concerns the
//!   swap *object* (get-and-set as an object type, as opposed to the
//!   memory's `swap` instruction).
//!
//! Both solve wakeup in one operation per process the same way
//! fetch&increment does, so the Theorem 6.2 recipe applies to them too
//! (the tests demonstrate it; the shipped reduction table sticks to the
//! paper's own eight cases).

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_FETCH_ADD: i64 = 60;
const TAG_SWAP: i64 = 61;

/// A `k`-bit fetch&add object: `fetch&add(v)` adds `v` modulo `2^k` and
/// returns the previous state.
///
/// # Examples
///
/// ```
/// use llsc_objects::{FetchAdd, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let obj = FetchAdd::new(16);
/// let (s, prev) = obj.apply(&obj.initial(), &FetchAdd::op(5));
/// assert_eq!(prev, Value::from(0i64));
/// assert_eq!(s, Value::from(5i64));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchAdd {
    k: u32,
}

impl FetchAdd {
    /// Creates a `k`-bit fetch&add object, initially 0.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 126`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0 && k <= 126, "k = {k} out of supported range 1..=126");
        FetchAdd { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> u32 {
        self.k
    }

    /// `fetch&add(v)`.
    pub fn op(v: i64) -> Value {
        encode_op(TAG_FETCH_ADD, [Value::from(v)])
    }
}

impl ObjectSpec for FetchAdd {
    fn name(&self) -> String {
        format!("fetch&add(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::from(0i64)
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(op_tag(op), Some(i128::from(TAG_FETCH_ADD)), "bad op {op}");
        let s = state.as_int().expect("fetch&add state is an int");
        let v = op_arg(op, 0).and_then(Value::as_int).expect("addend");
        let modulus = 1i128 << self.k;
        (Value::Int((s + v).rem_euclid(modulus)), Value::Int(s))
    }
}

/// A swap object (get-and-set): `swap(v)` installs `v` and returns the
/// previous state.
///
/// # Examples
///
/// ```
/// use llsc_objects::{SwapObject, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let obj = SwapObject::with_initial(Value::from(1i64));
/// let (s, prev) = obj.apply(&obj.initial(), &SwapObject::op(Value::from(2i64)));
/// assert_eq!(prev, Value::from(1i64));
/// assert_eq!(s, Value::from(2i64));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapObject {
    initial: Value,
}

impl SwapObject {
    /// A swap object initially holding [`Value::Unit`].
    pub fn new() -> Self {
        SwapObject::default()
    }

    /// A swap object initially holding `v`.
    pub fn with_initial(v: Value) -> Self {
        SwapObject { initial: v }
    }

    /// `swap(v)`.
    pub fn op(v: Value) -> Value {
        encode_op(TAG_SWAP, [v])
    }
}

impl ObjectSpec for SwapObject {
    fn name(&self) -> String {
        "swap-object".into()
    }

    fn initial(&self) -> Value {
        self.initial.clone()
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(op_tag(op), Some(i128::from(TAG_SWAP)), "bad op {op}");
        let v = op_arg(op, 0).expect("swap argument").clone();
        (v, state.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn fetch_add_accumulates_and_wraps() {
        let obj = FetchAdd::new(4);
        let ops = vec![FetchAdd::op(7), FetchAdd::op(7), FetchAdd::op(7)];
        let (state, resps) = apply_all(&obj, &ops);
        assert_eq!(state, Value::from(5i64), "21 mod 16");
        assert_eq!(
            resps,
            vec![Value::from(0i64), Value::from(7i64), Value::from(14i64)]
        );
    }

    #[test]
    fn fetch_add_handles_negative_addends() {
        let obj = FetchAdd::new(8);
        let (s, _) = obj.apply(&Value::from(3i64), &FetchAdd::op(-5));
        assert_eq!(s, Value::from(254i64), "-2 mod 256");
    }

    #[test]
    fn fetch_add_with_one_is_fetch_increment() {
        let add = FetchAdd::new(8);
        let inc = crate::FetchIncrement::new(8);
        let mut sa = add.initial();
        let mut si = inc.initial();
        for _ in 0..10 {
            let (na, ra) = add.apply(&sa, &FetchAdd::op(1));
            let (ni, ri) = inc.apply(&si, &crate::FetchIncrement::op());
            assert_eq!(ra, ri);
            sa = na;
            si = ni;
        }
        assert_eq!(sa, si);
    }

    #[test]
    fn swap_object_chains_values() {
        let obj = SwapObject::with_initial(Value::from(0i64));
        let ops: Vec<Value> = (1..=3)
            .map(|i| SwapObject::op(Value::from(i as i64)))
            .collect();
        let (state, resps) = apply_all(&obj, &ops);
        assert_eq!(state, Value::from(3i64));
        assert_eq!(
            resps,
            vec![Value::from(0i64), Value::from(1i64), Value::from(2i64)]
        );
    }

    #[test]
    fn swap_object_solves_wakeup_like_a_chain() {
        // The swap-object wakeup idea behind Cypher's bound: initialise to
        // a token; each process swaps in its id; whoever receives the token
        // after all n swaps... a single token does NOT identify the last
        // process — which is why swap needs Cypher's separate argument and
        // is not among the Theorem 6.2 one-shot reductions. This test
        // documents the distinction: responses identify predecessors, not
        // completion.
        let obj = SwapObject::with_initial(Value::from(-1i64));
        let ops: Vec<Value> = (0..4)
            .map(|i| SwapObject::op(Value::from(i as i64)))
            .collect();
        let (_, resps) = apply_all(&obj, &ops);
        // Every response is the immediate predecessor only.
        assert_eq!(
            resps,
            vec![
                Value::from(-1i64),
                Value::from(0i64),
                Value::from(1i64),
                Value::from(2i64)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "bad op")]
    fn cross_ops_rejected() {
        FetchAdd::new(8).apply(&Value::from(0i64), &SwapObject::op(Value::Unit));
    }
}
