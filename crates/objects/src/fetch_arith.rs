//! Arithmetic fetch-objects: `fetch&increment` and `fetch&multiply`.
//!
//! Theorem 6.2 proves the Ω(log n) bound for a `k`-bit fetch&increment
//! object for any `k ≥ log n`, and for a `k`-bit fetch&multiply object for
//! any `k ≥ n`. Both are *closed* objects in the sense of Chandra–Jayanti–
//! Tan (their operations commute or overwrite), which is why the paper's
//! related-work section can point at an `O(log² n)` upper bound for them.

use crate::bits;
use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_FETCH_INCREMENT: i64 = 1;
const TAG_FETCH_MULTIPLY: i64 = 2;

/// A `k`-bit fetch&increment object: `fetch&increment()` adds one to the
/// state modulo `2^k` and returns the previous state.
///
/// State and responses are `Value::Int` (the paper only needs
/// `k ≥ log n`, so 126 bits is ample).
///
/// # Examples
///
/// ```
/// use llsc_objects::{FetchIncrement, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let obj = FetchIncrement::new(8);
/// let (s1, r1) = obj.apply(&obj.initial(), &FetchIncrement::op());
/// assert_eq!(r1, Value::from(0i64));
/// assert_eq!(s1, Value::from(1i64));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchIncrement {
    k: u32,
}

impl FetchIncrement {
    /// Creates a `k`-bit fetch&increment object.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 126` (the state is stored in an `i128`;
    /// the paper's instantiation only needs `k ≥ log n`).
    pub fn new(k: u32) -> Self {
        assert!(k > 0 && k <= 126, "k = {k} out of supported range 1..=126");
        FetchIncrement { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> u32 {
        self.k
    }

    /// The (only) operation: `fetch&increment()`.
    pub fn op() -> Value {
        encode_op(TAG_FETCH_INCREMENT, [])
    }
}

impl ObjectSpec for FetchIncrement {
    fn name(&self) -> String {
        format!("fetch&increment(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::from(0i64)
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(
            op_tag(op),
            Some(i128::from(TAG_FETCH_INCREMENT)),
            "bad op {op}"
        );
        let s = state.as_int().expect("fetch&increment state is an int");
        let modulus = 1i128 << self.k;
        (Value::Int((s + 1) % modulus), Value::Int(s))
    }
}

/// A `k`-bit fetch&multiply object: `fetch&multiply(v)` changes the state
/// to `(s · v) mod 2^k` and returns `s`.
///
/// State and responses are `Value::Bits` of width `k` (Theorem 6.2 needs
/// `k ≥ n`, far beyond machine words).
///
/// # Examples
///
/// ```
/// use llsc_objects::{FetchMultiply, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let obj = FetchMultiply::new(256);
/// // The Theorem 6.2 wakeup use: initialise to 1, everyone multiplies by 2;
/// // after n = 256 doublings the state is 0.
/// let mut s = obj.initial();
/// for _ in 0..256 {
///     let (next, _prev) = obj.apply(&s, &FetchMultiply::op(2));
///     s = next;
/// }
/// assert_eq!(s, Value::zero_bits(4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchMultiply {
    k: usize,
}

impl FetchMultiply {
    /// Creates a `k`-bit fetch&multiply object with initial state 1.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        FetchMultiply { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> usize {
        self.k
    }

    /// The operation `fetch&multiply(v)` for a small multiplier.
    pub fn op(v: u64) -> Value {
        encode_op(TAG_FETCH_MULTIPLY, [Value::bits(vec![v])])
    }

    /// The operation `fetch&multiply(v)` for a full-width multiplier.
    pub fn op_wide(v: Vec<u64>) -> Value {
        encode_op(TAG_FETCH_MULTIPLY, [Value::bits(v)])
    }
}

impl ObjectSpec for FetchMultiply {
    fn name(&self) -> String {
        format!("fetch&multiply(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::bits(bits::from_u64(1, self.k))
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(
            op_tag(op),
            Some(i128::from(TAG_FETCH_MULTIPLY)),
            "bad op {op}"
        );
        let s = state.as_bits().expect("fetch&multiply state is bits");
        let v = op_arg(op, 0)
            .and_then(Value::as_bits)
            .expect("fetch&multiply argument is bits");
        let next = bits::mul(s, v, self.k);
        (
            Value::bits(next),
            Value::bits(bits::normalize(s.to_vec(), self.k)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn fetch_increment_counts_and_returns_previous() {
        let obj = FetchIncrement::new(10);
        let ops: Vec<Value> = (0..5).map(|_| FetchIncrement::op()).collect();
        let (state, resps) = apply_all(&obj, &ops);
        assert_eq!(state, Value::from(5i64));
        let got: Vec<i128> = resps.iter().map(|r| r.as_int().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fetch_increment_wraps_at_width() {
        let obj = FetchIncrement::new(2);
        let ops: Vec<Value> = (0..4).map(|_| FetchIncrement::op()).collect();
        let (state, _) = apply_all(&obj, &ops);
        assert_eq!(state, Value::from(0i64), "2-bit counter wraps at 4");
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn zero_width_increment_rejected() {
        FetchIncrement::new(0);
    }

    #[test]
    #[should_panic(expected = "bad op")]
    fn fetch_increment_rejects_foreign_ops() {
        let obj = FetchIncrement::new(4);
        obj.apply(&obj.initial(), &FetchMultiply::op(2));
    }

    #[test]
    fn fetch_multiply_theorem_6_2_wakeup_shape() {
        // k = n: after exactly n multiplications by 2, and not before, the
        // response is 0 for nobody and the *last* multiplier sees 2^(n-1).
        let n = 100;
        let obj = FetchMultiply::new(n);
        let mut s = obj.initial();
        let mut last_resp = Value::Unit;
        for _ in 0..n {
            let (next, resp) = obj.apply(&s, &FetchMultiply::op(2));
            s = next;
            last_resp = resp;
        }
        // The n-th multiplier saw 2^(n-1) ≠ 0; everyone before saw smaller
        // nonzero powers; the state is now 0.
        assert_eq!(s, Value::bits(bits::from_u64(0, n)));
        let resp_bits = last_resp.as_bits().unwrap();
        assert!(bits::bit(resp_bits, n - 1));
        assert!(!bits::is_zero(resp_bits));
    }

    #[test]
    fn fetch_multiply_returns_previous_state() {
        let obj = FetchMultiply::new(64);
        let (s1, r1) = obj.apply(&obj.initial(), &FetchMultiply::op(3));
        assert_eq!(r1, Value::bits(vec![1]));
        let (_, r2) = obj.apply(&s1, &FetchMultiply::op(5));
        assert_eq!(r2, Value::bits(vec![3]));
    }

    #[test]
    fn fetch_multiply_wide_arguments() {
        let obj = FetchMultiply::new(128);
        let big = FetchMultiply::op_wide(vec![0, 1]); // 2^64
        let (s, _) = obj.apply(&obj.initial(), &big);
        assert_eq!(s, Value::bits(vec![0, 1]));
    }

    #[test]
    fn names_include_width() {
        assert_eq!(FetchIncrement::new(8).name(), "fetch&increment(k=8)");
        assert_eq!(FetchMultiply::new(9).name(), "fetch&multiply(k=9)");
        assert_eq!(FetchIncrement::new(8).width(), 8);
        assert_eq!(FetchMultiply::new(9).width(), 9);
    }
}
