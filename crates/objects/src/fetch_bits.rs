//! Bitwise fetch-objects: `fetch&and`, `fetch&or`, and
//! `fetch&complement`.
//!
//! Theorem 6.2 proves the Ω(log n) bound for `k`-bit objects supporting any
//! one of these operations with `k ≥ n`: each process owns one bit, so a
//! single returned word reveals exactly which processes have already
//! operated — the wakeup reduction in `llsc-wakeup` exploits precisely
//! that.

use crate::bits;
use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_FETCH_AND: i64 = 3;
const TAG_FETCH_OR: i64 = 4;
const TAG_FETCH_COMPLEMENT: i64 = 5;

/// A `k`-bit fetch&and object: `fetch&and(v)` replaces the state `s` by
/// `s & v` and returns `s`. Initial state: all ones (the Theorem 6.2
/// initialisation).
///
/// # Examples
///
/// ```
/// use llsc_objects::{FetchAnd, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let obj = FetchAnd::new(128);
/// // Process i clears its own bit:
/// let (s, prev) = obj.apply(&obj.initial(), &FetchAnd::op_clear_bit(5, 128));
/// assert_eq!(prev, Value::ones_bits(2));
/// assert_eq!(s.bit(5), Some(false));
/// assert_eq!(s.bit(6), Some(true));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchAnd {
    k: usize,
}

impl FetchAnd {
    /// Creates a `k`-bit fetch&and object, initially all ones.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        FetchAnd { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> usize {
        self.k
    }

    /// `fetch&and(v)` with an explicit mask.
    pub fn op(v: Vec<u64>) -> Value {
        encode_op(TAG_FETCH_AND, [Value::bits(v)])
    }

    /// The Theorem 6.2 per-process mask: all ones except bit `i`.
    pub fn op_clear_bit(i: usize, k: usize) -> Value {
        assert!(i < k, "bit {i} out of width {k}");
        let mut mask = bits::normalize(vec![u64::MAX; bits::limbs_for(k)], k);
        mask[i / 64] &= !(1u64 << (i % 64));
        Self::op(mask)
    }
}

impl ObjectSpec for FetchAnd {
    fn name(&self) -> String {
        format!("fetch&and(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::bits(bits::normalize(
            vec![u64::MAX; bits::limbs_for(self.k)],
            self.k,
        ))
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(op_tag(op), Some(i128::from(TAG_FETCH_AND)), "bad op {op}");
        let s = state
            .as_bits()
            .expect("fetch&and state register must hold a Bits value (set by initial())");
        let v = op_arg(op, 0)
            .and_then(Value::as_bits)
            .expect("fetch&and/fetch&or operations carry exactly one Bits argument");
        (
            Value::bits(bits::and(s, v, self.k)),
            Value::bits(bits::normalize(s.to_vec(), self.k)),
        )
    }
}

/// A `k`-bit fetch&or object: `fetch&or(v)` replaces `s` by `s | v` and
/// returns `s`. Initial state: all zeros.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchOr {
    k: usize,
}

impl FetchOr {
    /// Creates a `k`-bit fetch&or object, initially all zeros.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        FetchOr { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> usize {
        self.k
    }

    /// `fetch&or(v)` with an explicit mask.
    pub fn op(v: Vec<u64>) -> Value {
        encode_op(TAG_FETCH_OR, [Value::bits(v)])
    }

    /// The per-process mask: only bit `i` set.
    pub fn op_set_bit(i: usize, k: usize) -> Value {
        assert!(i < k, "bit {i} out of width {k}");
        let mut mask = vec![0u64; bits::limbs_for(k)];
        mask[i / 64] |= 1u64 << (i % 64);
        Self::op(mask)
    }
}

impl ObjectSpec for FetchOr {
    fn name(&self) -> String {
        format!("fetch&or(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::bits(vec![0; bits::limbs_for(self.k)])
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(op_tag(op), Some(i128::from(TAG_FETCH_OR)), "bad op {op}");
        let s = state
            .as_bits()
            .expect("fetch&or state register must hold a Bits value (set by initial())");
        let v = op_arg(op, 0)
            .and_then(Value::as_bits)
            .expect("fetch&and/fetch&or operations carry exactly one Bits argument");
        (
            Value::bits(bits::or(s, v, self.k)),
            Value::bits(bits::normalize(s.to_vec(), self.k)),
        )
    }
}

/// A `k`-bit fetch&complement object: `fetch&complement(i)` flips bit `i`
/// of the state and returns the previous state. Initial state: all zeros.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchComplement {
    k: usize,
}

impl FetchComplement {
    /// Creates a `k`-bit fetch&complement object, initially all zeros.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        FetchComplement { k }
    }

    /// The object's width in bits.
    pub fn width(&self) -> usize {
        self.k
    }

    /// `fetch&complement(i)`: flip bit `i` (0-based).
    pub fn op(i: usize) -> Value {
        encode_op(TAG_FETCH_COMPLEMENT, [Value::from(i)])
    }
}

impl ObjectSpec for FetchComplement {
    fn name(&self) -> String {
        format!("fetch&complement(k={})", self.k)
    }

    fn initial(&self) -> Value {
        Value::bits(vec![0; bits::limbs_for(self.k)])
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        assert_eq!(
            op_tag(op),
            Some(i128::from(TAG_FETCH_COMPLEMENT)),
            "bad op {op}"
        );
        let s = state
            .as_bits()
            .expect("fetch&complement state register must hold a Bits value (set by initial())");
        let i = op_arg(op, 0)
            .and_then(Value::as_int)
            .expect("fetch&complement operations carry exactly one integer bit-index argument")
            as usize;
        (
            Value::bits(bits::complement_bit(s, i, self.k)),
            Value::bits(bits::normalize(s.to_vec(), self.k)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn fetch_and_theorem_6_2_shape() {
        // n processes each clear their own bit; the process whose response
        // has zeros in all first-n bits except its own is the last one.
        let n = 70;
        let obj = FetchAnd::new(n);
        let ops: Vec<Value> = (0..n).map(|i| FetchAnd::op_clear_bit(i, n)).collect();
        let (state, resps) = apply_all(&obj, &ops);
        assert!(bits::is_zero(state.as_bits().unwrap()));
        // The last response has exactly one bit set (its own).
        let last = resps.last().unwrap().as_bits().unwrap();
        let ones = (0..n).filter(|&i| bits::bit(last, i)).count();
        assert_eq!(ones, 1);
        assert!(bits::bit(last, n - 1));
        // Every earlier response has ≥ 2 bits set.
        for r in &resps[..n - 1] {
            let rb = r.as_bits().unwrap();
            assert!((0..n).filter(|&i| bits::bit(rb, i)).count() >= 2);
        }
    }

    #[test]
    fn fetch_or_accumulates_bits() {
        let n = 67;
        let obj = FetchOr::new(n);
        let ops: Vec<Value> = (0..n).map(|i| FetchOr::op_set_bit(i, n)).collect();
        let (state, resps) = apply_all(&obj, &ops);
        let sb = state.as_bits().unwrap();
        assert!((0..n).all(|i| bits::bit(sb, i)));
        // The last responder sees everyone else's bit.
        let last = resps.last().unwrap().as_bits().unwrap();
        assert_eq!((0..n).filter(|&i| bits::bit(last, i)).count(), n - 1);
    }

    #[test]
    fn fetch_complement_is_an_involution() {
        let obj = FetchComplement::new(80);
        let (s1, r1) = obj.apply(&obj.initial(), &FetchComplement::op(79));
        assert!(bits::is_zero(r1.as_bits().unwrap()));
        assert!(s1.bit(79).unwrap());
        let (s2, r2) = obj.apply(&s1, &FetchComplement::op(79));
        assert_eq!(r2, s1);
        assert!(bits::is_zero(s2.as_bits().unwrap()));
    }

    #[test]
    fn responses_are_previous_states() {
        let obj = FetchOr::new(64);
        let (s1, r1) = obj.apply(&obj.initial(), &FetchOr::op(vec![0b01]));
        assert_eq!(r1, obj.initial());
        let (_, r2) = obj.apply(&s1, &FetchOr::op(vec![0b10]));
        assert_eq!(r2, s1);
    }

    #[test]
    fn masks_are_width_limited() {
        let obj = FetchOr::new(4);
        let (s, _) = obj.apply(&obj.initial(), &FetchOr::op(vec![u64::MAX]));
        assert_eq!(s, Value::bits(vec![0xf]));
    }

    #[test]
    #[should_panic(expected = "out of width")]
    fn clear_bit_out_of_width_panics() {
        FetchAnd::op_clear_bit(8, 8);
    }

    #[test]
    fn names_include_width() {
        assert_eq!(FetchAnd::new(8).name(), "fetch&and(k=8)");
        assert_eq!(FetchOr::new(8).name(), "fetch&or(k=8)");
        assert_eq!(FetchComplement::new(8).name(), "fetch&complement(k=8)");
    }

    #[test]
    fn cross_object_ops_rejected() {
        let and = FetchAnd::new(8);
        let or_op = FetchOr::op_set_bit(1, 8);
        let result = std::panic::catch_unwind(|| and.apply(&and.initial(), &or_op));
        assert!(result.is_err());
    }
}
