//! Concurrent histories of operations on a shared object.
//!
//! A history records invocation and response events with a logical clock;
//! the real-time precedence order it induces is what linearizability (the
//! paper's correctness condition for implementations, after Herlihy & Wing)
//! is defined against.

use llsc_shmem::{ProcessId, Value};
use std::fmt;

/// An opaque handle to one operation instance within a [`History`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(usize);

impl OpId {
    /// The operation's index in [`History::records`].
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds the handle for the operation at `index` — numbering matches
    /// [`History::invoke`] order.
    pub(crate) fn from_index(index: usize) -> OpId {
        OpId(index)
    }
}

/// One operation instance: who invoked what, when, and (if completed)
/// the observed response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// The invoking process.
    pub p: ProcessId,
    /// The invoked operation (in the object's encoding).
    pub op: Value,
    /// The observed response, or `None` while pending.
    pub resp: Option<Value>,
    /// Logical time of the invocation event.
    pub invoked_at: usize,
    /// Logical time of the response event, or `None` while pending.
    pub responded_at: Option<usize>,
}

impl OpRecord {
    /// `true` iff the operation has completed.
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }
}

/// A concurrent history: a sequence of invocation/response events.
///
/// # Examples
///
/// ```
/// use llsc_objects::History;
/// use llsc_shmem::{ProcessId, Value};
///
/// let mut h = History::new();
/// let a = h.invoke(ProcessId(0), Value::from(1i64));
/// let b = h.invoke(ProcessId(1), Value::from(2i64)); // concurrent with a
/// h.respond(a, Value::Unit);
/// h.respond(b, Value::Unit);
/// assert!(h.is_complete());
/// assert!(!h.precedes(a, b) && !h.precedes(b, a));
/// ```
#[derive(Clone, Debug, Default)]
pub struct History {
    clock: usize,
    records: Vec<OpRecord>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records the invocation of `op` by `p`, returning its handle.
    pub fn invoke(&mut self, p: ProcessId, op: Value) -> OpId {
        let id = OpId(self.records.len());
        self.records.push(OpRecord {
            p,
            op,
            resp: None,
            invoked_at: self.clock,
            responded_at: None,
        });
        self.clock += 1;
        id
    }

    /// Records the response of operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` already responded.
    pub fn respond(&mut self, id: OpId, resp: Value) {
        let rec = &mut self.records[id.0];
        assert!(rec.resp.is_none(), "operation {id:?} already responded");
        rec.resp = Some(resp);
        rec.responded_at = Some(self.clock);
        self.clock += 1;
    }

    /// All operation records, in invocation order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// The number of operations (complete or pending).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the history has no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` iff every operation has completed.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(OpRecord::is_complete)
    }

    /// Real-time precedence: `a` completed before `b` was invoked.
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        match self.records[a.0].responded_at {
            Some(ra) => ra < self.records[b.0].invoked_at,
            None => false,
        }
    }

    /// Builds the *sequential* history in which the given `(process, op,
    /// resp)` triples happen one after another — handy for tests.
    pub fn sequential<I>(ops: I) -> Self
    where
        I: IntoIterator<Item = (ProcessId, Value, Value)>,
    {
        let mut h = History::new();
        for (p, op, resp) in ops {
            let id = h.invoke(p, op);
            h.respond(id, resp);
        }
        h
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "history of {} op(s):", self.records.len())?;
        for (i, r) in self.records.iter().enumerate() {
            match (&r.resp, r.responded_at) {
                (Some(resp), Some(t)) => writeln!(
                    f,
                    "  #{i} {}: {} @{} -> {} @{}",
                    r.p, r.op, r.invoked_at, resp, t
                )?,
                _ => writeln!(f, "  #{i} {}: {} @{} (pending)", r.p, r.op, r.invoked_at)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_builder_orders_everything() {
        let h = History::sequential([
            (ProcessId(0), Value::from(1i64), Value::Unit),
            (ProcessId(1), Value::from(2i64), Value::Unit),
        ]);
        assert!(h.is_complete());
        assert_eq!(h.len(), 2);
        let (a, b) = (OpId(0), OpId(1));
        assert!(h.precedes(a, b));
        assert!(!h.precedes(b, a));
    }

    #[test]
    fn overlapping_ops_do_not_precede_each_other() {
        let mut h = History::new();
        let a = h.invoke(ProcessId(0), Value::from(1i64));
        let b = h.invoke(ProcessId(1), Value::from(2i64));
        h.respond(a, Value::Unit);
        h.respond(b, Value::Unit);
        assert!(!h.precedes(a, b));
        assert!(!h.precedes(b, a));
    }

    #[test]
    fn pending_ops_never_precede() {
        let mut h = History::new();
        let a = h.invoke(ProcessId(0), Value::from(1i64));
        let b = h.invoke(ProcessId(1), Value::from(2i64));
        h.respond(b, Value::Unit);
        assert!(!h.is_complete());
        assert!(!h.precedes(a, b));
        assert!(h.records()[a.index()].resp.is_none());
    }

    #[test]
    #[should_panic(expected = "already responded")]
    fn double_respond_panics() {
        let mut h = History::new();
        let a = h.invoke(ProcessId(0), Value::Unit);
        h.respond(a, Value::Unit);
        h.respond(a, Value::Unit);
    }

    #[test]
    fn display_lists_operations() {
        let h = History::sequential([(ProcessId(0), Value::from(1i64), Value::from(2i64))]);
        let s = h.to_string();
        assert!(s.contains("p0"));
        assert!(s.contains("-> 2"));
    }

    #[test]
    fn empty_history_properties() {
        let h = History::new();
        assert!(h.is_empty());
        assert!(h.is_complete());
    }
}
