//! # llsc-objects: sequential object types and linearizability
//!
//! The object types of Jayanti PODC'98 — primarily the Theorem 6.2 family
//! for which the Ω(log n) lower bound is derived — as sequential
//! specifications behind one oblivious interface, [`ObjectSpec`]:
//!
//! | Type | Theorem 6.2 case | Module |
//! |------|------------------|--------|
//! | [`FetchIncrement`] (`k ≥ log n` bits) | 1 | `fetch_arith` |
//! | [`FetchAnd`], [`FetchOr`], [`FetchComplement`], [`FetchMultiply`] (`k ≥ n` bits) | 2 | `fetch_bits`, `fetch_arith` |
//! | [`Queue`], [`Stack`] (initially `n` items) | 3 | `queue`, `stack` |
//! | [`Counter`] (read + ack-only increment) | 4 | `counter` |
//! | [`RwRegister`], [`CasRegister`], [`Consensus`], [`FetchAdd`], [`SwapObject`] | — (baselines / related work) | `register_obj`, `cas`, `consensus`, `extras` |
//!
//! Because the interface is *oblivious* (opaque [`llsc_shmem::Value`]
//! states/ops/responses and a pure `apply`), the universal constructions in
//! `llsc-universal` can be instantiated with any of these without touching
//! their semantics — which is exactly the class of constructions the
//! paper's lower bound speaks about.
//!
//! The crate also provides concurrent [`History`] recording and a
//! Wing–Gong [`check_linearizability`] checker used to validate every
//! implementation the repository ships.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
mod cas;
mod consensus;
mod counter;
mod extras;
mod fetch_arith;
mod fetch_bits;
mod history;
mod linearize;
mod queue;
mod register_obj;
mod seqspec;
mod stack;

pub use cas::CasRegister;
pub use consensus::Consensus;
pub use counter::Counter;
pub use extras::{FetchAdd, SwapObject};
pub use fetch_arith::{FetchIncrement, FetchMultiply};
pub use fetch_bits::{FetchAnd, FetchComplement, FetchOr};
pub use history::{History, OpId, OpRecord};
pub use linearize::{check_linearizability, is_linearizable, LinCheck, MAX_OPS};
pub use queue::{empty_response as queue_empty_response, Queue};
pub use register_obj::RwRegister;
pub use seqspec::{apply_all, encode_op, op_arg, op_tag, ObjectSpec};
pub use stack::{empty_response as stack_empty_response, Stack};
