//! A Wing–Gong linearizability checker.
//!
//! Linearizability (Herlihy & Wing; the paper's `[20]`) is the correctness
//! condition every implementation in this repository is held to: a
//! concurrent history is linearizable iff there is a total order of its
//! operations, consistent with real-time precedence, whose responses match
//! the sequential specification.
//!
//! [`check_linearizability`] performs the classic Wing–Gong depth-first
//! search: repeatedly pick a *minimal* operation (one not preceded by any
//! other remaining operation), apply it to the specification state, match
//! the observed response, and recurse — with memoisation on
//! `(remaining-set, state)` to tame the exponential worst case. Pending
//! operations may linearize with any response, or never take effect.

use crate::history::{History, OpId};
use crate::seqspec::ObjectSpec;
use llsc_shmem::Value;
use std::collections::HashSet;

/// The maximum number of operations the checker accepts (the remaining-set
/// is a `u128` bitmask).
pub const MAX_OPS: usize = 128;

/// The verdict of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinCheck {
    /// The history is linearizable; a witness linearisation order (by
    /// [`OpId`]) is included. Pending operations that never took effect are
    /// absent from the witness.
    Linearizable {
        /// One valid linearisation order.
        witness: Vec<OpId>,
    },
    /// No linearisation exists.
    NotLinearizable,
}

impl LinCheck {
    /// `true` iff the history is linearizable.
    pub fn is_ok(&self) -> bool {
        matches!(self, LinCheck::Linearizable { .. })
    }
}

/// Checks whether `history` is linearizable with respect to `spec`.
///
/// # Panics
///
/// Panics if the history has more than [`MAX_OPS`] operations.
///
/// # Examples
///
/// ```
/// use llsc_objects::{check_linearizability, History, Queue, ObjectSpec};
/// use llsc_shmem::{ProcessId, Value};
///
/// let q = Queue::new();
/// // p0 enqueues 1; later p1 dequeues and gets 1: linearizable.
/// let h = History::sequential([
///     (ProcessId(0), Queue::enqueue_op(Value::from(1i64)), Value::Unit),
///     (ProcessId(1), Queue::dequeue_op(), Value::from(1i64)),
/// ]);
/// assert!(check_linearizability(&q, &h).is_ok());
/// ```
pub fn check_linearizability(spec: &dyn ObjectSpec, history: &History) -> LinCheck {
    let n = history.len();
    assert!(n <= MAX_OPS, "history too large for the checker ({n} ops)");
    if n == 0 {
        return LinCheck::Linearizable { witness: vec![] };
    }

    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut visited: HashSet<(u128, Value)> = HashSet::new();
    let mut witness: Vec<OpId> = Vec::new();

    fn dfs(
        spec: &dyn ObjectSpec,
        history: &History,
        remaining: u128,
        state: &Value,
        visited: &mut HashSet<(u128, Value)>,
        witness: &mut Vec<OpId>,
    ) -> bool {
        // Success once every *complete* operation is linearized; remaining
        // pending ones are deemed to never take effect.
        let mut complete_left = false;
        for i in 0..history.len() {
            if remaining & (1 << i) != 0 && history.records()[i].is_complete() {
                complete_left = true;
                break;
            }
        }
        if !complete_left {
            return true;
        }
        if !visited.insert((remaining, state.clone())) {
            return false;
        }
        for i in 0..history.len() {
            if remaining & (1 << i) == 0 {
                continue;
            }
            let cand = OpId::from_index(i);
            // Minimality: no other remaining op completed before cand's
            // invocation.
            let minimal = (0..history.len()).all(|j| {
                j == i || remaining & (1 << j) == 0 || !history.precedes(OpId::from_index(j), cand)
            });
            if !minimal {
                continue;
            }
            let rec = &history.records()[i];
            let (next_state, resp) = spec.apply(state, &rec.op);
            let resp_ok = match &rec.resp {
                Some(observed) => observed == &resp,
                None => true, // pending: any response is acceptable
            };
            if !resp_ok {
                continue;
            }
            witness.push(cand);
            if dfs(
                spec,
                history,
                remaining & !(1 << i),
                &next_state,
                visited,
                witness,
            ) {
                return true;
            }
            witness.pop();
        }
        false
    }

    if dfs(
        spec,
        history,
        full,
        &spec.initial(),
        &mut visited,
        &mut witness,
    ) {
        LinCheck::Linearizable { witness }
    } else {
        LinCheck::NotLinearizable
    }
}

/// Shorthand for `check_linearizability(..).is_ok()`.
pub fn is_linearizable(spec: &dyn ObjectSpec, history: &History) -> bool {
    check_linearizability(spec, history).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CasRegister, Counter, FetchIncrement, Queue, RwRegister, Stack};
    use llsc_shmem::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn empty_history_is_linearizable() {
        let q = Queue::new();
        assert!(is_linearizable(&q, &History::new()));
    }

    #[test]
    fn sequential_correct_history_passes() {
        let c = FetchIncrement::new(8);
        let h = History::sequential([
            (p(0), FetchIncrement::op(), Value::from(0i64)),
            (p(1), FetchIncrement::op(), Value::from(1i64)),
            (p(2), FetchIncrement::op(), Value::from(2i64)),
        ]);
        assert!(is_linearizable(&c, &h));
    }

    #[test]
    fn sequential_wrong_response_fails() {
        let c = FetchIncrement::new(8);
        let h = History::sequential([
            (p(0), FetchIncrement::op(), Value::from(0i64)),
            (p(1), FetchIncrement::op(), Value::from(0i64)), // duplicate 0!
        ]);
        assert_eq!(check_linearizability(&c, &h), LinCheck::NotLinearizable);
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Two concurrent fetch&increments observing 1 and 0 respectively:
        // linearizable by ordering the second first.
        let c = FetchIncrement::new(8);
        let mut h = History::new();
        let a = h.invoke(p(0), FetchIncrement::op());
        let b = h.invoke(p(1), FetchIncrement::op());
        h.respond(a, Value::from(1i64));
        h.respond(b, Value::from(0i64));
        let check = check_linearizability(&c, &h);
        match check {
            LinCheck::Linearizable { witness } => assert_eq!(witness, vec![b, a]),
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn real_time_order_must_be_respected() {
        // a completes before b starts, but a saw 1 and b saw 0: the only
        // spec-consistent order (b, a) violates real time — not
        // linearizable.
        let c = FetchIncrement::new(8);
        let mut h = History::new();
        let a = h.invoke(p(0), FetchIncrement::op());
        h.respond(a, Value::from(1i64));
        let b = h.invoke(p(1), FetchIncrement::op());
        h.respond(b, Value::from(0i64));
        assert!(!is_linearizable(&c, &h));
    }

    #[test]
    fn queue_new_item_cannot_jump_the_line() {
        let q = Queue::with_numbered_items(2);
        // Dequeues must see 1 then 2; seeing 2 first is not linearizable.
        let h = History::sequential([
            (p(0), Queue::dequeue_op(), Value::from(2i64)),
            (p(1), Queue::dequeue_op(), Value::from(1i64)),
        ]);
        assert!(!is_linearizable(&q, &h));
        let ok = History::sequential([
            (p(0), Queue::dequeue_op(), Value::from(1i64)),
            (p(1), Queue::dequeue_op(), Value::from(2i64)),
        ]);
        assert!(is_linearizable(&q, &ok));
    }

    #[test]
    fn stack_concurrent_pushes_both_pop_orders_ok() {
        let st = Stack::new();
        let mut h = History::new();
        let a = h.invoke(p(0), Stack::push_op(Value::from(1i64)));
        let b = h.invoke(p(1), Stack::push_op(Value::from(2i64)));
        h.respond(a, Value::Unit);
        h.respond(b, Value::Unit);
        let c = h.invoke(p(0), Stack::pop_op());
        h.respond(c, Value::from(1i64)); // 1 on top ⇒ pushes ordered 2 then 1
        assert!(is_linearizable(&st, &h));
    }

    #[test]
    fn register_stale_read_fails() {
        let r = RwRegister::with_initial(Value::from(0i64));
        // write(1) completes, then a read returns 0: stale.
        let h = History::sequential([
            (p(0), RwRegister::write_op(Value::from(1i64)), Value::Unit),
            (p(1), RwRegister::read_op(), Value::from(0i64)),
        ]);
        assert!(!is_linearizable(&r, &h));
    }

    #[test]
    fn register_concurrent_read_may_see_either() {
        let r = RwRegister::with_initial(Value::from(0i64));
        for seen in [0i64, 1i64] {
            let mut h = History::new();
            let w = h.invoke(p(0), RwRegister::write_op(Value::from(1i64)));
            let rd = h.invoke(p(1), RwRegister::read_op());
            h.respond(w, Value::Unit);
            h.respond(rd, Value::from(seen));
            assert!(is_linearizable(&r, &h), "seen={seen}");
        }
    }

    #[test]
    fn pending_op_may_take_effect_or_not() {
        let c = Counter::new(8);
        // p0's increment never responds; p1 reads 1 — linearizable if the
        // pending increment took effect.
        let mut h = History::new();
        let _inc = h.invoke(p(0), Counter::increment_op());
        let rd = h.invoke(p(1), Counter::read_op());
        h.respond(rd, Value::from(1i64));
        assert!(is_linearizable(&c, &h));
        // ...and a read of 0 is also linearizable (it never took effect).
        let mut h2 = History::new();
        let _inc = h2.invoke(p(0), Counter::increment_op());
        let rd2 = h2.invoke(p(1), Counter::read_op());
        h2.respond(rd2, Value::from(0i64));
        assert!(is_linearizable(&c, &h2));
        // But a read of 2 is not.
        let mut h3 = History::new();
        let _inc = h3.invoke(p(0), Counter::increment_op());
        let rd3 = h3.invoke(p(1), Counter::read_op());
        h3.respond(rd3, Value::from(2i64));
        assert!(!is_linearizable(&c, &h3));
    }

    #[test]
    fn cas_history_with_two_winners_fails() {
        let c = CasRegister::with_initial(Value::from(0i64));
        // Both CASes from 0 claim to have seen 0: impossible.
        let mut h = History::new();
        let a = h.invoke(
            p(0),
            CasRegister::cas_op(Value::from(0i64), Value::from(1i64)),
        );
        let b = h.invoke(
            p(1),
            CasRegister::cas_op(Value::from(0i64), Value::from(2i64)),
        );
        h.respond(a, Value::from(0i64));
        h.respond(b, Value::from(0i64));
        // Wait: a CAS response is the previous value; if a ran first, b
        // would see 1, not 0. Hence not linearizable... unless b ran first
        // and a saw 2. Both saw 0 ⇒ contradiction.
        assert!(!is_linearizable(&c, &h));
    }

    #[test]
    fn larger_contended_history_is_checked_quickly() {
        // 12 concurrent fetch&increments with responses forming a valid
        // permutation — exercises memoisation.
        let c = FetchIncrement::new(16);
        let mut h = History::new();
        let ids: Vec<OpId> = (0..12)
            .map(|i| h.invoke(p(i), FetchIncrement::op()))
            .collect();
        // Respond in reverse invocation order with values 0..12 assigned to
        // the responder order.
        for (v, id) in ids.iter().rev().enumerate() {
            h.respond(*id, Value::from(v as i64));
        }
        assert!(is_linearizable(&c, &h));
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_panics() {
        let c = Counter::new(8);
        let mut h = History::new();
        for _ in 0..129 {
            h.invoke(p(0), Counter::increment_op());
        }
        check_linearizability(&c, &h);
    }
}
