//! A FIFO queue object.
//!
//! Theorem 6.2 covers "a queue or a stack that may initially contain `n` or
//! more items": initialise the queue with items `1..=n` (item `n` at the
//! rear); the process that dequeues `n` knows everyone else has already
//! dequeued.

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_ENQUEUE: i64 = 10;
const TAG_DEQUEUE: i64 = 11;

/// The distinguished "queue empty" response to `dequeue`.
pub fn empty_response() -> Value {
    Value::Unit
}

/// A FIFO queue whose state is a tuple of values, front first.
///
/// # Examples
///
/// ```
/// use llsc_objects::{Queue, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let q = Queue::with_items((1..=3).map(|i| Value::from(i as i64)));
/// let (s, r) = q.apply(&q.initial(), &Queue::dequeue_op());
/// assert_eq!(r, Value::from(1i64));
/// let (_, r2) = q.apply(&s, &Queue::dequeue_op());
/// assert_eq!(r2, Value::from(2i64));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Queue {
    initial_items: Vec<Value>,
}

impl Queue {
    /// An initially empty queue.
    pub fn new() -> Self {
        Queue::default()
    }

    /// A queue initially containing `items`, first item at the front.
    pub fn with_items<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Queue {
            initial_items: items.into_iter().collect(),
        }
    }

    /// The Theorem 6.2 initialisation: items `1, 2, ..., n` with `n` at
    /// the rear.
    pub fn with_numbered_items(n: usize) -> Self {
        Queue::with_items((1..=n).map(|i| Value::from(i as i64)))
    }

    /// `enqueue(v)`: appends `v` at the rear; responds with `ack`
    /// ([`Value::Unit`]).
    pub fn enqueue_op(v: Value) -> Value {
        encode_op(TAG_ENQUEUE, [v])
    }

    /// `dequeue()`: removes and returns the front item, or
    /// [`empty_response`] when empty.
    pub fn dequeue_op() -> Value {
        encode_op(TAG_DEQUEUE, [])
    }
}

impl ObjectSpec for Queue {
    fn name(&self) -> String {
        format!("queue(init={})", self.initial_items.len())
    }

    fn initial(&self) -> Value {
        Value::tuple(self.initial_items.clone())
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        let items = state.as_tuple().expect("queue state is a tuple");
        match op_tag(op) {
            Some(t) if t == i128::from(TAG_ENQUEUE) => {
                let v = op_arg(op, 0).expect("enqueue argument").clone();
                let mut next = items.to_vec();
                next.push(v);
                (Value::tuple(next), Value::Unit)
            }
            Some(t) if t == i128::from(TAG_DEQUEUE) => match items.split_first() {
                Some((front, rest)) => (Value::tuple(rest.to_vec()), front.clone()),
                None => (state.clone(), empty_response()),
            },
            _ => panic!("bad queue op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn fifo_order() {
        let q = Queue::new();
        let ops = vec![
            Queue::enqueue_op(Value::from(1i64)),
            Queue::enqueue_op(Value::from(2i64)),
            Queue::dequeue_op(),
            Queue::enqueue_op(Value::from(3i64)),
            Queue::dequeue_op(),
            Queue::dequeue_op(),
        ];
        let (state, resps) = apply_all(&q, &ops);
        assert_eq!(state, Value::empty_tuple());
        assert_eq!(resps[2], Value::from(1i64));
        assert_eq!(resps[4], Value::from(2i64));
        assert_eq!(resps[5], Value::from(3i64));
    }

    #[test]
    fn dequeue_on_empty_returns_empty_marker_and_keeps_state() {
        let q = Queue::new();
        let (s, r) = q.apply(&q.initial(), &Queue::dequeue_op());
        assert_eq!(r, empty_response());
        assert_eq!(s, q.initial());
    }

    #[test]
    fn theorem_6_2_initialisation() {
        // n dequeues drain 1..=n in order; only the n-th sees n.
        let n = 9;
        let q = Queue::with_numbered_items(n);
        let ops: Vec<Value> = (0..n).map(|_| Queue::dequeue_op()).collect();
        let (state, resps) = apply_all(&q, &ops);
        assert_eq!(state, Value::empty_tuple());
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r, &Value::from((i + 1) as i64));
        }
        assert_eq!(resps.last().unwrap(), &Value::from(n as i64));
    }

    #[test]
    fn enqueue_responds_ack() {
        let q = Queue::new();
        let (_, r) = q.apply(&q.initial(), &Queue::enqueue_op(Value::from(5i64)));
        assert_eq!(r, Value::Unit);
    }

    #[test]
    #[should_panic(expected = "bad queue op")]
    fn rejects_foreign_op() {
        let q = Queue::new();
        q.apply(&q.initial(), &Value::tuple([Value::from(999i64)]));
    }

    #[test]
    fn name_mentions_initial_size() {
        assert_eq!(Queue::with_numbered_items(4).name(), "queue(init=4)");
    }

    #[test]
    fn arbitrary_values_can_be_queued() {
        let q = Queue::new();
        let v = Value::tuple([Value::from(true), Value::Unit]);
        let (s, _) = q.apply(&q.initial(), &Queue::enqueue_op(v.clone()));
        let (_, r) = q.apply(&s, &Queue::dequeue_op());
        assert_eq!(r, v);
    }
}
