//! A plain read/write register object.
//!
//! Not one of the Theorem 6.2 types — a read/write register *cannot* solve
//! wakeup in constantly many operations, which is exactly why the paper's
//! reduction technique does not apply to it. It is included as the
//! "weakest" instantiation target for universal constructions and as a
//! baseline for the linearizability tests.

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_READ: i64 = 30;
const TAG_WRITE: i64 = 31;

/// An atomic read/write register holding an arbitrary [`Value`].
///
/// # Examples
///
/// ```
/// use llsc_objects::{RwRegister, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let r = RwRegister::with_initial(Value::from(1i64));
/// let (s, ack) = r.apply(&r.initial(), &RwRegister::write_op(Value::from(2i64)));
/// assert_eq!(ack, Value::Unit);
/// let (_, v) = r.apply(&s, &RwRegister::read_op());
/// assert_eq!(v, Value::from(2i64));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RwRegister {
    initial: Value,
}

impl RwRegister {
    /// A register initially holding [`Value::Unit`].
    pub fn new() -> Self {
        RwRegister::default()
    }

    /// A register initially holding `v`.
    pub fn with_initial(v: Value) -> Self {
        RwRegister { initial: v }
    }

    /// `read()`: returns the state.
    pub fn read_op() -> Value {
        encode_op(TAG_READ, [])
    }

    /// `write(v)`: replaces the state, returns `ack`.
    pub fn write_op(v: Value) -> Value {
        encode_op(TAG_WRITE, [v])
    }
}

impl ObjectSpec for RwRegister {
    fn name(&self) -> String {
        "rw-register".into()
    }

    fn initial(&self) -> Value {
        self.initial.clone()
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        match op_tag(op) {
            Some(t) if t == i128::from(TAG_READ) => (state.clone(), state.clone()),
            Some(t) if t == i128::from(TAG_WRITE) => {
                let v = op_arg(op, 0).expect("write argument").clone();
                (v, Value::Unit)
            }
            _ => panic!("bad register op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_latest_write() {
        let r = RwRegister::new();
        let (s, _) = r.apply(&r.initial(), &RwRegister::write_op(Value::from(5i64)));
        let (s2, v) = r.apply(&s, &RwRegister::read_op());
        assert_eq!(v, Value::from(5i64));
        assert_eq!(s2, s);
    }

    #[test]
    fn initial_value_is_respected() {
        let r = RwRegister::with_initial(Value::from(9i64));
        let (_, v) = r.apply(&r.initial(), &RwRegister::read_op());
        assert_eq!(v, Value::from(9i64));
    }

    #[test]
    #[should_panic(expected = "bad register op")]
    fn rejects_foreign_op() {
        let r = RwRegister::new();
        r.apply(&r.initial(), &Value::Unit);
    }
}
