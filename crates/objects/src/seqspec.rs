//! The sequential-specification trait shared by every object type.
//!
//! A universal construction is *oblivious*: it manipulates the instantiated
//! type only through its sequential specification, never through knowledge
//! of its semantics. [`ObjectSpec`] is exactly that interface — state,
//! operations, and responses are all opaque [`Value`]s, and the only
//! capability is `apply`.

use llsc_shmem::Value;
use std::fmt::Debug;

/// A sequential specification of an object type `T`: a deterministic
/// transition function over [`Value`]-encoded states, operations, and
/// responses.
///
/// Implementations must be pure: `apply` on equal inputs yields equal
/// outputs. This is what lets the linearizability checker explore
/// permutations and lets universal constructions replay operation logs.
pub trait ObjectSpec: Debug + Send + Sync {
    /// A short human-readable type name, e.g. `"fetch&increment(k=8)"`.
    fn name(&self) -> String;

    /// The object's initial state.
    fn initial(&self) -> Value;

    /// Applies one operation: `(state, op) -> (state', response)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on malformed operations or states; the
    /// shipped harness only feeds operations produced by the same module's
    /// constructors.
    fn apply(&self, state: &Value, op: &Value) -> (Value, Value);
}

/// Encodes an operation as `(tag, args...)`.
///
/// Every object module uses this convention, giving each operation of the
/// type a small integer tag. Constructors in the object modules (e.g.
/// `Queue::enqueue_op`) are preferred over calling this directly.
pub fn encode_op<I: IntoIterator<Item = Value>>(tag: i64, args: I) -> Value {
    let mut items = vec![Value::from(tag)];
    items.extend(args);
    Value::tuple(items)
}

/// Decodes the tag of an [`encode_op`]-encoded operation.
pub fn op_tag(op: &Value) -> Option<i128> {
    op.index(0)?.as_int()
}

/// Returns the `i`-th argument (0-based, after the tag) of an encoded
/// operation.
pub fn op_arg(op: &Value, i: usize) -> Option<&Value> {
    op.index(i + 1)
}

/// Applies a whole sequence of operations, returning the final state and
/// every response — the reference execution used by tests, the
/// linearizability checker, and universal-construction replay.
pub fn apply_all<'a, I>(spec: &dyn ObjectSpec, ops: I) -> (Value, Vec<Value>)
where
    I: IntoIterator<Item = &'a Value>,
{
    let mut state = spec.initial();
    let mut resps = Vec::new();
    for op in ops {
        let (next, resp) = spec.apply(&state, op);
        state = next;
        resps.push(resp);
    }
    (state, resps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Adder;

    impl ObjectSpec for Adder {
        fn name(&self) -> String {
            "adder".into()
        }
        fn initial(&self) -> Value {
            Value::from(0i64)
        }
        fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
            let s = state.as_int().expect("int state");
            let d = op_arg(op, 0).and_then(Value::as_int).expect("int arg");
            (Value::from(s + d), Value::from(s))
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let op = encode_op(3, [Value::from(10i64), Value::Unit]);
        assert_eq!(op_tag(&op), Some(3));
        assert_eq!(op_arg(&op, 0), Some(&Value::from(10i64)));
        assert_eq!(op_arg(&op, 1), Some(&Value::Unit));
        assert_eq!(op_arg(&op, 2), None);
    }

    #[test]
    fn op_tag_of_non_op_is_none() {
        assert_eq!(op_tag(&Value::Unit), None);
        assert_eq!(op_tag(&Value::tuple([Value::Bool(true)])), None);
    }

    #[test]
    fn apply_all_threads_state() {
        let ops: Vec<Value> = (1..=3)
            .map(|i| encode_op(0, [Value::from(i as i64)]))
            .collect();
        let (state, resps) = apply_all(&Adder, &ops);
        assert_eq!(state, Value::from(6i64));
        assert_eq!(
            resps,
            vec![Value::from(0i64), Value::from(1i64), Value::from(3i64)]
        );
    }
}
