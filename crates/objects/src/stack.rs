//! A LIFO stack object — the other half of Theorem 6.2's
//! "queue or stack that may initially contain `n` or more items".
//!
//! For the wakeup reduction the stack is initialised with `n` at the
//! *bottom* and `1` on top, so the process that pops `n` is the last one.

use crate::seqspec::{encode_op, op_arg, op_tag, ObjectSpec};
use llsc_shmem::Value;

const TAG_PUSH: i64 = 12;
const TAG_POP: i64 = 13;

/// The distinguished "stack empty" response to `pop`.
pub fn empty_response() -> Value {
    Value::Unit
}

/// A LIFO stack whose state is a tuple of values, top last.
///
/// # Examples
///
/// ```
/// use llsc_objects::{Stack, ObjectSpec};
/// use llsc_shmem::Value;
///
/// let st = Stack::new();
/// let (s, _) = st.apply(&st.initial(), &Stack::push_op(Value::from(1i64)));
/// let (s, _) = st.apply(&s, &Stack::push_op(Value::from(2i64)));
/// let (_, top) = st.apply(&s, &Stack::pop_op());
/// assert_eq!(top, Value::from(2i64));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stack {
    initial_items: Vec<Value>,
}

impl Stack {
    /// An initially empty stack.
    pub fn new() -> Self {
        Stack::default()
    }

    /// A stack initially containing `items`, bottom first (last item is the
    /// top).
    pub fn with_items<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Stack {
            initial_items: items.into_iter().collect(),
        }
    }

    /// The Theorem 6.2 initialisation: `n` at the bottom, `1` on top, so
    /// `n` pops return `1, 2, ..., n` in order.
    pub fn with_numbered_items(n: usize) -> Self {
        Stack::with_items((1..=n).rev().map(|i| Value::from(i as i64)))
    }

    /// `push(v)`: places `v` on top; responds with `ack` ([`Value::Unit`]).
    pub fn push_op(v: Value) -> Value {
        encode_op(TAG_PUSH, [v])
    }

    /// `pop()`: removes and returns the top item, or [`empty_response`]
    /// when empty.
    pub fn pop_op() -> Value {
        encode_op(TAG_POP, [])
    }
}

impl ObjectSpec for Stack {
    fn name(&self) -> String {
        format!("stack(init={})", self.initial_items.len())
    }

    fn initial(&self) -> Value {
        Value::tuple(self.initial_items.clone())
    }

    fn apply(&self, state: &Value, op: &Value) -> (Value, Value) {
        let items = state.as_tuple().expect("stack state is a tuple");
        match op_tag(op) {
            Some(t) if t == i128::from(TAG_PUSH) => {
                let v = op_arg(op, 0).expect("push argument").clone();
                let mut next = items.to_vec();
                next.push(v);
                (Value::tuple(next), Value::Unit)
            }
            Some(t) if t == i128::from(TAG_POP) => match items.split_last() {
                Some((top, rest)) => (Value::tuple(rest.to_vec()), top.clone()),
                None => (state.clone(), empty_response()),
            },
            _ => panic!("bad stack op {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqspec::apply_all;

    #[test]
    fn lifo_order() {
        let st = Stack::new();
        let ops = vec![
            Stack::push_op(Value::from(1i64)),
            Stack::push_op(Value::from(2i64)),
            Stack::pop_op(),
            Stack::pop_op(),
        ];
        let (state, resps) = apply_all(&st, &ops);
        assert_eq!(state, Value::empty_tuple());
        assert_eq!(resps[2], Value::from(2i64));
        assert_eq!(resps[3], Value::from(1i64));
    }

    #[test]
    fn pop_on_empty_returns_marker() {
        let st = Stack::new();
        let (s, r) = st.apply(&st.initial(), &Stack::pop_op());
        assert_eq!(r, empty_response());
        assert_eq!(s, st.initial());
    }

    #[test]
    fn theorem_6_2_initialisation_pops_in_order() {
        let n = 7;
        let st = Stack::with_numbered_items(n);
        let ops: Vec<Value> = (0..n).map(|_| Stack::pop_op()).collect();
        let (state, resps) = apply_all(&st, &ops);
        assert_eq!(state, Value::empty_tuple());
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r, &Value::from((i + 1) as i64), "pop #{i}");
        }
    }

    #[test]
    #[should_panic(expected = "bad stack op")]
    fn rejects_foreign_op() {
        let st = Stack::new();
        st.apply(&st.initial(), &crate::queue::Queue::dequeue_op());
    }

    #[test]
    fn name_mentions_initial_size() {
        assert_eq!(Stack::with_numbered_items(3).name(), "stack(init=3)");
    }
}
