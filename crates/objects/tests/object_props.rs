//! Model-based property tests for the object specifications.
//!
//! Each spec is compared against an independent reference model built from
//! std containers / native integer arithmetic: random operation sequences
//! must produce identical responses and equivalent final states.
//!
//! The random cases are driven by the repository's deterministic
//! [`XorShift64`] generator rather than an external property-testing
//! framework (the build environment is offline), so every run explores the
//! exact same case set; a failure message names the seed that produced it.

use llsc_objects::{
    apply_all, bits, Counter, FetchAdd, FetchAnd, FetchIncrement, FetchMultiply, FetchOr,
    ObjectSpec, Queue, RwRegister, Stack, SwapObject,
};
use llsc_shmem::rng::XorShift64;
use llsc_shmem::Value;
use std::collections::VecDeque;

const CASES: u64 = 128;

fn i64_vec(rng: &mut XorShift64, max_len: usize, lo: i64, hi: i64) -> Vec<i64> {
    let len = rng.index(max_len + 1);
    (0..len).map(|_| rng.range_i64(lo, hi)).collect()
}

/// Queue vs VecDeque.
#[test]
fn queue_matches_vecdeque() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x0B7E + case);
        let initial = i64_vec(&mut rng, 4, -8, 8);
        let n_ops = rng.index(20);
        let q = Queue::with_items(initial.iter().copied().map(Value::from));
        let mut model: VecDeque<i64> = initial.into_iter().collect();
        let mut state = q.initial();
        for _ in 0..n_ops {
            if rng.chance(1, 2) {
                let v = rng.range_i64(-8, 8);
                let (next, resp) = q.apply(&state, &Queue::enqueue_op(Value::from(v)));
                state = next;
                model.push_back(v);
                assert_eq!(resp, Value::Unit, "seed {case}");
            } else {
                let (next, resp) = q.apply(&state, &Queue::dequeue_op());
                state = next;
                match model.pop_front() {
                    Some(v) => assert_eq!(resp, Value::from(v), "seed {case}"),
                    None => assert_eq!(resp, Value::Unit, "seed {case}"),
                }
            }
        }
        let final_items: Vec<i64> = state
            .as_tuple()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap() as i64)
            .collect();
        assert_eq!(
            final_items,
            model.into_iter().collect::<Vec<_>>(),
            "seed {case}"
        );
    }
}

/// Stack vs Vec.
#[test]
fn stack_matches_vec() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x57AC + case);
        let n_ops = rng.index(20);
        let st = Stack::new();
        let mut model: Vec<i64> = Vec::new();
        let mut state = st.initial();
        for _ in 0..n_ops {
            if rng.chance(1, 2) {
                let v = rng.range_i64(-8, 8);
                let (next, _) = st.apply(&state, &Stack::push_op(Value::from(v)));
                state = next;
                model.push(v);
            } else {
                let (next, resp) = st.apply(&state, &Stack::pop_op());
                state = next;
                match model.pop() {
                    Some(v) => assert_eq!(resp, Value::from(v), "seed {case}"),
                    None => assert_eq!(resp, Value::Unit, "seed {case}"),
                }
            }
        }
    }
}

/// fetch&increment / fetch&add / counter vs native modular arithmetic.
#[test]
fn arithmetic_objects_match_native() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xA217 + case);
        let k = 1 + rng.below(29) as u32;
        let addends = i64_vec(&mut rng, 19, -100, 100);
        let modulus = 1i128 << k;
        // fetch&add.
        let fa = FetchAdd::new(k);
        let ops: Vec<Value> = addends.iter().map(|&v| FetchAdd::op(v)).collect();
        let (state, resps) = apply_all(&fa, &ops);
        let mut acc: i128 = 0;
        for (v, resp) in addends.iter().zip(&resps) {
            assert_eq!(resp.as_int(), Some(acc), "seed {case}");
            acc = (acc + i128::from(*v)).rem_euclid(modulus);
        }
        assert_eq!(state.as_int(), Some(acc), "seed {case}");

        // fetch&increment = fetch&add(1).
        let fi = FetchIncrement::new(k);
        let n_incs = addends.len();
        let ops: Vec<Value> = (0..n_incs).map(|_| FetchIncrement::op()).collect();
        let (state, _) = apply_all(&fi, &ops);
        assert_eq!(
            state.as_int(),
            Some((n_incs as i128) % modulus),
            "seed {case}"
        );

        // counter increments likewise.
        let c = Counter::new(k);
        let ops: Vec<Value> = (0..n_incs).map(|_| Counter::increment_op()).collect();
        let (state, _) = apply_all(&c, &ops);
        assert_eq!(
            state.as_int(),
            Some((n_incs as i128) % modulus),
            "seed {case}"
        );
    }
}

/// Wide-word bit arithmetic vs u128 reference (for widths <= 128).
#[test]
fn bits_match_u128_reference() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xB175 + case);
        let k = 1 + rng.index(127);
        let a = (rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64);
        let b = (rng.next_u64() as u128) | ((rng.next_u64() as u128) << 64);
        let mask = if k == 128 {
            u128::MAX
        } else {
            (1u128 << k) - 1
        };
        let to_limbs = |x: u128| bits::normalize(vec![x as u64, (x >> 64) as u64], k);
        let from_limbs = |w: &[u64]| -> u128 {
            (w.first().copied().unwrap_or(0) as u128)
                | ((w.get(1).copied().unwrap_or(0) as u128) << 64)
        };
        let (wa, wb) = (to_limbs(a), to_limbs(b));
        assert_eq!(
            from_limbs(&bits::add(&wa, &wb, k)),
            (a & mask).wrapping_add(b & mask) & mask,
            "seed {case}"
        );
        assert_eq!(
            from_limbs(&bits::mul(&wa, &wb, k)),
            (a & mask).wrapping_mul(b & mask) & mask,
            "seed {case}"
        );
        assert_eq!(
            from_limbs(&bits::and(&wa, &wb, k)),
            a & b & mask,
            "seed {case}"
        );
        assert_eq!(
            from_limbs(&bits::or(&wa, &wb, k)),
            (a | b) & mask,
            "seed {case}"
        );
    }
}

/// fetch&and / fetch&or responses are the previous state, and the
/// state evolves by the corresponding bitwise law.
#[test]
fn bitwise_objects_follow_their_laws() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xB17F + case);
        let k = 1 + rng.index(99);
        let masks: Vec<u64> = (0..1 + rng.index(9)).map(|_| rng.next_u64()).collect();
        let and_obj = FetchAnd::new(k);
        let or_obj = FetchOr::new(k);
        let mut and_state = and_obj.initial();
        let mut or_state = or_obj.initial();
        for m in &masks {
            let (next, prev) = and_obj.apply(&and_state, &FetchAnd::op(vec![*m]));
            assert_eq!(&prev, &and_state, "seed {case}");
            let expect = bits::and(and_state.as_bits().unwrap(), &[*m], k);
            assert_eq!(next.as_bits().unwrap(), expect.as_slice(), "seed {case}");
            and_state = next;

            let (next, prev) = or_obj.apply(&or_state, &FetchOr::op(vec![*m]));
            assert_eq!(&prev, &or_state, "seed {case}");
            let expect = bits::or(or_state.as_bits().unwrap(), &[*m], k);
            assert_eq!(next.as_bits().unwrap(), expect.as_slice(), "seed {case}");
            or_state = next;
        }
    }
}

/// fetch&multiply by powers of two is a shift; after >= k doublings
/// the state is zero.
#[test]
fn multiply_by_two_shifts() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2417 + case);
        let k = 2 + rng.index(148);
        let doublings = 1 + rng.index(199);
        let obj = FetchMultiply::new(k);
        let mut state = obj.initial();
        for _ in 0..doublings {
            let (next, _) = obj.apply(&state, &FetchMultiply::op(2));
            state = next;
        }
        let w = state.as_bits().unwrap();
        if doublings >= k {
            assert!(bits::is_zero(w), "seed {case}");
        } else {
            assert!(bits::bit(w, doublings), "seed {case}");
            assert_eq!(
                (0..k).filter(|&i| bits::bit(w, i)).count(),
                1,
                "seed {case}"
            );
        }
    }
}

/// Register and swap-object chain laws.
#[test]
fn register_and_swap_chains() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x5EC5 + case);
        let len = 1 + rng.index(14);
        let values: Vec<i64> = (0..len).map(|_| rng.range_i64(-50, 50)).collect();
        let reg = RwRegister::new();
        let mut state = reg.initial();
        for v in &values {
            let (next, _) = reg.apply(&state, &RwRegister::write_op(Value::from(*v)));
            state = next;
            let (_, read) = reg.apply(&state, &RwRegister::read_op());
            assert_eq!(read, Value::from(*v), "seed {case}");
        }

        let sw = SwapObject::new();
        let mut state = sw.initial();
        let mut prev_expect = Value::Unit;
        for v in &values {
            let (next, prev) = sw.apply(&state, &SwapObject::op(Value::from(*v)));
            assert_eq!(prev, prev_expect.clone(), "seed {case}");
            prev_expect = Value::from(*v);
            state = next;
        }
    }
}
