//! Model-based property tests for the object specifications.
//!
//! Each spec is compared against an independent reference model built from
//! std containers / native integer arithmetic: random operation sequences
//! must produce identical responses and equivalent final states.

use llsc_objects::{
    bits, apply_all, Counter, FetchAdd, FetchAnd, FetchIncrement, FetchMultiply, FetchOr,
    ObjectSpec, Queue, RwRegister, Stack, SwapObject,
};
use llsc_shmem::Value;
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Queue vs VecDeque.
    #[test]
    fn queue_matches_vecdeque(
        initial in prop::collection::vec(-8i64..8, 0..5),
        ops in prop::collection::vec(prop::option::of(-8i64..8), 0..20),
    ) {
        let q = Queue::with_items(initial.iter().copied().map(Value::from));
        let mut model: VecDeque<i64> = initial.into_iter().collect();
        let mut state = q.initial();
        for op in ops {
            match op {
                Some(v) => {
                    let (next, resp) = q.apply(&state, &Queue::enqueue_op(Value::from(v)));
                    state = next;
                    model.push_back(v);
                    prop_assert_eq!(resp, Value::Unit);
                }
                None => {
                    let (next, resp) = q.apply(&state, &Queue::dequeue_op());
                    state = next;
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(resp, Value::from(v)),
                        None => prop_assert_eq!(resp, Value::Unit),
                    }
                }
            }
        }
        let final_items: Vec<i64> = state
            .as_tuple()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap() as i64)
            .collect();
        prop_assert_eq!(final_items, model.into_iter().collect::<Vec<_>>());
    }

    /// Stack vs Vec.
    #[test]
    fn stack_matches_vec(
        ops in prop::collection::vec(prop::option::of(-8i64..8), 0..20),
    ) {
        let st = Stack::new();
        let mut model: Vec<i64> = Vec::new();
        let mut state = st.initial();
        for op in ops {
            match op {
                Some(v) => {
                    let (next, _) = st.apply(&state, &Stack::push_op(Value::from(v)));
                    state = next;
                    model.push(v);
                }
                None => {
                    let (next, resp) = st.apply(&state, &Stack::pop_op());
                    state = next;
                    match model.pop() {
                        Some(v) => prop_assert_eq!(resp, Value::from(v)),
                        None => prop_assert_eq!(resp, Value::Unit),
                    }
                }
            }
        }
    }

    /// fetch&increment / fetch&add / counter vs native modular arithmetic.
    #[test]
    fn arithmetic_objects_match_native(
        k in 1u32..30,
        addends in prop::collection::vec(-100i64..100, 0..20),
    ) {
        let modulus = 1i128 << k;
        // fetch&add.
        let fa = FetchAdd::new(k);
        let ops: Vec<Value> = addends.iter().map(|&v| FetchAdd::op(v)).collect();
        let (state, resps) = apply_all(&fa, &ops);
        let mut acc: i128 = 0;
        for (v, resp) in addends.iter().zip(&resps) {
            prop_assert_eq!(resp.as_int(), Some(acc));
            acc = (acc + i128::from(*v)).rem_euclid(modulus);
        }
        prop_assert_eq!(state.as_int(), Some(acc));

        // fetch&increment = fetch&add(1).
        let fi = FetchIncrement::new(k);
        let n_incs = addends.len();
        let ops: Vec<Value> = (0..n_incs).map(|_| FetchIncrement::op()).collect();
        let (state, _) = apply_all(&fi, &ops);
        prop_assert_eq!(state.as_int(), Some((n_incs as i128) % modulus));

        // counter increments likewise.
        let c = Counter::new(k);
        let ops: Vec<Value> = (0..n_incs).map(|_| Counter::increment_op()).collect();
        let (state, _) = apply_all(&c, &ops);
        prop_assert_eq!(state.as_int(), Some((n_incs as i128) % modulus));
    }

    /// Wide-word bit arithmetic vs u128 reference (for widths <= 128).
    #[test]
    fn bits_match_u128_reference(
        k in 1usize..128,
        a in any::<u128>(),
        b in any::<u128>(),
    ) {
        let mask = if k == 128 { u128::MAX } else { (1u128 << k) - 1 };
        let to_limbs = |x: u128| bits::normalize(vec![x as u64, (x >> 64) as u64], k);
        let from_limbs = |w: &[u64]| -> u128 {
            (w.first().copied().unwrap_or(0) as u128)
                | ((w.get(1).copied().unwrap_or(0) as u128) << 64)
        };
        let (wa, wb) = (to_limbs(a), to_limbs(b));
        prop_assert_eq!(from_limbs(&bits::add(&wa, &wb, k)), (a & mask).wrapping_add(b & mask) & mask);
        prop_assert_eq!(from_limbs(&bits::mul(&wa, &wb, k)), (a & mask).wrapping_mul(b & mask) & mask);
        prop_assert_eq!(from_limbs(&bits::and(&wa, &wb, k)), a & b & mask);
        prop_assert_eq!(from_limbs(&bits::or(&wa, &wb, k)), (a | b) & mask);
    }

    /// fetch&and / fetch&or responses are the previous state, and the
    /// state evolves by the corresponding bitwise law.
    #[test]
    fn bitwise_objects_follow_their_laws(
        k in 1usize..100,
        masks in prop::collection::vec(any::<u64>(), 1..10),
    ) {
        let and_obj = FetchAnd::new(k);
        let or_obj = FetchOr::new(k);
        let mut and_state = and_obj.initial();
        let mut or_state = or_obj.initial();
        for m in &masks {
            let (next, prev) = and_obj.apply(&and_state, &FetchAnd::op(vec![*m]));
            prop_assert_eq!(&prev, &and_state);
            let expect = bits::and(and_state.as_bits().unwrap(), &[*m], k);
            prop_assert_eq!(next.as_bits().unwrap(), expect.as_slice());
            and_state = next;

            let (next, prev) = or_obj.apply(&or_state, &FetchOr::op(vec![*m]));
            prop_assert_eq!(&prev, &or_state);
            let expect = bits::or(or_state.as_bits().unwrap(), &[*m], k);
            prop_assert_eq!(next.as_bits().unwrap(), expect.as_slice());
            or_state = next;
        }
    }

    /// fetch&multiply by powers of two is a shift; after >= k doublings
    /// the state is zero.
    #[test]
    fn multiply_by_two_shifts(k in 2usize..150, doublings in 1usize..200) {
        let obj = FetchMultiply::new(k);
        let mut state = obj.initial();
        for _ in 0..doublings {
            let (next, _) = obj.apply(&state, &FetchMultiply::op(2));
            state = next;
        }
        let w = state.as_bits().unwrap();
        if doublings >= k {
            prop_assert!(bits::is_zero(w));
        } else {
            prop_assert!(bits::bit(w, doublings));
            prop_assert_eq!((0..k).filter(|&i| bits::bit(w, i)).count(), 1);
        }
    }

    /// Register and swap-object chain laws.
    #[test]
    fn register_and_swap_chains(values in prop::collection::vec(-50i64..50, 1..15)) {
        let reg = RwRegister::new();
        let mut state = reg.initial();
        for v in &values {
            let (next, _) = reg.apply(&state, &RwRegister::write_op(Value::from(*v)));
            state = next;
            let (_, read) = reg.apply(&state, &RwRegister::read_op());
            prop_assert_eq!(read, Value::from(*v));
        }

        let sw = SwapObject::new();
        let mut state = sw.initial();
        let mut prev_expect = Value::Unit;
        for v in &values {
            let (next, prev) = sw.apply(&state, &SwapObject::op(Value::from(*v)));
            prop_assert_eq!(prev, prev_expect.clone());
            prev_expect = Value::from(*v);
            state = next;
        }
    }
}
