//! Backend-generic execution: the surface a [`Program`] runs against.
//!
//! A program never touches [`SharedMemory`](crate::SharedMemory) directly —
//! it emits [`Action`]s and consumes [`Feedback`]s. Everything the model
//! needs from the outside world is therefore two calls wide: *apply this
//! shared-memory operation* and *answer my next coin toss*. The
//! [`ExecutionBackend`] trait names exactly that surface, which makes the
//! entire algorithm layer (wakeup solutions, universal constructions, the
//! Theorem 6.2 reductions) portable across execution substrates:
//!
//! * [`SimBackend`] — the deterministic simulator memory behind a trait
//!   object. Same [`RegisterState`](crate::RegisterState) semantics as the
//!   [`Executor`](crate::Executor) (which keeps its own direct wiring — the
//!   discrete-event engine and its byte-stable artifacts are untouched by
//!   this abstraction), serialized by a mutex so it can also be driven from
//!   many threads.
//! * `llsc-atomics`' hardware backend — LL/SC/VL built from pointer-width
//!   compare-and-swap over `std::sync::atomic`, following Blelloch–Wei
//!   (arXiv:1911.09671), driven by one OS thread per process.
//!
//! The drivers here ([`drive_program`], [`run_sequential`]) are
//! backend-agnostic; the thread-per-process driver lives in `llsc-atomics`
//! next to the memory it exercises. Cross-backend conformance tests live
//! in `llsc-atomics/tests/conformance.rs`.

use crate::{
    Action, Algorithm, Feedback, Operation, ProcessId, Program, RegisterId, Response, RunError,
    SharedMemory, TossAssignment, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The execution surface shared by every backend: the five-operation
/// memory, the coin-toss oracle, and the per-process shared-access
/// accounting the paper's complexity measure is defined over.
///
/// Methods take `&self` and implementations must be [`Sync`]: the
/// hardware backend is called concurrently from one OS thread per
/// process, and the simulator backend serializes internally.
pub trait ExecutionBackend: Send + Sync {
    /// A short stable name (`"sim"`, `"atomic"`), used by CLI flags and
    /// artifact labels.
    fn backend_name(&self) -> &'static str;

    /// The number of processes this instance was built for.
    fn n(&self) -> usize;

    /// Applies one shared-memory operation on behalf of `p` and returns
    /// its response — the paper's strong LL/SC/VL/swap/move semantics.
    /// Each call counts one shared access against `p`.
    fn apply(&self, p: ProcessId, op: &Operation) -> Response;

    /// Answers `p`'s next coin toss. Backends answer from a
    /// [`TossAssignment`], so a seeded run is reproducible on both
    /// substrates (tosses are indexed per process by call order).
    fn toss(&self, p: ProcessId) -> u64;

    /// Shared-memory operations `p` has performed so far — the paper's
    /// `t(p, R)` accounting summed over registers.
    fn shared_accesses(&self, p: ProcessId) -> u64;

    /// Remote memory references `p` has been billed so far under the
    /// distributed-shared-memory cost model (`home(R) = R mod n`, see
    /// [`crate::dsm_home`]). DSM remoteness is a pure function of
    /// `(process, register, n)`, so *every* backend can account it
    /// locally — unlike the cache-coherent charge, which needs the
    /// coherence history the simulator's executor tracks. Defaults to 0
    /// for backends that do not bill RMRs.
    fn dsm_rmrs(&self, _p: ProcessId) -> u64 {
        0
    }

    /// Diagnostic: the register's current value without performing an
    /// operation (no access is counted and no link state changes).
    fn peek(&self, r: RegisterId) -> Value;

    /// Diagnostic: whether `p`'s link on `r` is currently valid, i.e.
    /// whether an SC by `p` would succeed — `p ∈ Pset(r)` in the paper's
    /// terms. The simulator reads the register's `Pset`; the hardware
    /// backend derives it from its version tags.
    fn linked(&self, p: ProcessId, r: RegisterId) -> bool;

    /// `true` when runs on this backend are a pure function of
    /// (algorithm, schedule, toss assignment) — the simulator. Real
    /// hardware interleaves nondeterministically.
    fn is_deterministic(&self) -> bool;
}

/// The deterministic simulator memory behind the [`ExecutionBackend`]
/// trait: a [`SharedMemory`] plus a toss assignment, serialized by a
/// mutex.
///
/// This is the same register semantics the [`Executor`](crate::Executor)
/// hard-wires; the executor keeps its direct wiring (its event recording,
/// fault injection, and golden artifacts are out of scope for backends),
/// while `SimBackend` is the reference implementation conformance tests
/// and cross-validation compare the hardware backend against.
#[derive(Debug)]
pub struct SimBackend {
    n: usize,
    mem: Mutex<SharedMemory>,
    toss: Arc<dyn TossAssignment>,
    accesses: Vec<AtomicU64>,
    dsm_rmrs: Vec<AtomicU64>,
    tosses: Vec<AtomicU64>,
}

impl SimBackend {
    /// A backend for `n` processes with an empty memory.
    pub fn new(n: usize, toss: Arc<dyn TossAssignment>) -> SimBackend {
        SimBackend {
            n,
            mem: Mutex::new(SharedMemory::new()),
            toss,
            accesses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dsm_rmrs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tosses: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A backend seeded with `alg`'s initial memory for `n` processes.
    pub fn for_algorithm(
        alg: &dyn Algorithm,
        n: usize,
        toss: Arc<dyn TossAssignment>,
    ) -> SimBackend {
        let backend = SimBackend::new(n, toss);
        *backend.mem.lock().expect("fresh lock") =
            SharedMemory::with_initial(alg.initial_memory(n));
        backend
    }

    fn mem(&self) -> std::sync::MutexGuard<'_, SharedMemory> {
        // A panic while holding the lock leaves no torn state in a
        // BTreeMap-backed memory; recover the guard.
        self.mem.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ExecutionBackend for SimBackend {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn apply(&self, p: ProcessId, op: &Operation) -> Response {
        self.accesses[p.0].fetch_add(1, Ordering::Relaxed);
        let dsm = crate::dsm_cost(p, op, self.n);
        if dsm > 0 {
            self.dsm_rmrs[p.0].fetch_add(dsm, Ordering::Relaxed);
        }
        self.mem().apply(p, op)
    }

    fn toss(&self, p: ProcessId) -> u64 {
        let index = self.tosses[p.0].fetch_add(1, Ordering::Relaxed);
        self.toss.outcome(p, index)
    }

    fn shared_accesses(&self, p: ProcessId) -> u64 {
        self.accesses[p.0].load(Ordering::Relaxed)
    }

    fn dsm_rmrs(&self, p: ProcessId) -> u64 {
        self.dsm_rmrs[p.0].load(Ordering::Relaxed)
    }

    fn peek(&self, r: RegisterId) -> Value {
        self.mem().peek(r)
    }

    fn linked(&self, p: ProcessId, r: RegisterId) -> bool {
        self.mem().peek_linked(r, p)
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

/// Drives one program against a backend until it returns, answering its
/// tosses and operations from the backend.
///
/// This is the inner loop of every backend-generic driver: the simulator's
/// sequential runner below and the thread-per-process hardware driver in
/// `llsc-atomics` both delegate here.
///
/// # Errors
///
/// [`RunError::BudgetExhausted`] when the program has not returned after
/// `max_steps` actions.
pub fn drive_program(
    backend: &dyn ExecutionBackend,
    pid: ProcessId,
    prog: &mut dyn Program,
    max_steps: u64,
) -> Result<Value, RunError> {
    let mut feedback = Feedback::Start;
    for _ in 0..max_steps {
        match prog.next(feedback) {
            Action::Toss => feedback = Feedback::Coin(backend.toss(pid)),
            Action::Invoke(op) => feedback = Feedback::Response(backend.apply(pid, &op)),
            Action::Return(v) => return Ok(v),
        }
    }
    Err(RunError::BudgetExhausted { events: max_steps })
}

/// The result of a backend-generic run: per-process responses and
/// shared-access counts.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendRun {
    /// Each process's return value, indexed by process id.
    pub responses: Vec<Value>,
    /// Shared-memory operations performed by each process — the paper's
    /// complexity accounting, as reported by the backend.
    pub per_process_ops: Vec<u64>,
}

impl BackendRun {
    /// `max_p` of the per-process counts — the run's shared-access time
    /// complexity.
    pub fn max_ops(&self) -> u64 {
        self.per_process_ops.iter().copied().max().unwrap_or(0)
    }
}

/// Runs every process of `alg` to completion, one at a time in id order —
/// the contention-free sequential schedule, available on any backend.
///
/// # Errors
///
/// [`RunError::BudgetExhausted`] if any single process exceeds
/// `max_steps` actions.
pub fn run_sequential(
    backend: &dyn ExecutionBackend,
    alg: &dyn Algorithm,
    max_steps: u64,
) -> Result<BackendRun, RunError> {
    let n = backend.n();
    let mut responses = Vec::with_capacity(n);
    let mut per_process_ops = Vec::with_capacity(n);
    for pid in ProcessId::all(n) {
        let before = backend.shared_accesses(pid);
        let mut prog = alg.spawn(pid, n);
        responses.push(drive_program(backend, pid, prog.as_mut(), max_steps)?);
        per_process_ops.push(backend.shared_accesses(pid) - before);
    }
    Ok(BackendRun {
        responses,
        per_process_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{done, ll, sc, toss};
    use crate::{FnAlgorithm, SeededTosses, ZeroTosses};

    fn sc_race_alg() -> impl Algorithm {
        FnAlgorithm::new("sc-race", |pid: ProcessId, _n| {
            let r = RegisterId(0);
            ll(r, move |_| {
                sc(r, Value::from(pid.0 as i64), |ok, _| done(Value::from(ok)))
            })
            .into_program()
        })
    }

    #[test]
    fn sequential_run_counts_and_responds() {
        let alg = sc_race_alg();
        let backend = SimBackend::for_algorithm(&alg, 3, Arc::new(ZeroTosses));
        let run = run_sequential(&backend, &alg, 1_000).unwrap();
        // Sequentially, every process's SC succeeds (no interleaving).
        assert_eq!(run.responses, vec![Value::from(true); 3]);
        assert_eq!(run.per_process_ops, vec![2, 2, 2]);
        assert_eq!(run.max_ops(), 2);
        assert_eq!(backend.shared_accesses(ProcessId(1)), 2);
        assert_eq!(backend.peek(RegisterId(0)), Value::from(2i64));
        assert!(backend.is_deterministic());
        assert_eq!(backend.backend_name(), "sim");
    }

    #[test]
    fn interleaved_sc_fails_after_conflicting_sc() {
        let backend = SimBackend::new(2, Arc::new(ZeroTosses));
        let (p0, p1) = (ProcessId(0), ProcessId(1));
        let r = RegisterId(0);
        // Both LL; p1 SCs first; p0's SC must fail.
        backend.apply(p0, &Operation::Ll(r));
        backend.apply(p1, &Operation::Ll(r));
        assert!(backend.linked(p0, r) && backend.linked(p1, r));
        let ok = backend.apply(p1, &Operation::Sc(r, Value::from(7i64)));
        assert_eq!(ok.flag(), Some(true));
        assert!(!backend.linked(p0, r), "conflicting SC clears the Pset");
        let fail = backend.apply(p0, &Operation::Sc(r, Value::from(9i64)));
        assert_eq!(fail.flag(), Some(false));
        assert_eq!(backend.peek(r), Value::from(7i64));
        assert_eq!(backend.shared_accesses(p0), 2);
        assert_eq!(backend.shared_accesses(p1), 2);
    }

    #[test]
    fn tosses_are_indexed_per_process_and_deterministic() {
        let toss_fn = Arc::new(SeededTosses::new(42));
        let a = SimBackend::new(2, toss_fn.clone());
        let b = SimBackend::new(2, toss_fn.clone());
        let seq_a: Vec<u64> = (0..8).map(|_| a.toss(ProcessId(0))).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.toss(ProcessId(0))).collect();
        assert_eq!(seq_a, seq_b, "same assignment, same call order, same run");
        // Matches the assignment's pure indexing.
        let direct: Vec<u64> = (0..8).map(|i| toss_fn.outcome(ProcessId(0), i)).collect();
        assert_eq!(seq_a, direct);
        // Another process draws an independent sequence.
        assert_ne!(
            (0..8).map(|_| a.toss(ProcessId(1))).collect::<Vec<_>>(),
            seq_a
        );
    }

    #[test]
    fn driver_budget_is_enforced() {
        let alg = FnAlgorithm::new("spin", |_pid, _n| {
            fn spin() -> crate::dsl::Step {
                toss(|_| spin())
            }
            spin().into_program()
        });
        let backend = SimBackend::new(1, Arc::new(ZeroTosses));
        let mut prog = alg.spawn(ProcessId(0), 1);
        let err = drive_program(&backend, ProcessId(0), prog.as_mut(), 64).unwrap_err();
        assert_eq!(err, RunError::BudgetExhausted { events: 64 });
    }

    #[test]
    fn initial_memory_is_honoured() {
        let alg = FnAlgorithm::new("reader", |_pid, _n| ll(RegisterId(5), done).into_program())
            .with_initial_memory(vec![(RegisterId(5), Value::from(41i64))]);
        let backend = SimBackend::for_algorithm(&alg, 1, Arc::new(ZeroTosses));
        let run = run_sequential(&backend, &alg, 100).unwrap();
        assert_eq!(run.responses, vec![Value::from(41i64)]);
    }
}
