//! The composed chaos adversary: crash faults, memory faults, and an
//! adversarial randomized schedule in one seeded plan.
//!
//! PRs 2–3 gave the simulator each fault family in isolation
//! ([`CrashPlan`], [`FaultPlan`], the seeded [`RandomScheduler`]); a
//! [`ChaosPlan`] layers all three, derived purely from
//! `(seed, n, intensity, window)` so a chaos trial is as reproducible as
//! a clean one. Intensity scales every layer at once:
//!
//! * `intensity` spurious-SC failures and `intensity` register
//!   corruptions (via [`FaultPlan::seeded`]),
//! * `intensity / 2` crash-stop victims, capped at `n - 1` so at least
//!   one process always survives (via [`CrashPlan::seeded`]),
//! * a seeded [`RandomScheduler`] in place of the benign round-robin.
//!
//! Sub-seeds are decorrelated through [`split_mix`] with distinct salts,
//! so the three layers never share a stream even for small consecutive
//! seeds. Experiment E17 sweeps intensity against the plain and hardened
//! algorithm twins; [`ChaosPlan::to_case`] packages one chaos trial as a
//! replayable [`ReproCase`].

use crate::repro::{ReproCase, ScheduleSpec, TossSpec};
use crate::rng::split_mix;
use crate::{CrashPlan, FaultPlan, RandomScheduler};

/// Salt for the crash-plan sub-seed.
const CRASH_SALT: u64 = 0xC4A0_5AB0_7E17_0001;
/// Salt for the fault-plan sub-seed.
const FAULT_SALT: u64 = 0xC4A0_5AB0_7E17_0002;
/// Salt for the scheduler sub-seed.
const SCHED_SALT: u64 = 0xC4A0_5AB0_7E17_0003;

/// A seeded, composed adversary: crashes + memory faults + a randomized
/// schedule. Pure function of its constructor arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    intensity: usize,
    crashes: CrashPlan,
    faults: FaultPlan,
    schedule_seed: u64,
}

impl ChaosPlan {
    /// Derives a chaos plan from `(seed, n, intensity, window)`.
    ///
    /// Intensity 0 is the clean baseline: no crashes, no faults — only
    /// the seeded random schedule remains, so intensity curves start from
    /// an adversarially-scheduled but fault-free run.
    pub fn seeded(seed: u64, n: usize, intensity: usize, window: u64) -> Self {
        let victims = (intensity / 2).min(n.saturating_sub(1));
        ChaosPlan {
            intensity,
            crashes: CrashPlan::seeded(split_mix(seed ^ CRASH_SALT), n, victims, window),
            faults: FaultPlan::seeded(split_mix(seed ^ FAULT_SALT), intensity, intensity, window),
            schedule_seed: split_mix(seed ^ SCHED_SALT),
        }
    }

    /// The plan's intensity parameter.
    pub fn intensity(&self) -> usize {
        self.intensity
    }

    /// The crash layer.
    pub fn crashes(&self) -> &CrashPlan {
        &self.crashes
    }

    /// The memory-fault layer.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The seed of the plan's [`RandomScheduler`].
    pub fn schedule_seed(&self) -> u64 {
        self.schedule_seed
    }

    /// The schedule layer, as a replayable spec.
    pub fn schedule(&self) -> ScheduleSpec {
        ScheduleSpec::Random {
            seed: self.schedule_seed,
        }
    }

    /// Builds the scheduler the plan prescribes.
    pub fn scheduler(&self) -> RandomScheduler {
        RandomScheduler::new(self.schedule_seed)
    }

    /// A one-line summary for trial-failure context strings, in the same
    /// spirit as [`FaultPlan::summary`].
    pub fn summary(&self) -> String {
        format!(
            "chaos-plan:intensity={},crashes={},{},sched-seed={:#018x}",
            self.intensity,
            self.crashes.len(),
            self.faults.summary(),
            self.schedule_seed
        )
    }

    /// Packages one chaos trial as a replayable [`ReproCase`] (with the
    /// outcome fields left for the caller to fill in after execution).
    pub fn to_case(
        &self,
        experiment: &str,
        algorithm: &str,
        n: usize,
        toss: TossSpec,
        max_events: u64,
        max_steps: u64,
    ) -> ReproCase {
        ReproCase {
            experiment: experiment.to_string(),
            algorithm: algorithm.to_string(),
            n,
            toss,
            schedule: self.schedule(),
            crashes: self.crashes.clone(),
            recovery: None,
            faults: self.faults.clone(),
            max_events,
            max_steps,
            outcome: String::new(),
            class: String::new(),
            provenance: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_pure_functions() {
        let a = ChaosPlan::seeded(7, 8, 4, 64);
        let b = ChaosPlan::seeded(7, 8, 4, 64);
        assert_eq!(a, b);
        assert_ne!(a, ChaosPlan::seeded(8, 8, 4, 64));
    }

    #[test]
    fn intensity_zero_is_fault_free_but_still_randomly_scheduled() {
        let plan = ChaosPlan::seeded(3, 6, 0, 48);
        assert!(plan.crashes().is_empty());
        assert!(plan.faults().is_empty());
        assert!(matches!(plan.schedule(), ScheduleSpec::Random { .. }));
    }

    #[test]
    fn intensity_scales_every_layer_and_spares_one_process() {
        let plan = ChaosPlan::seeded(11, 4, 10, 80);
        assert_eq!(plan.intensity(), 10);
        assert_eq!(plan.crashes().len(), 3, "victims capped at n - 1");
        assert_eq!(plan.faults().spurious().len(), 10);
        assert_eq!(plan.faults().corruptions().len(), 10);
    }

    #[test]
    fn layers_use_decorrelated_sub_seeds() {
        // The same raw seed must not feed two layers: a plan whose crash
        // layer matched its fault layer's stream would correlate faults
        // with crash points.
        let plan = ChaosPlan::seeded(5, 8, 2, 64);
        assert_ne!(
            CrashPlan::seeded(5, 8, 1, 64),
            plan.crashes().clone(),
            "crash layer is salted"
        );
        assert_ne!(
            FaultPlan::seeded(5, 2, 2, 64),
            plan.faults().clone(),
            "fault layer is salted"
        );
        assert_ne!(plan.schedule_seed(), 5, "schedule seed is salted");
    }

    #[test]
    fn to_case_round_trips_through_json() {
        let plan = ChaosPlan::seeded(9, 6, 3, 48);
        let case = plan.to_case("e17", "counter-wakeup", 6, TossSpec::Seeded(9), 1000, 500);
        assert_eq!(case.crashes, *plan.crashes());
        assert_eq!(case.faults, *plan.faults());
        assert_eq!(case.schedule, plan.schedule());
        let back = ReproCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn summary_names_every_layer() {
        let s = ChaosPlan::seeded(1, 4, 2, 32).summary();
        assert!(s.starts_with("chaos-plan:intensity=2"), "{s}");
        assert!(s.contains("crashes="), "{s}");
        assert!(s.contains("fault-plan:"), "{s}");
        assert!(s.contains("sched-seed="), "{s}");
    }
}
