//! Versioned, checksummed checkpoint files for resumable jobs.
//!
//! A checkpoint is a single file `ckpt-<seq>.llsc` whose first line is a
//! self-describing header and whose remainder is an opaque payload (the
//! job layer stores JSON there, but this module does not care):
//!
//! ```text
//! llsc-job-checkpoint v1 fnv64=<16 hex digits> bytes=<payload length>\n
//! <payload bytes>
//! ```
//!
//! The header carries everything needed to detect the failure modes a
//! crash mid-write can produce:
//!
//! * **truncation** — `bytes=` disagrees with what is actually on disk;
//! * **corruption** — the FNV-1a checksum of the payload does not match;
//! * **version skew** — a checkpoint written by a different format
//!   revision is refused rather than misread;
//! * **torn writes** — [`write`] goes through
//!   [`atomic_write`](crate::durable::atomic_write), so a kill between
//!   create and rename leaves only an ignorable `*.tmp` sibling.
//!
//! [`load_latest`] scans a directory for the newest checkpoint that
//! decodes cleanly, skipping (and reporting) invalid ones, so a job
//! always resumes from the most recent *valid* state even if the most
//! recent *write* was interrupted. [`write`] keeps the two newest
//! checkpoints and prunes the rest, bounding disk use while guaranteeing
//! a fallback exists the instant the newest file turns out bad.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::durable::{atomic_write, fnv64};

/// Magic prefix of every checkpoint header line.
const MAGIC: &str = "llsc-job-checkpoint";
/// Format revision this module reads and writes.
const VERSION: &str = "v1";
/// How many checkpoint files [`write`] retains (newest first).
const KEEP: usize = 2;

/// Why a checkpoint file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first line is not a `llsc-job-checkpoint` header at all.
    BadHeader(String),
    /// The header is well-formed but written by an unknown format
    /// revision.
    StaleVersion(String),
    /// The payload on disk is shorter than the header's `bytes=` claim
    /// (classic crash-mid-write truncation).
    Truncated {
        /// Payload length the header promised.
        expected: usize,
        /// Payload length actually present.
        actual: usize,
    },
    /// The payload length matches but its FNV-1a checksum does not
    /// (bit rot or an overwritten range).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadHeader(line) => {
                write!(f, "not a checkpoint header: {line:?}")
            }
            CheckpointError::StaleVersion(version) => {
                write!(
                    f,
                    "unsupported checkpoint version {version:?} (expected {VERSION})"
                )
            }
            CheckpointError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated payload: header claims {expected} bytes, found {actual}"
                )
            }
            CheckpointError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch: header fnv64={expected:016x}, computed {actual:016x}"
                )
            }
        }
    }
}

/// Encodes `payload` into the on-disk checkpoint container format.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{MAGIC} {VERSION} fnv64={:016x} bytes={}\n",
        fnv64(payload),
        payload.len()
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Decodes a checkpoint container, verifying version, length, and
/// checksum, and returns the payload.
///
/// # Errors
///
/// A [`CheckpointError`] naming the first integrity check that failed.
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::BadHeader(preview(bytes)))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| CheckpointError::BadHeader(preview(bytes)))?;
    let mut fields = header.split_whitespace();
    if fields.next() != Some(MAGIC) {
        return Err(CheckpointError::BadHeader(header.to_string()));
    }
    let version = fields
        .next()
        .ok_or_else(|| CheckpointError::BadHeader(header.to_string()))?;
    if version != VERSION {
        return Err(CheckpointError::StaleVersion(version.to_string()));
    }
    let expected_hash = fields
        .next()
        .and_then(|f| f.strip_prefix("fnv64="))
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| CheckpointError::BadHeader(header.to_string()))?;
    let expected_len = fields
        .next()
        .and_then(|f| f.strip_prefix("bytes="))
        .and_then(|l| l.parse::<usize>().ok())
        .ok_or_else(|| CheckpointError::BadHeader(header.to_string()))?;
    let payload = &bytes[newline + 1..];
    if payload.len() < expected_len {
        return Err(CheckpointError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let payload = &payload[..expected_len];
    let actual_hash = fnv64(payload);
    if actual_hash != expected_hash {
        return Err(CheckpointError::ChecksumMismatch {
            expected: expected_hash,
            actual: actual_hash,
        });
    }
    Ok(payload.to_vec())
}

fn preview(bytes: &[u8]) -> String {
    String::from_utf8_lossy(&bytes[..bytes.len().min(40)]).into_owned()
}

/// File name of the checkpoint with sequence number `seq`.
pub fn file_name(seq: u64) -> String {
    format!("ckpt-{seq:08}.llsc")
}

/// Parses a checkpoint sequence number back out of a file name, if the
/// name matches the `ckpt-<seq>.llsc` scheme (temporary `*.tmp` siblings
/// deliberately do not).
pub fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".llsc")?
        .parse()
        .ok()
}

/// Atomically writes checkpoint `seq` into `dir` and prunes old state:
/// all but the [`KEEP`] newest checkpoints, plus any stray `*.tmp`
/// leftovers from interrupted writes.
///
/// # Errors
///
/// I/O errors from directory creation or the durable write itself;
/// pruning failures are ignored (stale files are harmless, merely
/// unclean).
pub fn write(dir: &Path, seq: u64, payload: &[u8]) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(seq));
    atomic_write(&path, encode(payload))?;
    let mut seqs: Vec<u64> = list_seqs(dir);
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for &old in seqs.iter().skip(KEEP) {
        let _ = fs::remove_file(dir.join(file_name(old)));
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    Ok(path)
}

/// Sequence numbers of every checkpoint file currently in `dir`
/// (unsorted; `*.tmp` leftovers and foreign files are ignored).
pub fn list_seqs(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .flatten()
        .filter_map(|e| parse_seq(&e.file_name().to_string_lossy()))
        .collect()
}

/// A checkpoint that failed to decode during [`load_latest`]'s scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCheckpoint {
    /// Sequence number of the rejected file.
    pub seq: u64,
    /// Why it was rejected.
    pub error: CheckpointError,
}

/// The result of scanning a checkpoint directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedCheckpoint {
    /// Sequence number of the newest checkpoint that decoded cleanly.
    pub seq: u64,
    /// Its payload.
    pub payload: Vec<u8>,
    /// Newer checkpoints that were present but invalid, newest first —
    /// surfaced so the caller can warn that recovery fell back.
    pub skipped: Vec<SkippedCheckpoint>,
}

/// Loads the newest checkpoint in `dir` that passes every integrity
/// check, falling back across truncated/corrupt/stale files (recorded in
/// `skipped`, newest first). Returns `None` if the directory holds no
/// valid checkpoint at all — including the fresh-start case where it
/// does not exist.
pub fn load_latest(dir: &Path) -> Option<LoadedCheckpoint> {
    let mut seqs = list_seqs(dir);
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut skipped = Vec::new();
    for seq in seqs {
        let path = dir.join(file_name(seq));
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                skipped.push(SkippedCheckpoint {
                    seq,
                    error: CheckpointError::BadHeader(format!("unreadable: {e}")),
                });
                continue;
            }
        };
        match decode(&bytes) {
            Ok(payload) => {
                return Some(LoadedCheckpoint {
                    seq,
                    payload,
                    skipped,
                });
            }
            Err(error) => skipped.push(SkippedCheckpoint { seq, error }),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::tmp_sibling;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("llsc-checkpoint-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_payload() {
        let payload = b"{\"chunks\":[\"0\",\"1\"]}".to_vec();
        assert_eq!(decode(&encode(&payload)).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        assert_eq!(decode(&encode(b"")).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncated_file_is_detected() {
        let full = encode(b"twelve bytes");
        let torn = &full[..full.len() - 5];
        assert_eq!(
            decode(torn),
            Err(CheckpointError::Truncated {
                expected: 12,
                actual: 7,
            })
        );
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = encode(b"deterministic payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn stale_version_header_is_refused() {
        let mut bytes = encode(b"payload");
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = String::from_utf8(bytes[..header_end].to_vec()).unwrap();
        let stale = header.replace(" v1 ", " v0 ");
        let mut out = stale.into_bytes();
        out.extend_from_slice(&bytes.split_off(header_end));
        assert_eq!(
            decode(&out),
            Err(CheckpointError::StaleVersion("v0".to_string()))
        );
    }

    #[test]
    fn garbage_is_a_bad_header() {
        assert!(matches!(
            decode(b"not a checkpoint\nat all"),
            Err(CheckpointError::BadHeader(_))
        ));
        assert!(matches!(
            decode(b"no newline whatsoever"),
            Err(CheckpointError::BadHeader(_))
        ));
    }

    #[test]
    fn write_then_load_latest_returns_the_newest() {
        let dir = scratch_dir("newest");
        write(&dir, 1, b"one").unwrap();
        write(&dir, 2, b"two").unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.payload, b"two");
        assert!(loaded.skipped.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pruning_keeps_only_the_two_newest() {
        let dir = scratch_dir("prune");
        for seq in 1..=5 {
            write(&dir, seq, format!("payload {seq}").as_bytes()).unwrap();
        }
        let mut seqs = list_seqs(&dir);
        seqs.sort_unstable();
        assert_eq!(seqs, vec![4, 5]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_valid() {
        let dir = scratch_dir("fallback");
        write(&dir, 1, b"good old state").unwrap();
        write(&dir, 2, b"doomed state").unwrap();
        // Flip a payload byte in the newest file.
        let newest = dir.join(file_name(2));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.payload, b"good old state");
        assert_eq!(loaded.skipped.len(), 1);
        assert_eq!(loaded.skipped[0].seq, 2);
        assert!(matches!(
            loaded.skipped[0].error,
            CheckpointError::ChecksumMismatch { .. }
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_newest_falls_back_to_previous_valid() {
        let dir = scratch_dir("truncated");
        write(&dir, 7, b"complete earlier checkpoint").unwrap();
        let newest = dir.join(file_name(8));
        let full = encode(b"interrupted later checkpoint");
        fs::write(&newest, &full[..full.len() - 10]).unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 7);
        assert_eq!(loaded.payload, b"complete earlier checkpoint");
        assert!(matches!(
            loaded.skipped[0].error,
            CheckpointError::Truncated { .. }
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_between_create_and_rename_leaves_tmp_that_is_ignored() {
        let dir = scratch_dir("kill-rename");
        write(&dir, 3, b"durable state").unwrap();
        // Simulate a writer killed after creating the temp file but
        // before the rename: a half-written ckpt-00000004.llsc.tmp.
        let tmp = tmp_sibling(&dir.join(file_name(4)));
        let half = encode(b"never completed");
        fs::write(&tmp, &half[..half.len() / 2]).unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.seq, 3);
        assert_eq!(loaded.payload, b"durable state");
        assert!(loaded.skipped.is_empty(), "tmp files are not checkpoints");
        // The next successful write cleans the leftover up.
        write(&dir, 4, b"completed this time").unwrap();
        assert!(!tmp.exists());
        assert_eq!(load_latest(&dir).unwrap().payload, b"completed this time");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_directory_loads_nothing() {
        let dir = scratch_dir("empty");
        assert!(load_latest(&dir).is_none());
        assert!(load_latest(&dir.join("does-not-exist")).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seq_file_names_round_trip() {
        assert_eq!(file_name(42), "ckpt-00000042.llsc");
        assert_eq!(parse_seq("ckpt-00000042.llsc"), Some(42));
        assert_eq!(parse_seq("ckpt-00000042.llsc.tmp"), None);
        assert_eq!(parse_seq("artifact.json"), None);
    }
}
