//! Coin tosses and toss assignments.
//!
//! Section 5.2 of the paper fixes randomness by a *toss assignment*: a
//! function `A : {p_0, ..., p_{n-1}} × ℕ → COIN-RANGE` giving the outcome of
//! each process's `j`-th coin toss. Fixing `A` makes `(All, A)`-run a
//! *unique* run, and lets the `(S, A)`-run replay exactly the same outcomes.
//! We embed the arbitrary `COIN-RANGE` into `u64`.

use crate::ProcessId;
use std::collections::BTreeMap;
use std::fmt::Debug;

/// A toss assignment `A(p_i, j)`: the outcome of the `j`-th coin toss
/// (0-based) performed by process `p_i`.
///
/// Implementations must be pure functions of `(pid, index)` — the executor
/// may query the same toss more than once across replayed runs and must see
/// identical outcomes.
pub trait TossAssignment: Debug + Send + Sync {
    /// The outcome of `p`'s `index`-th coin toss.
    fn outcome(&self, p: ProcessId, index: u64) -> u64;
}

/// The toss assignment that answers every toss with `0`.
///
/// Deterministic algorithms never toss, so this is the conventional
/// assignment for them; it also serves as a degenerate adversary choice for
/// randomized ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ZeroTosses;

impl TossAssignment for ZeroTosses {
    fn outcome(&self, _p: ProcessId, _index: u64) -> u64 {
        0
    }
}

/// A toss assignment that answers every toss with a fixed constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstantTosses(pub u64);

impl TossAssignment for ConstantTosses {
    fn outcome(&self, _p: ProcessId, _index: u64) -> u64 {
        self.0
    }
}

/// A pseudorandom toss assignment derived from a seed.
///
/// Outcomes are a pure function of `(seed, pid, index)` via SplitMix64
/// finalization, so replays are exact and two assignments with the same seed
/// are identical. Sampling many seeds approximates the distribution over
/// coin-toss sequences, which is how the expected-complexity experiments
/// (Lemma 3.1) estimate expectations.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{SeededTosses, TossAssignment, ProcessId};
/// let a = SeededTosses::new(42);
/// let b = SeededTosses::new(42);
/// assert_eq!(a.outcome(ProcessId(3), 7), b.outcome(ProcessId(3), 7));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeededTosses {
    seed: u64,
}

impl SeededTosses {
    /// Creates the assignment for `seed`.
    pub fn new(seed: u64) -> Self {
        SeededTosses { seed }
    }

    /// The seed this assignment was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TossAssignment for SeededTosses {
    fn outcome(&self, p: ProcessId, index: u64) -> u64 {
        // Mix the three coordinates through two rounds of SplitMix64.
        let mixed = splitmix64(self.seed ^ splitmix64((p.0 as u64) << 32 | (index & 0xFFFF_FFFF)))
            ^ splitmix64(index.rotate_left(17) ^ (p.0 as u64).wrapping_mul(0x9E37_79B9));
        splitmix64(mixed)
    }
}

/// A toss assignment given by an explicit table, with a default for
/// unlisted tosses.
///
/// Used to pin down specific adversarial coin sequences in tests and in the
/// Theorem 6.1 driver (which needs "a toss assignment such that
/// `(All, A)`-run is a terminating run").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapTosses {
    table: BTreeMap<(ProcessId, u64), u64>,
    default: u64,
}

impl MapTosses {
    /// Creates an empty table whose every toss answers `default`.
    pub fn new(default: u64) -> Self {
        MapTosses {
            table: BTreeMap::new(),
            default,
        }
    }

    /// Pins `p`'s `index`-th toss to `outcome`, returning `self` for
    /// chaining.
    pub fn with(mut self, p: ProcessId, index: u64, outcome: u64) -> Self {
        self.table.insert((p, index), outcome);
        self
    }

    /// Pins `p`'s toss sequence to the given outcomes starting at toss 0.
    pub fn with_sequence<I: IntoIterator<Item = u64>>(mut self, p: ProcessId, seq: I) -> Self {
        for (i, o) in seq.into_iter().enumerate() {
            self.table.insert((p, i as u64), o);
        }
        self
    }
}

impl TossAssignment for MapTosses {
    fn outcome(&self, p: ProcessId, index: u64) -> u64 {
        self.table.get(&(p, index)).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_constant() {
        assert_eq!(ZeroTosses.outcome(ProcessId(0), 0), 0);
        assert_eq!(ZeroTosses.outcome(ProcessId(9), 100), 0);
        assert_eq!(ConstantTosses(7).outcome(ProcessId(1), 2), 7);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = SeededTosses::new(1);
        for pid in 0..4 {
            for idx in 0..16 {
                assert_eq!(
                    a.outcome(ProcessId(pid), idx),
                    SeededTosses::new(1).outcome(ProcessId(pid), idx)
                );
            }
        }
        assert_eq!(a.seed(), 1);
    }

    #[test]
    fn seeded_varies_across_coordinates() {
        let a = SeededTosses::new(1);
        // Not a cryptographic requirement, but distinct coordinates should
        // essentially never collide for these small inputs.
        let mut seen = std::collections::BTreeSet::new();
        for pid in 0..8 {
            for idx in 0..8 {
                seen.insert(a.outcome(ProcessId(pid), idx));
            }
        }
        assert!(seen.len() > 60, "only {} distinct outcomes", seen.len());
    }

    #[test]
    fn seeded_varies_across_seeds() {
        let a = SeededTosses::new(1).outcome(ProcessId(0), 0);
        let b = SeededTosses::new(2).outcome(ProcessId(0), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn map_tosses_table_and_default() {
        let t = MapTosses::new(9)
            .with(ProcessId(0), 0, 1)
            .with_sequence(ProcessId(1), [5, 6]);
        assert_eq!(t.outcome(ProcessId(0), 0), 1);
        assert_eq!(t.outcome(ProcessId(0), 1), 9);
        assert_eq!(t.outcome(ProcessId(1), 0), 5);
        assert_eq!(t.outcome(ProcessId(1), 1), 6);
        assert_eq!(t.outcome(ProcessId(2), 0), 9);
    }
}
