//! The crash-fault adversary: deterministic crash-stop injection.
//!
//! Jayanti's adversary gets its power from delaying processes; a
//! crash-stop fault is the limit case where a process is delayed
//! *forever*. [`CrashPlan`] decides *who* crashes and *when* (an event
//! count in the global run — the adversary watches the run, exactly like
//! a [`Scheduler`]), and [`CrashScheduler`] wraps an inner scheduler and
//! injects the crashes while driving, so the same plan replayed against
//! the same algorithm and seed produces the identical partial run.
//!
//! Everything here is seeded and deterministic: [`CrashPlan::seeded`]
//! derives victims and crash points purely from `(seed, n, k, window)`,
//! which is how the E15 degradation experiment stays `--threads`-invariant.
//!
//! # Examples
//!
//! ```
//! use llsc_shmem::dsl::{done, ll, sc};
//! use llsc_shmem::{
//!     CrashPlan, CrashScheduler, Executor, ExecutorConfig, FnAlgorithm, ProcessId,
//!     RegisterId, RoundRobinScheduler, RunOutcome, Value, ZeroTosses,
//! };
//! use std::sync::Arc;
//!
//! // A no-op algorithm with one process crashed at the very first event:
//! // the run ends as a (correctly reported) partial execution.
//! let alg = FnAlgorithm::new("noop", |_pid, _n| {
//!     ll(RegisterId(0), |_| done(Value::Unit)).into_program()
//! });
//! let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), ExecutorConfig::default());
//! let plan = CrashPlan::at([(ProcessId(1), 0)]);
//! let mut sched = CrashScheduler::new(RoundRobinScheduler::new(), plan);
//! sched.drive(&mut exec, 1_000).unwrap();
//! assert_eq!(exec.run_outcome(), RunOutcome::Crashed { pid: ProcessId(1) });
//! ```

use crate::rng::XorShift64;
use crate::{Algorithm, Executor, ProcessId, RunError, Scheduler};

/// A deterministic crash schedule: which processes crash, and at which
/// global event count each crash fires.
///
/// A crash with threshold `t` fires as soon as the executor has recorded
/// at least `t` events (threshold 0 crashes the process before it takes
/// any step). Crashes against already-terminated processes are no-ops — a
/// process that finished before its crash point simply survived.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// `(victim, event-count threshold)` pairs, in victim id order.
    crashes: Vec<(ProcessId, u64)>,
}

impl CrashPlan {
    /// The empty plan: no process ever crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// A plan from explicit `(victim, event threshold)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same victim appears twice.
    pub fn at<I: IntoIterator<Item = (ProcessId, u64)>>(crashes: I) -> Self {
        let mut crashes: Vec<(ProcessId, u64)> = crashes.into_iter().collect();
        crashes.sort_by_key(|(p, _)| p.0);
        assert!(
            crashes.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate victim in crash plan"
        );
        CrashPlan { crashes }
    }

    /// A deterministic plan derived purely from `(seed, n, k, window)`:
    /// `k` distinct victims out of `n` processes (chosen by a seeded
    /// Fisher–Yates shuffle), each with an independent crash threshold in
    /// `0..window` events.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn seeded(seed: u64, n: usize, k: usize, window: u64) -> Self {
        assert!(k <= n, "cannot crash {k} of {n} processes");
        let mut rng = XorShift64::new(seed ^ 0xC4A5_11FA_057B_ED5E);
        let mut pool: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first k slots become the victim set.
        for i in 0..k {
            let j = i + rng.index(n - i);
            pool.swap(i, j);
        }
        let crashes: Vec<(ProcessId, u64)> = pool[..k]
            .iter()
            .map(|&p| (ProcessId(p), rng.below(window.max(1))))
            .collect();
        CrashPlan::at(crashes)
    }

    /// The planned crashes, in victim id order.
    pub fn crashes(&self) -> &[(ProcessId, u64)] {
        &self.crashes
    }

    /// The number of planned crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// `true` iff the plan crashes nobody.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// Drives an executor under an inner [`Scheduler`] while injecting the
/// crashes of a [`CrashPlan`].
///
/// This is a *driver*, not a `Scheduler` implementation: injecting a
/// crash mutates the executor, which `Scheduler::next`'s shared borrow
/// cannot do. [`CrashScheduler::drive`] interleaves fault injection with
/// single steps of [`Executor::drive`], checking for due crashes before
/// every scheduling decision, so a crash point is honoured at exactly the
/// same event count regardless of the inner schedule.
#[derive(Clone, Debug)]
pub struct CrashScheduler<S> {
    inner: S,
    plan: CrashPlan,
}

impl<S: Scheduler> CrashScheduler<S> {
    /// Wraps `inner` with the given crash plan.
    pub fn new(inner: S, plan: CrashPlan) -> Self {
        CrashScheduler { inner, plan }
    }

    /// The crash plan.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Crashes every process whose threshold has been reached. Terminated
    /// processes survive their crash point (see [`CrashPlan`]).
    fn apply_due_crashes(&self, exec: &mut Executor) {
        for &(p, at) in self.plan.crashes() {
            if exec.recorded_events() >= at && exec.is_runnable(p) {
                exec.crash(p);
            }
        }
    }

    /// Runs the executor under the inner scheduler until every process
    /// settles (terminates or crashes), the inner scheduler declines, or
    /// `max_steps` steps have been taken. Returns the steps taken;
    /// classify the result with [`Executor::run_outcome`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] the executor reports
    /// (budget/burst faults — a crash injected by this driver is a
    /// recorded fact about the run, not an `Err`).
    pub fn drive(&mut self, exec: &mut Executor, max_steps: u64) -> Result<u64, RunError> {
        let mut steps = 0;
        loop {
            self.apply_due_crashes(exec);
            if steps >= max_steps || exec.all_settled() {
                return Ok(steps);
            }
            let took = exec.drive(&mut self.inner, 1)?;
            if took == 0 {
                // The inner scheduler declined.
                return Ok(steps);
            }
            steps += took;
        }
    }
}

/// One victim's crash/recovery state inside a
/// [`RecoveringCrashScheduler`].
#[derive(Clone, Debug)]
struct RecoveryEntry {
    victim: ProcessId,
    /// Event threshold of the next crash.
    next_at: u64,
    /// Crashes still allowed for this victim (the bounded crash budget).
    crashes_left: u64,
    /// Event threshold of the pending recovery, while crashed.
    recover_at: Option<u64>,
    /// Re-arm distance between a recovery and the victim's next crash
    /// (the plan's original threshold, clamped to at least 1 so a re-crash
    /// never fires at the same event count as the recovery).
    period: u64,
}

/// Drives an executor under the crash-*recovery* fault model: the
/// [`CrashPlan`]'s crashes fire exactly as under [`CrashScheduler`], but
/// each victim is *recovered* ([`Executor::recover`]) a fixed number of
/// events later — it loses its local state and re-enters through the
/// algorithm's recovery section (its respawned program) against the
/// surviving shared memory. Each victim may be re-crashed after
/// recovering, up to a per-victim crash `budget`, re-armed at the plan's
/// original threshold distance; this is the "repeated crashes of the same
/// process" adversary the recoverable algorithms are measured against.
///
/// Recoveries are driven by the same deterministic global event clock as
/// crashes. One asymmetry: when every process has settled (so no event
/// will ever advance the clock again), pending recoveries fire
/// immediately instead of deadlocking the run — a crashed-but-recoverable
/// process is *not* gone forever, which is the whole point of the model.
///
/// Like [`CrashScheduler`] this is a driver, not a [`Scheduler`]: both
/// crashing and recovering mutate the executor.
#[derive(Clone, Debug)]
pub struct RecoveringCrashScheduler<S> {
    inner: S,
    entries: Vec<RecoveryEntry>,
    delay: u64,
    crashes_delivered: u64,
    recoveries: u64,
}

impl<S: Scheduler> RecoveringCrashScheduler<S> {
    /// Wraps `inner` with `plan`'s crashes, recovering each victim
    /// `delay` events after its crash (clamped to at least 1) and
    /// allowing each victim at most `budget` crashes in total (`budget
    /// >= 1`; the plan's own crash is the first).
    pub fn new(inner: S, plan: &CrashPlan, delay: u64, budget: u64) -> Self {
        let entries = plan
            .crashes()
            .iter()
            .map(|&(victim, at)| RecoveryEntry {
                victim,
                next_at: at,
                crashes_left: budget.max(1),
                recover_at: None,
                period: at.max(1),
            })
            .collect();
        RecoveringCrashScheduler {
            inner,
            entries,
            delay: delay.max(1),
            crashes_delivered: 0,
            recoveries: 0,
        }
    }

    /// Crashes delivered so far (across all victims and re-crashes).
    pub fn crashes_delivered(&self) -> u64 {
        self.crashes_delivered
    }

    /// Recoveries performed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Fires every due recovery and due crash at the current event count.
    /// Recoveries are checked first so a victim whose recovery and
    /// re-crash are both due gets to recover (and take its re-armed crash
    /// at a strictly later event).
    fn apply_due(&mut self, exec: &mut Executor, alg: &dyn Algorithm) {
        let now = exec.recorded_events();
        let (mut crashed, mut recovered) = (0u64, 0u64);
        for e in &mut self.entries {
            if let Some(at) = e.recover_at {
                if now >= at {
                    if exec.recover(e.victim, alg) {
                        recovered += 1;
                    }
                    e.recover_at = None;
                    if e.crashes_left > 0 {
                        e.next_at = now + e.period;
                    }
                }
            }
            if e.crashes_left > 0
                && e.recover_at.is_none()
                && now >= e.next_at
                && exec.crash(e.victim)
            {
                crashed += 1;
                e.crashes_left -= 1;
                e.recover_at = Some(now + self.delay);
            }
        }
        self.crashes_delivered += crashed;
        self.recoveries += recovered;
    }

    /// Fires every pending recovery regardless of its threshold — called
    /// when the run has settled, so the event clock will never reach the
    /// thresholds. Returns `true` iff at least one process was revived.
    fn force_pending_recoveries(&mut self, exec: &mut Executor, alg: &dyn Algorithm) -> bool {
        let now = exec.recorded_events();
        let mut revived = false;
        for e in &mut self.entries {
            if e.recover_at.take().is_some() {
                if exec.recover(e.victim, alg) {
                    self.recoveries += 1;
                    revived = true;
                }
                if e.crashes_left > 0 {
                    e.next_at = now + e.period;
                }
            }
        }
        revived
    }

    /// Runs the executor under the inner scheduler until every process
    /// settles with no recovery pending, the inner scheduler declines, or
    /// `max_steps` steps have been taken. Returns the steps taken;
    /// classify the result with [`Executor::run_outcome`]. `alg` must be
    /// the algorithm the executor is running (recovery respawns its
    /// programs).
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] the executor reports, exactly
    /// like [`CrashScheduler::drive`].
    pub fn drive(
        &mut self,
        exec: &mut Executor,
        alg: &dyn Algorithm,
        max_steps: u64,
    ) -> Result<u64, RunError> {
        let mut steps = 0;
        loop {
            self.apply_due(exec, alg);
            if steps >= max_steps {
                return Ok(steps);
            }
            if exec.all_settled() {
                if self.force_pending_recoveries(exec, alg) {
                    continue;
                }
                return Ok(steps);
            }
            let took = exec.drive(&mut self.inner, 1)?;
            if took == 0 {
                // The inner scheduler declined.
                return Ok(steps);
            }
            steps += took;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{done, ll, sc};
    use crate::{
        Algorithm, ExecutorConfig, FnAlgorithm, RegisterId, RoundRobinScheduler, RunOutcome, Value,
        ZeroTosses,
    };
    use std::sync::Arc;

    /// The counter-increment algorithm: each process LL/SC-increments R0
    /// once and returns the value it installed.
    fn counter_like() -> impl Algorithm {
        FnAlgorithm::new("inc", |_pid, _n| {
            fn attempt() -> crate::dsl::Step {
                let r = RegisterId(0);
                ll(r, move |prev| {
                    let old = prev.as_int().unwrap_or(0);
                    sc(r, Value::from(old + 1), move |ok, _| {
                        if ok {
                            done(Value::from(old + 1))
                        } else {
                            attempt()
                        }
                    })
                })
            }
            attempt().into_program()
        })
        .with_initial_memory(vec![(RegisterId(0), Value::from(0i64))])
    }

    fn exec(n: usize) -> Executor {
        Executor::new(
            &counter_like(),
            n,
            Arc::new(ZeroTosses),
            ExecutorConfig::default(),
        )
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut a = exec(3);
        CrashScheduler::new(RoundRobinScheduler::new(), CrashPlan::none())
            .drive(&mut a, 1_000)
            .unwrap();
        let mut b = exec(3);
        b.drive(&mut RoundRobinScheduler::new(), 1_000).unwrap();
        assert_eq!(a.run().events(), b.run().events());
        assert_eq!(a.run_outcome(), RunOutcome::Completed);
    }

    #[test]
    fn crash_at_zero_keeps_victim_stepless() {
        let mut e = exec(3);
        let plan = CrashPlan::at([(ProcessId(1), 0)]);
        CrashScheduler::new(RoundRobinScheduler::new(), plan)
            .drive(&mut e, 1_000)
            .unwrap();
        assert_eq!(e.run().shared_steps(ProcessId(1)), 0);
        assert!(e.is_terminated(ProcessId(0)) && e.is_terminated(ProcessId(2)));
        assert_eq!(e.run_outcome(), RunOutcome::Crashed { pid: ProcessId(1) });
        // Survivors observed a 2-process world: the counter reads 2.
        assert_eq!(e.memory().peek(RegisterId(0)), Value::from(2i64));
    }

    #[test]
    fn terminated_process_survives_its_crash_point() {
        // p0 finishes long before event 1000; the crash is a no-op.
        let mut e = exec(2);
        let plan = CrashPlan::at([(ProcessId(0), 1_000)]);
        CrashScheduler::new(RoundRobinScheduler::new(), plan)
            .drive(&mut e, 10_000)
            .unwrap();
        assert_eq!(e.run_outcome(), RunOutcome::Completed);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_well_formed() {
        for k in 0..=5 {
            let a = CrashPlan::seeded(42, 5, k, 100);
            let b = CrashPlan::seeded(42, 5, k, 100);
            assert_eq!(a, b);
            assert_eq!(a.len(), k);
            assert_eq!(a.is_empty(), k == 0);
            // Victims are distinct and in range (CrashPlan::at checks
            // duplicates; thresholds are within the window).
            assert!(a.crashes().iter().all(|(p, at)| p.0 < 5 && *at < 100));
        }
        // Different seeds give different plans (for a window this large a
        // collision across all k would be astonishing).
        let plans: Vec<_> = (0..8)
            .map(|s| CrashPlan::seeded(s, 16, 8, 1_000_000))
            .collect();
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn seeded_drive_is_reproducible() {
        let run_once = || {
            let mut e = exec(6);
            let plan = CrashPlan::seeded(7, 6, 2, 10);
            CrashScheduler::new(RoundRobinScheduler::new(), plan)
                .drive(&mut e, 10_000)
                .unwrap();
            (e.run().events().to_vec(), e.run_outcome())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "duplicate victim")]
    fn duplicate_victims_are_rejected() {
        CrashPlan::at([(ProcessId(0), 1), (ProcessId(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn seeded_rejects_k_above_n() {
        CrashPlan::seeded(0, 3, 4, 10);
    }

    #[test]
    fn crashing_everyone_at_event_zero_settles_with_no_events() {
        let mut e = exec(3);
        let plan = CrashPlan::at((0..3).map(|p| (ProcessId(p), 0)));
        let steps = CrashScheduler::new(RoundRobinScheduler::new(), plan)
            .drive(&mut e, 1_000)
            .unwrap();
        assert_eq!(steps, 0, "nobody was left to step");
        assert_eq!(e.recorded_events(), 0);
        assert!(e.all_settled() && !e.all_terminated());
        assert_eq!(e.run_outcome(), RunOutcome::Crashed { pid: ProcessId(0) });
    }

    #[test]
    fn threshold_beyond_the_runs_end_never_fires() {
        // The whole run finishes in well under 1000 events; a crash point
        // scheduled out there is dead code in the plan.
        let mut e = exec(4);
        let plan = CrashPlan::at([(ProcessId(2), 1_000), (ProcessId(3), u64::MAX)]);
        CrashScheduler::new(RoundRobinScheduler::new(), plan)
            .drive(&mut e, 100_000)
            .unwrap();
        assert_eq!(e.run_outcome(), RunOutcome::Completed);
        assert!(!e.is_crashed(ProcessId(2)) && !e.is_crashed(ProcessId(3)));
    }

    #[test]
    fn repeated_crashes_of_one_process_are_noops() {
        // CrashPlan::at rejects duplicate victims; at the executor level a
        // second crash of the same process (or of a settled one) reports
        // `false` and changes nothing.
        let mut e = exec(2);
        assert!(e.crash(ProcessId(1)));
        assert!(!e.crash(ProcessId(1)), "double crash is a no-op");
        e.drive(&mut RoundRobinScheduler::new(), 1_000).unwrap();
        assert!(!e.crash(ProcessId(0)), "terminated processes cannot crash");
        assert_eq!(e.run_outcome(), RunOutcome::Crashed { pid: ProcessId(1) });
    }

    #[test]
    fn seeded_with_k_equal_to_n_crashes_everyone() {
        let plan = CrashPlan::seeded(3, 4, 4, 10);
        assert_eq!(plan.len(), 4);
        let victims: Vec<usize> = plan.crashes().iter().map(|(p, _)| p.0).collect();
        assert_eq!(victims, vec![0, 1, 2, 3], "all of them, in id order");
        let mut e = exec(4);
        CrashScheduler::new(RoundRobinScheduler::new(), plan)
            .drive(&mut e, 10_000)
            .unwrap();
        assert!(!e.all_terminated(), "k = n leaves no survivor group");
        assert!(matches!(e.run_outcome(), RunOutcome::Crashed { .. }));
    }

    #[test]
    fn seeded_with_zero_window_crashes_at_event_zero() {
        // window = 0 clamps to 1, so every threshold is exactly 0.
        let plan = CrashPlan::seeded(5, 3, 2, 0);
        assert!(plan.crashes().iter().all(|&(_, at)| at == 0));
    }

    #[test]
    fn recovery_revives_a_victim_crashed_at_event_zero() {
        // Crash before the victim's first step: the recovery section is
        // its very first code to run.
        let alg = counter_like();
        let mut e = exec(3);
        let plan = CrashPlan::at([(ProcessId(1), 0)]);
        let mut sched = RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 3, 1);
        sched.drive(&mut e, &alg, 10_000).unwrap();
        assert_eq!(e.run_outcome(), RunOutcome::Completed);
        assert_eq!(sched.crashes_delivered(), 1);
        assert_eq!(sched.recoveries(), 1);
        assert_eq!(e.run().crash_count(ProcessId(1)), 1);
        assert_eq!(e.run().recovery_count(ProcessId(1)), 1);
        assert!(e.run().shared_steps(ProcessId(1)) > 0, "it ran after all");
    }

    #[test]
    fn second_crash_lands_inside_the_recovery_section() {
        // Budget 2 with a threshold of 1: the victim crashes at event 1,
        // recovers 2 events later, is re-crashed 1 event after that
        // (mid-recovery-section), and recovers again. The run still
        // completes and both crash/recovery pairs are accounted.
        let alg = counter_like();
        let mut e = exec(2);
        let plan = CrashPlan::at([(ProcessId(0), 1)]);
        let mut sched = RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 2, 2);
        sched.drive(&mut e, &alg, 10_000).unwrap();
        assert_eq!(e.run_outcome(), RunOutcome::Completed);
        assert_eq!(sched.crashes_delivered(), 2);
        assert_eq!(sched.recoveries(), 2);
        assert_eq!(e.run().crash_count(ProcessId(0)), 2);
        assert_eq!(e.run().recovery_count(ProcessId(0)), 2);
    }

    #[test]
    fn bounded_budget_limits_repeated_crashes_of_one_process() {
        let alg = counter_like();
        for budget in [1u64, 2, 3] {
            let mut e = exec(2);
            let plan = CrashPlan::at([(ProcessId(1), 1)]);
            let mut sched =
                RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 1, budget);
            sched.drive(&mut e, &alg, 100_000).unwrap();
            assert_eq!(e.run_outcome(), RunOutcome::Completed);
            assert_eq!(sched.crashes_delivered(), budget, "budget is spent");
            assert_eq!(sched.recoveries(), budget, "every crash is recovered");
            assert_eq!(e.run().crash_count(ProcessId(1)), budget);
        }
    }

    #[test]
    fn pending_recovery_fires_when_the_run_settles_early() {
        // The victim's recovery threshold is far beyond the survivors'
        // total events; once they finish, the event clock stops, and the
        // pending recovery must fire anyway instead of stranding the run
        // as Crashed.
        let alg = counter_like();
        let mut e = exec(2);
        let plan = CrashPlan::at([(ProcessId(0), 0)]);
        let mut sched =
            RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 1_000_000, 1);
        sched.drive(&mut e, &alg, 10_000).unwrap();
        assert_eq!(e.run_outcome(), RunOutcome::Completed);
        assert_eq!(sched.recoveries(), 1);
    }

    #[test]
    fn recovering_drive_is_deterministic() {
        let alg = counter_like();
        let run_once = || {
            let mut e = exec(5);
            let plan = CrashPlan::seeded(11, 5, 3, 12);
            let mut sched = RecoveringCrashScheduler::new(RoundRobinScheduler::new(), &plan, 4, 2);
            sched.drive(&mut e, &alg, 100_000).unwrap();
            (
                e.run().events().to_vec(),
                e.run_outcome(),
                sched.crashes_delivered(),
                sched.recoveries(),
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn budget_faults_propagate_through_the_wrapper() {
        let alg = FnAlgorithm::new("ll-forever", |_pid, _n| {
            fn attempt() -> crate::dsl::Step {
                ll(RegisterId(0), move |_| attempt())
            }
            attempt().into_program()
        });
        let mut e = Executor::new(
            &alg,
            2,
            Arc::new(ZeroTosses),
            ExecutorConfig {
                max_events: 20,
                max_local_burst: 10,
                record_details: true,
            },
        );
        let err = CrashScheduler::new(RoundRobinScheduler::new(), CrashPlan::none())
            .drive(&mut e, 1_000_000)
            .unwrap_err();
        assert_eq!(err, RunError::BudgetExhausted { events: 20 });
    }
}
