//! A continuation-passing DSL for writing [`Program`]s.
//!
//! Implementing the resumable [`Program`] automaton by hand means writing an
//! explicit state machine for every algorithm. This module instead lets
//! algorithms be written in direct style, with one closure per suspension
//! point:
//!
//! ```
//! use llsc_shmem::dsl::{ll, sc, done};
//! use llsc_shmem::{RegisterId, Value};
//!
//! let r = RegisterId(0);
//! let step = ll(r, move |prev| {
//!     let old = prev.as_int().unwrap_or(0);
//!     sc(r, Value::from(old + 1), move |ok, _| {
//!         done(Value::from(ok))
//!     })
//! });
//! let _program = step.into_program();
//! ```
//!
//! Loops are written either with recursive `fn` items or with the [`fix`]
//! combinator, which threads a loop state through a recursing closure.

use crate::{Action, Feedback, Operation, Program, RegisterId, Response, Value};
use std::fmt;
use std::rc::Rc;

/// A suspended program fragment: the next step and the continuation that
/// consumes its outcome.
pub enum Step {
    /// Toss a coin, then continue with the outcome.
    Toss(Box<dyn FnOnce(u64) -> Step>),
    /// Perform a shared-memory operation, then continue with its response.
    Op(Operation, Box<dyn FnOnce(Response) -> Step>),
    /// Terminate, returning the value.
    Done(Value),
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Toss(_) => write!(f, "Step::Toss(..)"),
            Step::Op(op, _) => write!(f, "Step::Op({op}, ..)"),
            Step::Done(v) => write!(f, "Step::Done({v})"),
        }
    }
}

impl Step {
    /// Wraps this fragment into a boxed [`Program`] ready for the executor.
    pub fn into_program(self) -> Box<dyn Program> {
        Box::new(ContProgram {
            state: DslState::Initial(self),
        })
    }
}

/// Tosses a coin; the continuation receives the outcome.
pub fn toss(k: impl FnOnce(u64) -> Step + 'static) -> Step {
    Step::Toss(Box::new(k))
}

/// Performs `LL(r)`; the continuation receives the register value.
pub fn ll(r: RegisterId, k: impl FnOnce(Value) -> Step + 'static) -> Step {
    Step::Op(
        Operation::Ll(r),
        Box::new(move |resp| match resp {
            Response::Value(v) => k(v),
            other => unreachable!("LL returned {other}"),
        }),
    )
}

/// Performs `validate(r)`; the continuation receives `(valid, value)`.
pub fn validate(r: RegisterId, k: impl FnOnce(bool, Value) -> Step + 'static) -> Step {
    Step::Op(
        Operation::Validate(r),
        Box::new(move |resp| match resp {
            Response::Flagged { ok, value } => k(ok, value),
            other => unreachable!("validate returned {other}"),
        }),
    )
}

/// Reads `r` without perturbing it (a `validate` whose flag is ignored —
/// the paper's idiom for `read`).
pub fn read(r: RegisterId, k: impl FnOnce(Value) -> Step + 'static) -> Step {
    validate(r, move |_ok, v| k(v))
}

/// Performs `SC(r, v)`; the continuation receives
/// `(succeeded, observed value)`.
pub fn sc(r: RegisterId, v: Value, k: impl FnOnce(bool, Value) -> Step + 'static) -> Step {
    Step::Op(
        Operation::Sc(r, v),
        Box::new(move |resp| match resp {
            Response::Flagged { ok, value } => k(ok, value),
            other => unreachable!("SC returned {other}"),
        }),
    )
}

/// Performs `swap(r, v)`; the continuation receives the previous value.
pub fn swap(r: RegisterId, v: Value, k: impl FnOnce(Value) -> Step + 'static) -> Step {
    Step::Op(
        Operation::Swap(r, v),
        Box::new(move |resp| match resp {
            Response::Value(v) => k(v),
            other => unreachable!("swap returned {other}"),
        }),
    )
}

/// Performs `move(src, dst)`; the continuation receives nothing (move
/// returns only `ack`).
///
/// `src` and `dst` should be distinct: the shared memory accepts a
/// self-move (it just clears `Pset(src)`), but the Section-4 adversary
/// machinery in `llsc-core` rejects self-moves, whose formal `movers`
/// bookkeeping would falsify Lemma 4.1.
pub fn mv(src: RegisterId, dst: RegisterId, k: impl FnOnce() -> Step + 'static) -> Step {
    Step::Op(
        Operation::Move { src, dst },
        Box::new(move |resp| match resp {
            Response::Ack => k(),
            other => unreachable!("move returned {other}"),
        }),
    )
}

/// Terminates the program, returning `v`.
pub fn done(v: Value) -> Step {
    Step::Done(v)
}

/// A handle for re-entering a [`fix`] loop with a new state.
pub struct Recur<S>(Rc<dyn Fn(S) -> Step>);

impl<S> Clone for Recur<S> {
    fn clone(&self) -> Self {
        Recur(Rc::clone(&self.0))
    }
}

impl<S> fmt::Debug for Recur<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recur(..)")
    }
}

impl<S> Recur<S> {
    /// Re-enters the loop body with state `s`.
    pub fn call(&self, s: S) -> Step {
        (self.0)(s)
    }
}

/// The fixpoint combinator: runs `body(init, recur)` where calling
/// `recur.call(s)` re-enters the body with state `s`.
///
/// This is how environment-capturing loops are written in the DSL (plain
/// `fn` recursion cannot capture variables):
///
/// ```
/// use llsc_shmem::dsl::{fix, ll, sc, done};
/// use llsc_shmem::{RegisterId, Value};
///
/// let r = RegisterId(0);
/// // Retry SC(r, 1) until it succeeds; count attempts.
/// let step = fix(
///     move |attempts: u32, again| {
///         ll(r, move |_| {
///             sc(r, Value::from(1i64), move |ok, _| {
///                 if ok { done(Value::from(attempts as i64)) } else { again.call(attempts + 1) }
///             })
///         })
///     },
///     1,
/// );
/// let _p = step.into_program();
/// ```
pub fn fix<S: 'static>(body: impl Fn(S, Recur<S>) -> Step + 'static, init: S) -> Step {
    fn make<S: 'static>(f: Rc<dyn Fn(S, Recur<S>) -> Step>) -> Recur<S> {
        let g = Rc::clone(&f);
        Recur(Rc::new(move |s| {
            let again = make(Rc::clone(&g));
            g(s, again)
        }))
    }
    let f: Rc<dyn Fn(S, Recur<S>) -> Step> = Rc::new(body);
    make(f).call(init)
}

/// Performs the given operations in order, ignoring their responses, then
/// continues.
pub fn perform_all(ops: Vec<Operation>, k: impl FnOnce() -> Step + 'static) -> Step {
    let mut step = k();
    for op in ops.into_iter().rev() {
        step = Step::Op(op, Box::new(move |_| step));
    }
    step
}

enum DslState {
    Initial(Step),
    AwaitCoin(Box<dyn FnOnce(u64) -> Step>),
    AwaitResp(Box<dyn FnOnce(Response) -> Step>),
    Finished,
}

struct ContProgram {
    state: DslState,
}

impl ContProgram {
    fn emit(&mut self, step: Step) -> Action {
        match step {
            Step::Toss(k) => {
                self.state = DslState::AwaitCoin(k);
                Action::Toss
            }
            Step::Op(op, k) => {
                self.state = DslState::AwaitResp(k);
                Action::Invoke(op)
            }
            Step::Done(v) => {
                self.state = DslState::Finished;
                Action::Return(v)
            }
        }
    }
}

impl Program for ContProgram {
    fn next(&mut self, feedback: Feedback) -> Action {
        let state = std::mem::replace(&mut self.state, DslState::Finished);
        match (state, feedback) {
            (DslState::Initial(step), Feedback::Start) => self.emit(step),
            (DslState::AwaitCoin(k), Feedback::Coin(c)) => self.emit(k(c)),
            (DslState::AwaitResp(k), Feedback::Response(r)) => self.emit(k(r)),
            (_, fb) => panic!("DSL program protocol violation: unexpected feedback {fb}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Feedback, ProcessId, Response};

    #[test]
    fn straight_line_program_emits_expected_protocol() {
        let r0 = RegisterId(0);
        let mut p = ll(r0, move |v| {
            assert_eq!(v, Value::Unit);
            done(Value::from(1i64))
        })
        .into_program();
        assert_eq!(p.next(Feedback::Start), Action::Invoke(Operation::Ll(r0)));
        assert_eq!(
            p.next(Feedback::Response(Response::Value(Value::Unit))),
            Action::Return(Value::from(1i64))
        );
    }

    #[test]
    fn toss_feeds_outcome() {
        let mut p = toss(|c| done(Value::from(c as i64))).into_program();
        assert_eq!(p.next(Feedback::Start), Action::Toss);
        assert_eq!(p.next(Feedback::Coin(9)), Action::Return(Value::from(9i64)));
    }

    #[test]
    fn read_ignores_validity_flag() {
        let mut p = read(RegisterId(3), done).into_program();
        p.next(Feedback::Start);
        let a = p.next(Feedback::Response(Response::Flagged {
            ok: false,
            value: Value::from(5i64),
        }));
        assert_eq!(a, Action::Return(Value::from(5i64)));
    }

    #[test]
    fn mv_continues_after_ack() {
        let mut p = mv(RegisterId(0), RegisterId(1), || done(Value::Unit)).into_program();
        let a = p.next(Feedback::Start);
        assert_eq!(
            a,
            Action::Invoke(Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1)
            })
        );
        assert_eq!(
            p.next(Feedback::Response(Response::Ack)),
            Action::Return(Value::Unit)
        );
    }

    #[test]
    fn fix_loops_until_condition() {
        // Toss until outcome 0 is seen; return the number of tosses.
        let mut p = fix(
            |count: i64, again| {
                toss(move |c| {
                    if c == 0 {
                        done(Value::from(count + 1))
                    } else {
                        again.call(count + 1)
                    }
                })
            },
            0,
        )
        .into_program();
        assert_eq!(p.next(Feedback::Start), Action::Toss);
        assert_eq!(p.next(Feedback::Coin(5)), Action::Toss);
        assert_eq!(p.next(Feedback::Coin(5)), Action::Toss);
        assert_eq!(p.next(Feedback::Coin(0)), Action::Return(Value::from(3i64)));
    }

    #[test]
    fn perform_all_runs_ops_in_order() {
        let ops = vec![
            Operation::Swap(RegisterId(0), Value::from(1i64)),
            Operation::Swap(RegisterId(1), Value::from(2i64)),
        ];
        let mut p = perform_all(ops, || done(Value::Unit)).into_program();
        let a0 = p.next(Feedback::Start);
        assert_eq!(
            a0,
            Action::Invoke(Operation::Swap(RegisterId(0), Value::from(1i64)))
        );
        let a1 = p.next(Feedback::Response(Response::Value(Value::Unit)));
        assert_eq!(
            a1,
            Action::Invoke(Operation::Swap(RegisterId(1), Value::from(2i64)))
        );
        assert_eq!(
            p.next(Feedback::Response(Response::Value(Value::Unit))),
            Action::Return(Value::Unit)
        );
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn wrong_feedback_panics() {
        let mut p = toss(|_| done(Value::Unit)).into_program();
        p.next(Feedback::Start);
        // A response when a coin was expected.
        p.next(Feedback::Response(Response::Ack));
    }

    #[test]
    fn executor_integration_with_fix() {
        use crate::{ExecutorConfig, FnAlgorithm, SeededTosses};
        // Each process tosses until it sees an even outcome, then LLs R0.
        let alg = FnAlgorithm::new("toss-loop", |_pid: ProcessId, _n| {
            fix(
                |(), again| {
                    toss(move |c| {
                        if c % 2 == 0 {
                            ll(RegisterId(0), |_| done(Value::from(1i64)))
                        } else {
                            again.call(())
                        }
                    })
                },
                (),
            )
            .into_program()
        });
        let mut e = crate::Executor::new(
            &alg,
            3,
            std::sync::Arc::new(SeededTosses::new(11)),
            ExecutorConfig::default(),
        );
        while e.step_round_robin().unwrap() {}
        assert!(e.all_terminated());
        for p in ProcessId::all(3) {
            assert_eq!(e.run().shared_steps(p), 1);
            assert!(e.run().tosses(p) >= 1);
        }
    }
}
