//! Crash-safe file emission.
//!
//! Every JSON artifact this workspace writes — experiment tables, repro
//! cases, bench baselines, job checkpoints — goes through
//! [`atomic_write`]: the contents land in a same-directory temporary
//! file, are fsynced, and are renamed over the destination, so a process
//! killed at any instant leaves either the old file, the new file, or an
//! ignorable `*.tmp` — never a half-written artifact.
//!
//! [`fnv64`] is the workspace's content checksum (FNV-1a, 64-bit): small
//! enough to hand-roll in a registry-less build environment, strong
//! enough to detect the torn or bit-flipped checkpoint files the job
//! layer must survive.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The 64-bit FNV-1a hash of `bytes` — the content checksum recorded in
/// checkpoint headers and verified on load.
///
/// # Examples
///
/// ```
/// use llsc_shmem::durable::fnv64;
/// assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv64(b"a"), fnv64(b"b"));
/// ```
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The temporary sibling `atomic_write` stages `path`'s contents in.
/// Exposed so directory scanners (the checkpoint loader) can recognise
/// and ignore the leftovers of a write killed between create and rename.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` crash-safely: temp file in the same
/// directory, flush + fsync, atomic rename over the destination, fsync of
/// the parent directory. A kill at any point leaves either the previous
/// file intact or the new one complete — plus, at worst, a stale
/// `<name>.tmp` sibling that the next write truncates and reuses.
///
/// # Errors
///
/// Any I/O error from the create/write/sync/rename chain, with the
/// temporary file cleaned up on a best-effort basis.
pub fn atomic_write(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory so a
        // crash after this call cannot roll the directory entry back.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                // Directory fsync is unsupported on some filesystems;
                // the rename is still atomic, so a failure here is not
                // worth failing the write over.
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("llsc-durable-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = scratch_dir("replace");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        assert!(
            !tmp_sibling(&path).exists(),
            "no temporary file survives a successful write"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_stale_tmp_sibling_is_overwritten_not_fatal() {
        let dir = scratch_dir("stale-tmp");
        let path = dir.join("artifact.json");
        // Simulate a previous writer killed between create and rename.
        fs::write(tmp_sibling(&path), b"torn half-write").unwrap();
        atomic_write(&path, b"fresh").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"fresh");
        assert!(!tmp_sibling(&path).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_no_tmp_and_no_destination() {
        let dir = scratch_dir("fail");
        let path = dir.join("no-such-subdir").join("artifact.json");
        assert!(atomic_write(&path, b"x").is_err());
        assert!(!path.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_sibling_stays_in_the_same_directory() {
        let path = Path::new("/some/dir/ckpt-000001.llsc");
        assert_eq!(
            tmp_sibling(path),
            Path::new("/some/dir/ckpt-000001.llsc.tmp")
        );
    }
}
