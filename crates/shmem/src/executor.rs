//! The deterministic discrete-event engine.

use crate::{
    Action, Algorithm, CcTracker, FaultInjector, FaultPlan, FaultStats, Feedback, Interaction,
    Operation, ProcessId, Program, Response, Run, RunError, RunEvent, RunOutcome, Scheduler,
    SharedMemory, TossAssignment, Value,
};
use std::fmt;
use std::sync::Arc;

/// Safety limits for an execution.
///
/// The paper's runs can be infinite; these limits turn a runaway simulation
/// into a structured [`RunError`] instead of a hang. Both default to
/// generous values that no shipped experiment approaches.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Maximum number of events recorded before the executor reports
    /// [`RunError::BudgetExhausted`]. Termination events are counted but
    /// never trip the budget themselves (there are at most `n` of them,
    /// and each one is progress).
    pub max_events: u64,
    /// Maximum number of *consecutive* coin tosses a single process may
    /// perform in one [`Executor::advance_local`] burst before the executor
    /// reports [`RunError::DivergedLocalBurst`] (guards against programs
    /// that toss forever, which would make Phase 1 of an adversary round
    /// diverge).
    pub max_local_burst: u64,
    /// Whether the recorded [`Run`] keeps full events and interaction
    /// histories (`true`, the default) or only counters and verdicts
    /// (`false` — the lightweight mode for large measurement sweeps; see
    /// [`Run::lightweight`]).
    pub record_details: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            max_events: 50_000_000,
            max_local_burst: 1_000_000,
            record_details: true,
        }
    }
}

impl ExecutorConfig {
    /// The configuration the large measurement sweeps use: counters and
    /// verdicts only (see [`Run::lightweight`]), same safety limits.
    ///
    /// Runs recorded this way still produce a full
    /// [`OpCounters`](crate::OpCounters) summary via
    /// [`Executor::counters`] — structured stats without trace memory.
    pub fn lightweight() -> Self {
        ExecutorConfig {
            record_details: false,
            ..ExecutorConfig::default()
        }
    }
}

/// A restorable mid-run checkpoint of an [`Executor`]'s shared state:
/// memory contents, the recorded [`Run`] prefix, the cache-coherence RMR
/// tracker, and the event counter.
///
/// Program continuations cannot be cloned (they are one-shot closures), so
/// a snapshot does **not** hold per-process program state. Instead,
/// [`Executor::restore_from`] re-spawns every program and replays each
/// restored process's recorded interaction history through it — pure local
/// computation that skips memory application, event recording, and RMR
/// charging. This makes snapshots the reuse primitive of incremental
/// subset sweeps: a shared run prefix is cloned back instead of
/// re-simulated.
///
/// Snapshots require detail recording ([`ExecutorConfig::record_details`])
/// — the replay reads histories — and are only supported on fault-free
/// executors (no armed injector, no sticky fault).
#[derive(Clone, Debug)]
pub struct ExecSnapshot {
    memory: SharedMemory,
    run: Run,
    rmr_cc: CcTracker,
    recorded_events: u64,
}

impl ExecSnapshot {
    /// Events contained in the captured run prefix — the events a restore
    /// brings back without re-simulating them.
    pub fn event_count(&self) -> u64 {
        self.run.event_count()
    }
}

/// The outcome of advancing one process by one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process tossed a coin.
    Tossed(u64),
    /// The process performed a shared-memory operation.
    Performed(Operation, Response),
    /// The process had already terminated; nothing happened.
    AlreadyTerminated,
}

struct ProcState {
    program: Box<dyn Program>,
    /// The process's pending step. `None` only before first activation or
    /// after termination; [`Action::Return`] never sits pending because
    /// termination is resolved eagerly.
    pending: Option<Action>,
    activated: bool,
}

impl fmt::Debug for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcState")
            .field("pending", &self.pending)
            .field("activated", &self.activated)
            .finish()
    }
}

/// Executes an `n`-process algorithm over a [`SharedMemory`], one step at a
/// time, under the control of a caller-chosen schedule.
///
/// The executor offers three levels of control:
///
/// 1. **Raw steps** — [`Executor::step`] advances a chosen process by one
///    step (toss or shared-memory operation). This is what generic
///    [`Scheduler`]s drive via [`Executor::drive`].
/// 2. **Phase primitives** — [`Executor::advance_local`] runs a process's
///    coin tosses until its next step is a shared-memory operation (Phase 1
///    of the paper's Figure-2 rounds), and
///    [`Executor::perform_shared`] performs exactly the pending operation.
///    The round adversary in `llsc-core` is built from these.
/// 3. **Convenience** — [`Executor::step_round_robin`] for simple tests.
///
/// Determinism: given the same algorithm, toss assignment, and sequence of
/// scheduling decisions, the executor produces the identical [`Run`].
///
/// # Faults and crashes
///
/// Stepping calls are fallible: when a configured limit fires they return
/// a [`RunError`] instead of panicking, and the fault is *sticky* — every
/// later stepping call returns the same error, and
/// [`Executor::run_outcome`] reports it. Processes can also be *crashed*
/// ([`Executor::crash`]), the crash-stop limit case of an adversarial
/// scheduler that delays a process forever: a crashed process takes no
/// further steps, schedulers skip it, and a drive that ends with crashed
/// survivors classifies as [`RunOutcome::Crashed`].
#[derive(Debug)]
pub struct Executor {
    n: usize,
    memory: SharedMemory,
    procs: Vec<ProcState>,
    run: Run,
    toss: Arc<dyn TossAssignment>,
    config: ExecutorConfig,
    rr_cursor: usize,
    recorded_events: u64,
    /// The first structural fault reported, if any; makes faults sticky.
    fault: Option<RunError>,
    /// The memory-fault adversary, if one was armed
    /// ([`Executor::set_fault_plan`]).
    injector: Option<FaultInjector>,
    /// Cache-validity state behind the cache-coherent RMR charge; the DSM
    /// charge is stateless (see [`CcTracker`] / [`crate::dsm_cost`]).
    rmr_cc: CcTracker,
}

impl Executor {
    /// Creates an executor for an `n`-process instance of `alg`, with coin
    /// tosses answered by `toss`.
    ///
    /// The shared memory is initialised from
    /// [`Algorithm::initial_memory`].
    pub fn new(
        alg: &dyn Algorithm,
        n: usize,
        toss: Arc<dyn TossAssignment>,
        config: ExecutorConfig,
    ) -> Self {
        let memory = SharedMemory::with_initial(alg.initial_memory(n));
        let procs = ProcessId::all(n)
            .map(|pid| ProcState {
                program: alg.spawn(pid, n),
                pending: None,
                activated: false,
            })
            .collect();
        Executor {
            n,
            memory,
            procs,
            run: if config.record_details {
                Run::new(n)
            } else {
                Run::lightweight(n)
            },
            toss,
            config,
            rr_cursor: 0,
            recorded_events: 0,
            fault: None,
            injector: None,
            rmr_cc: CcTracker::new(),
        }
    }

    /// Resets the executor in place for a fresh run of `alg` — the
    /// reusable per-worker trial context of scratch sweeps
    /// ([`Sweep::run_with_scratch`](crate::Sweep::run_with_scratch)):
    /// programs are re-spawned, the shared memory is cleared back to its
    /// initial values, and the run, counters, and fault state restart
    /// from empty, reusing buffer allocations instead of building a new
    /// executor per trial.
    ///
    /// `alg` must describe the same system this executor was built for
    /// (same `n` and initial memory — the configured initial values are
    /// kept, not recomputed); the toss assignment and config are also
    /// kept. After a reset the executor is observationally
    /// [`Executor::new`], so a sweep that resets between trials produces
    /// byte-identical results to one that constructs per trial.
    pub fn reset(&mut self, alg: &dyn Algorithm) {
        self.memory.reset();
        self.procs.clear();
        let n = self.n;
        self.procs.extend(ProcessId::all(n).map(|pid| ProcState {
            program: alg.spawn(pid, n),
            pending: None,
            activated: false,
        }));
        self.run.reset();
        self.rr_cursor = 0;
        self.recorded_events = 0;
        self.fault = None;
        self.injector = None;
        self.rmr_cc.reset();
    }

    /// Takes the recorded run out of the executor, leaving a fresh empty
    /// run (same recording mode) behind — the ownership-transfer half of
    /// trial reuse: the trial's product keeps the run, the executor keeps
    /// its other buffers for the next [`Executor::reset`].
    pub fn take_run(&mut self) -> Run {
        let fresh = if self.config.record_details {
            Run::new(self.n)
        } else {
            Run::lightweight(self.n)
        };
        std::mem::replace(&mut self.run, fresh)
    }

    /// Captures a restorable checkpoint of the executor's shared state —
    /// see [`ExecSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the run is not recording details (the restore replay
    /// needs histories), a fault injector is armed, or a sticky fault has
    /// fired — snapshot reuse is a fault-free-sweep primitive.
    pub fn capture(&self) -> ExecSnapshot {
        assert!(
            self.run.is_detailed(),
            "capture needs a detail-recording run (histories drive the restore replay)"
        );
        assert!(
            self.fault.is_none() && self.injector.is_none(),
            "capture is only supported on fault-free executors"
        );
        ExecSnapshot {
            memory: self.memory.clone(),
            run: self.run.clone(),
            rmr_cc: self.rmr_cc.clone(),
            recorded_events: self.recorded_events,
        }
    }

    /// Restores the executor to `snap`'s state: an [`Executor::reset`]
    /// followed by cloning back the snapshot's memory, run prefix, RMR
    /// state, and event counter, then rebuilding program state for every
    /// process in `activate` by replaying its recorded history (see
    /// [`ExecSnapshot`]). Processes outside `activate` are left
    /// unactivated, exactly as after a plain reset.
    ///
    /// `alg` must be the algorithm this executor (and the snapshot) was
    /// built for, and `activate` must cover every process with a nonempty
    /// history in the snapshot that the continuation will step — a replay
    /// feeds a program only what the recorded run already fed it, so the
    /// restored executor is observationally the one `snap` was captured
    /// from, restricted to the activated processes.
    pub fn restore_from(
        &mut self,
        alg: &dyn Algorithm,
        snap: &ExecSnapshot,
        activate: &[ProcessId],
    ) {
        self.reset(alg);
        self.memory.clone_from(&snap.memory);
        self.run.clone_from(&snap.run);
        self.rmr_cc.clone_from(&snap.rmr_cc);
        self.recorded_events = snap.recorded_events;
        for &p in activate {
            self.procs[p.0].activated = true;
            self.replay_feedback(p, Feedback::Start);
            for i in 0..self.run.history(p).len() {
                let fb = match &self.run.history(p)[i] {
                    Interaction::Toss(c) => Feedback::Coin(*c),
                    Interaction::Op(_, resp) => Feedback::Response(resp.clone()),
                    // Termination is the program's *output* (already in
                    // the cloned run), not a feedback to replay.
                    Interaction::Returned(_) => break,
                };
                self.replay_feedback(p, fb);
            }
        }
    }

    /// Advances `p`'s program with `feedback` without recording anything —
    /// the restore-replay twin of [`Executor::feed`]: the cloned run
    /// already contains every event this feedback corresponds to.
    fn replay_feedback(&mut self, p: ProcessId, feedback: Feedback) {
        let action = self.procs[p.0].program.next(feedback);
        self.procs[p.0].pending = match action {
            Action::Return(_) => None,
            other => Some(other),
        };
    }

    /// Arms the memory-fault adversary: faults from `plan` are delivered
    /// at their event thresholds as the run progresses (see
    /// [`FaultPlan`]). Injection happens inside the executor's own
    /// stepping path, so it composes with any [`Scheduler`] — including
    /// the [`CrashScheduler`](crate::CrashScheduler) wrapper — without a
    /// wrapper of its own.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Faults delivered so far by the armed plan (all zero when no plan
    /// was set).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector
            .as_ref()
            .map(FaultInjector::stats)
            .unwrap_or_default()
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The run recorded so far.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The cheap structured summary of the run so far (available in both
    /// detailed and lightweight recording modes).
    pub fn counters(&self) -> crate::OpCounters {
        self.run.counters()
    }

    /// The shared memory (omniscient view; reading it is not a step).
    pub fn memory(&self) -> &SharedMemory {
        &self.memory
    }

    /// Consumes the executor and returns the recorded run.
    pub fn into_run(self) -> Run {
        self.run
    }

    /// `true` iff `p` has terminated.
    pub fn is_terminated(&self, p: ProcessId) -> bool {
        self.run.verdict(p).is_some()
    }

    /// The value `p` returned, if terminated.
    pub fn verdict(&self, p: ProcessId) -> Option<&Value> {
        self.run.verdict(p)
    }

    /// `true` iff every process has terminated.
    pub fn all_terminated(&self) -> bool {
        self.run.is_terminating()
    }

    /// `true` iff `p` has been crash-stopped (see [`Executor::crash`]).
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.run.is_crashed(p)
    }

    /// `true` iff `p` can still take steps: neither terminated nor
    /// crashed.
    pub fn is_runnable(&self, p: ProcessId) -> bool {
        !self.is_terminated(p) && !self.is_crashed(p)
    }

    /// `true` iff every process is settled — terminated or crashed — so no
    /// further step is possible. With no crashes this is exactly
    /// [`Executor::all_terminated`].
    pub fn all_settled(&self) -> bool {
        ProcessId::all(self.n).all(|p| !self.is_runnable(p))
    }

    /// Crash-stops `p`: it takes no further steps, schedulers skip it, and
    /// the run classifies as [`RunOutcome::Crashed`] unless `p` had
    /// already terminated. Returns `true` iff the crash took effect
    /// (`false` when `p` is already terminated or already crashed).
    ///
    /// Crashing is the limit case of the paper's adversary — a scheduler
    /// that delays `p` forever — so every recorded prefix remains a legal
    /// run of the algorithm.
    pub fn crash(&mut self, p: ProcessId) -> bool {
        if !self.is_runnable(p) {
            return false;
        }
        self.run.mark_crashed(p);
        true
    }

    /// Recovers a crashed `p` under the crash-*recovery* fault model
    /// (Golab–Ramaraju): `p` loses all local state — its program is
    /// respawned from `alg` and restarts from the top, which for a
    /// recoverable algorithm *is* its recovery section — while the shared
    /// memory keeps whatever the crash left behind. The process's cached
    /// copies are also invalidated (a recovering process restarts with a
    /// cold cache), so recovery cost is measured honestly in RMRs.
    ///
    /// Returns `true` iff the recovery took effect (`false` when `p` is
    /// not currently crashed, or a sticky structural fault has already
    /// ended the run).
    pub fn recover(&mut self, p: ProcessId, alg: &dyn Algorithm) -> bool {
        if self.fault.is_some() || !self.is_crashed(p) {
            return false;
        }
        self.run.clear_crash(p);
        self.rmr_cc.evict(p);
        self.procs[p.0] = ProcState {
            program: alg.spawn(p, self.n),
            pending: None,
            activated: false,
        };
        true
    }

    /// The structural fault reported so far, if any (sticky).
    pub fn fault(&self) -> Option<RunError> {
        self.fault
    }

    /// Total events recorded so far (tosses + shared ops + terminations).
    pub fn recorded_events(&self) -> u64 {
        self.recorded_events
    }

    /// Classifies the run as it stands: [`RunOutcome::Completed`] when
    /// every process terminated ([`RunOutcome::FaultInjected`] if the
    /// armed fault plan delivered faults along the way); a sticky fault
    /// if one fired; otherwise
    /// [`RunOutcome::Crashed`] when a crashed process blocks completion,
    /// or [`RunOutcome::BudgetExhausted`] for a run that simply stopped
    /// (the caller's step limit ran out or its scheduler declined) with
    /// live processes remaining.
    pub fn run_outcome(&self) -> RunOutcome {
        if let Some(f) = self.fault {
            return f.into();
        }
        if self.all_terminated() {
            let stats = self.fault_stats();
            if stats.total() > 0 {
                return RunOutcome::FaultInjected {
                    spurious_sc: stats.spurious_sc,
                    corruptions: stats.corruptions,
                };
            }
            return RunOutcome::Completed;
        }
        if let Some(pid) = ProcessId::all(self.n).find(|p| self.is_crashed(*p)) {
            return RunOutcome::Crashed { pid };
        }
        RunOutcome::BudgetExhausted {
            events: self.recorded_events,
        }
    }

    /// The runnable (non-terminated, non-crashed) processes, in id order.
    pub fn active(&self) -> Vec<ProcessId> {
        ProcessId::all(self.n)
            .filter(|p| self.is_runnable(*p))
            .collect()
    }

    /// Feeds `feedback` to `p`'s program and resolves the resulting action,
    /// eagerly recording termination. Termination events count toward the
    /// event budget but never trip it (there are at most `n`, and each one
    /// is progress), which keeps activation and peeking infallible.
    fn feed(&mut self, p: ProcessId, feedback: Feedback) {
        let action = self.procs[p.0].program.next(feedback);
        if let Action::Return(v) = action {
            self.recorded_events += 1;
            self.run.record(RunEvent::Terminated { pid: p, value: v });
            self.procs[p.0].pending = None;
        } else {
            self.procs[p.0].pending = Some(action);
        }
    }

    fn ensure_activated(&mut self, p: ProcessId) {
        if !self.procs[p.0].activated {
            self.procs[p.0].activated = true;
            self.feed(p, Feedback::Start);
        }
    }

    /// Counts one toss/shared-op event against the budget; reports (and
    /// stickies) [`RunError::BudgetExhausted`] when the budget fires.
    /// Also polls the ambient per-trial wall-clock deadline (armed by
    /// [`Sweep`](crate::Sweep) timeouts) every 512 events, so a hung
    /// trial panics into a structured
    /// [`TrialFailure`](crate::TrialFailure) instead of stalling its
    /// sweep.
    fn guard_events(&mut self) -> Result<(), RunError> {
        self.recorded_events += 1;
        if self.recorded_events >= self.config.max_events {
            let err = RunError::BudgetExhausted {
                events: self.recorded_events,
            };
            self.fault = Some(err);
            return Err(err);
        }
        if self.recorded_events.is_multiple_of(512) {
            crate::sweep::check_trial_deadline(self.recorded_events);
        }
        Ok(())
    }

    /// Returns the sticky fault if one has fired, or an error for stepping
    /// a crashed process — the common preamble of every stepping call.
    fn check_steppable(&self, p: ProcessId) -> Result<(), RunError> {
        if let Some(f) = self.fault {
            return Err(f);
        }
        if self.is_crashed(p) {
            return Err(RunError::Crashed { pid: p });
        }
        Ok(())
    }

    /// The action `p` will take on its next step, or `None` if `p` has
    /// terminated. Activates `p` if necessary (activation is a local state
    /// transition, not a step).
    pub fn pending_action(&mut self, p: ProcessId) -> Option<Action> {
        self.ensure_activated(p);
        self.procs[p.0].pending.clone()
    }

    /// The shared-memory operation `p` is poised to perform, if its next
    /// step is a shared-memory step. Borrowed straight from the pending
    /// slot — peeking never clones the operation.
    pub fn pending_op(&mut self, p: ProcessId) -> Option<&Operation> {
        self.ensure_activated(p);
        match &self.procs[p.0].pending {
            Some(Action::Invoke(op)) => Some(op),
            _ => None,
        }
    }

    /// Advances `p` by one step (toss or shared-memory operation).
    ///
    /// # Errors
    ///
    /// Returns the sticky fault if a limit has already fired,
    /// [`RunError::Crashed`] if `p` was crashed, or
    /// [`RunError::BudgetExhausted`] if this step fires the event budget.
    pub fn step(&mut self, p: ProcessId) -> Result<StepOutcome, RunError> {
        self.check_steppable(p)?;
        self.ensure_activated(p);
        // Inspect by reference and dispatch; the pending action itself is
        // taken by value exactly once, inside the branch that consumes it.
        match self.procs[p.0].pending {
            None => Ok(StepOutcome::AlreadyTerminated),
            Some(Action::Toss) => {
                let outcome = self.do_toss(p)?;
                Ok(StepOutcome::Tossed(outcome))
            }
            Some(Action::Invoke(_)) => {
                let (op, resp) = self.perform_shared(p)?;
                Ok(StepOutcome::Performed(op, resp))
            }
            Some(Action::Return(_)) => unreachable!("Return never sits pending"),
        }
    }

    fn do_toss(&mut self, p: ProcessId) -> Result<u64, RunError> {
        let index = self.run.tosses(p);
        let outcome = self.toss.outcome(p, index);
        self.guard_events()?;
        self.run.record(RunEvent::Toss {
            pid: p,
            index,
            outcome,
        });
        self.feed(p, Feedback::Coin(outcome));
        Ok(outcome)
    }

    /// Phase-1 primitive: performs `p`'s coin tosses until `p` terminates
    /// or its next step is a shared-memory operation. Returns the number of
    /// tosses performed.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::DivergedLocalBurst`] if `p` tosses
    /// [`ExecutorConfig::max_local_burst`] times without reaching a
    /// shared-memory step or termination, [`RunError::Crashed`] if `p` was
    /// crashed, or [`RunError::BudgetExhausted`] if the event budget fires
    /// mid-burst. All are sticky.
    pub fn advance_local(&mut self, p: ProcessId) -> Result<u64, RunError> {
        self.check_steppable(p)?;
        self.ensure_activated(p);
        let mut count = 0u64;
        while matches!(self.procs[p.0].pending, Some(Action::Toss)) {
            if count >= self.config.max_local_burst {
                let err = RunError::DivergedLocalBurst { pid: p };
                self.fault = Some(err);
                return Err(err);
            }
            self.do_toss(p)?;
            count += 1;
        }
        Ok(count)
    }

    /// Performs `p`'s pending shared-memory operation and feeds the
    /// response back to `p`'s program.
    ///
    /// # Errors
    ///
    /// Returns the sticky fault, [`RunError::Crashed`] for a crashed `p`,
    /// or [`RunError::BudgetExhausted`] if this operation fires the event
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `p`'s next step is not a shared-memory operation — a
    /// caller contract violation, not a run fault (call
    /// [`Executor::advance_local`] or check [`Executor::pending_op`]
    /// first).
    pub fn perform_shared(&mut self, p: ProcessId) -> Result<(Operation, Response), RunError> {
        self.check_steppable(p)?;
        self.ensure_activated(p);
        // The single point where a pending operation leaves its slot: taken
        // by value, never cloned. `feed` installs the program's next action
        // in the slot afterwards.
        let op = match self.procs[p.0].pending.take() {
            Some(Action::Invoke(op)) => op,
            other => panic!("{p} has no pending shared-memory operation (pending: {other:?})"),
        };
        let resp = self.apply_with_faults(p, &op);
        self.guard_events()?;
        self.run.record_shared(p, &op, &resp);
        let cc = self.rmr_cc.charge(p, &op, &resp);
        let dsm = crate::dsm_cost(p, &op, self.n);
        self.run.record_rmrs(p, cc, dsm);
        self.feed(p, Feedback::Response(resp.clone()));
        Ok((op, resp))
    }

    /// Applies `op` through the armed fault injector (when one is set):
    /// due corruptions rewrite the register the operation is about to
    /// observe, then a due spurious entry suppresses the operation if it
    /// is an SC whose `Pset` condition holds. With no injector (or no due
    /// fault) this is exactly [`SharedMemory::apply`].
    fn apply_with_faults(&mut self, p: ProcessId, op: &Operation) -> Response {
        let Some(mut inj) = self.injector.take() else {
            return self.memory.apply(p, op);
        };
        // Transient corruption strikes the register this operation reads
        // (its *observed* register: the source of a move, the target of
        // everything else) just before the operation applies, so the
        // corrupted value is what the process sees.
        while let Some(clear_pset) = inj.take_corruption(self.recorded_events) {
            let reg = op.observed();
            self.memory
                .corrupt_in_place(reg, clear_pset, |v| inj.corrupt_in_place(v));
            // An out-of-band rewrite: every cached copy of the victim is
            // stale, so the CC model must re-fetch it.
            self.rmr_cc.invalidate(reg);
        }
        // A due spurious entry waits for an SC that would have succeeded;
        // suppressing an already-failing SC would inject nothing.
        let resp = match op {
            Operation::Sc(r, _) if inj.spurious_due(self.recorded_events) => {
                match self.memory.suppress_sc(p, *r) {
                    Some(resp) => {
                        inj.consume_spurious();
                        resp
                    }
                    None => self.memory.apply(p, op),
                }
            }
            _ => self.memory.apply(p, op),
        };
        self.injector = Some(inj);
        resp
    }

    /// Advances the next runnable process (round-robin over ids) by one
    /// step. Returns `Ok(false)` when every process is settled
    /// (terminated or crashed).
    pub fn step_round_robin(&mut self) -> Result<bool, RunError> {
        if self.all_settled() {
            return Ok(false);
        }
        for _ in 0..self.n {
            let p = ProcessId(self.rr_cursor);
            self.rr_cursor = (self.rr_cursor + 1) % self.n;
            if self.is_runnable(p) {
                // The chosen process may terminate without a step (its
                // program returns immediately on activation); that still
                // consumes this round-robin turn.
                self.check_steppable(p)?;
                self.ensure_activated(p);
                if self.procs[p.0].pending.is_some() {
                    self.step(p)?;
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Runs the executor under `sched` until every process settles
    /// (terminates or is crashed), the scheduler declines to pick
    /// (returns `None`), or `max_steps` steps have been taken. Returns
    /// the number of steps taken; crashed or terminated picks are skipped
    /// without consuming a step.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] a step reports; the fault is
    /// sticky, and [`Executor::run_outcome`] classifies it afterwards.
    pub fn drive(&mut self, sched: &mut dyn Scheduler, max_steps: u64) -> Result<u64, RunError> {
        let mut steps = 0;
        while steps < max_steps && !self.all_settled() {
            let Some(p) = sched.next(self) else { break };
            if !self.is_runnable(p) {
                continue;
            }
            self.ensure_activated(p);
            if self.procs[p.0].pending.is_some() {
                self.step(p)?;
            }
            steps += 1;
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{done, ll, sc, toss};
    use crate::{FnAlgorithm, RegisterId, RoundRobinScheduler, ZeroTosses};

    fn counter_like() -> impl Algorithm {
        // Each process: LL(R0); SC(R0, old + 1); retry until success;
        // return the value it installed.
        FnAlgorithm::new("inc", |_pid, _n| {
            fn attempt() -> crate::dsl::Step {
                let r = RegisterId(0);
                ll(r, move |prev| {
                    let old = prev.as_int().unwrap_or(0);
                    sc(r, Value::from(old + 1), move |ok, _| {
                        if ok {
                            done(Value::from(old + 1))
                        } else {
                            attempt()
                        }
                    })
                })
            }
            attempt().into_program()
        })
        .with_initial_memory(vec![(RegisterId(0), Value::from(0i64))])
    }

    /// Each process: LL(R0) forever — floods the event budget without
    /// ever terminating or tossing.
    fn ll_forever() -> impl Algorithm {
        FnAlgorithm::new("ll-forever", |_pid, _n| {
            fn attempt() -> crate::dsl::Step {
                ll(RegisterId(0), move |_| attempt())
            }
            attempt().into_program()
        })
    }

    #[test]
    fn round_robin_executes_counter_to_completion() {
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 4, Arc::new(ZeroTosses), ExecutorConfig::default());
        while exec.step_round_robin().unwrap() {}
        assert!(exec.all_terminated());
        assert_eq!(exec.memory().peek(RegisterId(0)), Value::from(4i64));
        // All four increments happened, with distinct installed values.
        let mut vals: Vec<i128> = ProcessId::all(4)
            .map(|p| exec.verdict(p).unwrap().as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn drive_with_scheduler_matches_round_robin() {
        let alg = counter_like();
        let mut a = Executor::new(&alg, 3, Arc::new(ZeroTosses), ExecutorConfig::default());
        while a.step_round_robin().unwrap() {}
        let mut b = Executor::new(&alg, 3, Arc::new(ZeroTosses), ExecutorConfig::default());
        b.drive(&mut RoundRobinScheduler::new(), 1_000_000).unwrap();
        assert!(b.all_terminated());
        assert_eq!(b.run_outcome(), crate::RunOutcome::Completed);
        assert_eq!(a.run().events(), b.run().events());
    }

    #[test]
    fn pending_op_peeks_without_stepping() {
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        let op = exec.pending_op(ProcessId(0)).unwrap();
        assert_eq!(op, &Operation::Ll(RegisterId(0)));
        assert_eq!(exec.run().events().len(), 0, "peeking is not a step");
    }

    #[test]
    fn advance_local_runs_tosses_only() {
        let alg = FnAlgorithm::new("tosser", |_pid, _n| {
            toss(|c1| {
                toss(move |c2| ll(RegisterId(0), move |_| done(Value::from((c1 + c2) as i64))))
            })
            .into_program()
        });
        let mut exec = Executor::new(
            &alg,
            1,
            Arc::new(crate::ConstantTosses(5)),
            ExecutorConfig::default(),
        );
        let tosses = exec.advance_local(ProcessId(0)).unwrap();
        assert_eq!(tosses, 2);
        assert_eq!(exec.run().tosses(ProcessId(0)), 2);
        assert_eq!(exec.run().shared_steps(ProcessId(0)), 0);
        // Next step is the LL.
        let (op, _) = exec.perform_shared(ProcessId(0)).unwrap();
        assert_eq!(op, Operation::Ll(RegisterId(0)));
        assert_eq!(exec.verdict(ProcessId(0)), Some(&Value::from(10i64)));
    }

    #[test]
    fn immediate_return_records_termination_without_steps() {
        let alg = FnAlgorithm::new("noop", |_pid, _n| done(Value::from(0i64)).into_program());
        let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), ExecutorConfig::default());
        assert_eq!(exec.pending_action(ProcessId(0)), None);
        assert!(exec.is_terminated(ProcessId(0)));
        assert_eq!(exec.run().shared_steps(ProcessId(0)), 0);
    }

    #[test]
    fn step_on_terminated_process_is_noop() {
        let alg = FnAlgorithm::new("noop", |_pid, _n| done(Value::Unit).into_program());
        let mut exec = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        exec.pending_action(ProcessId(0));
        assert_eq!(
            exec.step(ProcessId(0)).unwrap(),
            StepOutcome::AlreadyTerminated
        );
    }

    #[test]
    fn infinite_tosser_reports_diverged_local_burst() {
        struct Forever;
        impl Program for Forever {
            fn next(&mut self, _f: Feedback) -> Action {
                Action::Toss
            }
        }
        let alg = FnAlgorithm::new("forever", |_pid, _n| Box::new(Forever) as Box<dyn Program>);
        let mut exec = Executor::new(
            &alg,
            1,
            Arc::new(ZeroTosses),
            ExecutorConfig {
                max_events: 1_000_000,
                max_local_burst: 100,
                record_details: true,
            },
        );
        let p = ProcessId(0);
        let err = exec.advance_local(p).unwrap_err();
        assert_eq!(err, RunError::DivergedLocalBurst { pid: p });
        assert_eq!(exec.run().tosses(p), 100, "bursts stop at the limit");
        // The fault is sticky and classifies the run.
        assert_eq!(exec.fault(), Some(err));
        assert_eq!(exec.step(p), Err(err));
        assert_eq!(
            exec.run_outcome(),
            RunOutcome::DivergedLocalBurst { pid: p }
        );
    }

    #[test]
    fn event_flood_reports_budget_exhausted() {
        let alg = ll_forever();
        let mut exec = Executor::new(
            &alg,
            2,
            Arc::new(ZeroTosses),
            ExecutorConfig {
                max_events: 50,
                max_local_burst: 1_000,
                record_details: true,
            },
        );
        let err = exec
            .drive(&mut RoundRobinScheduler::new(), 1_000_000)
            .unwrap_err();
        assert_eq!(err, RunError::BudgetExhausted { events: 50 });
        assert_eq!(exec.recorded_events(), 50);
        // Sticky: every stepping entry point reports the same fault.
        assert_eq!(exec.step(ProcessId(0)), Err(err));
        assert_eq!(exec.advance_local(ProcessId(1)), Err(err));
        assert_eq!(
            exec.run_outcome(),
            RunOutcome::BudgetExhausted { events: 50 }
        );
    }

    #[test]
    fn termination_events_never_trip_the_budget() {
        // Two processes terminating immediately under max_events = 1: the
        // terminations are counted but are progress, not a fault.
        let alg = FnAlgorithm::new("noop", |_pid, _n| done(Value::Unit).into_program());
        let mut exec = Executor::new(
            &alg,
            2,
            Arc::new(ZeroTosses),
            ExecutorConfig {
                max_events: 1,
                max_local_burst: 10,
                record_details: true,
            },
        );
        exec.drive(&mut RoundRobinScheduler::new(), 10).unwrap();
        assert!(exec.all_terminated());
        assert_eq!(exec.recorded_events(), 2);
        assert_eq!(exec.run_outcome(), RunOutcome::Completed);
    }

    #[test]
    fn crashed_process_is_skipped_and_classified() {
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 3, Arc::new(ZeroTosses), ExecutorConfig::default());
        let victim = ProcessId(1);
        assert!(exec.crash(victim));
        assert!(!exec.crash(victim), "crashing twice is a no-op");
        assert!(exec.is_crashed(victim) && !exec.is_runnable(victim));
        assert_eq!(exec.active(), vec![ProcessId(0), ProcessId(2)]);
        // Stepping a crashed process is a structured error, not a panic.
        assert_eq!(exec.step(victim), Err(RunError::Crashed { pid: victim }));
        // The survivors run to completion; the run classifies as Crashed.
        let steps = exec
            .drive(&mut RoundRobinScheduler::new(), 1_000_000)
            .unwrap();
        assert!(steps > 0);
        assert!(exec.all_settled() && !exec.all_terminated());
        assert_eq!(exec.run_outcome(), RunOutcome::Crashed { pid: victim });
        assert_eq!(exec.memory().peek(RegisterId(0)), Value::from(2i64));
        // A terminated process cannot crash.
        assert!(!exec.crash(ProcessId(0)));
        let run = exec.into_run();
        assert!(run.is_crashed(victim));
        assert_eq!(run.crashed().collect::<Vec<_>>(), vec![victim]);
    }

    #[test]
    fn rmr_counters_track_both_models() {
        // Two processes incrementing R0: p0's home register under DSM
        // (0 % 2 = 0), so p0 pays 0 DSM RMRs and p1 pays one per access.
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), ExecutorConfig::default());
        while exec.step_round_robin().unwrap() {}
        let run = exec.run();
        assert_eq!(run.dsm_rmrs(ProcessId(0)), 0);
        assert_eq!(run.dsm_rmrs(ProcessId(1)), run.shared_steps(ProcessId(1)));
        // CC: every step here either misses a cold/invalidated cache or is
        // a write, so each shared step costs exactly 1 under round-robin
        // interleaving on one register.
        let c = exec.counters();
        assert!(c.total_cc_rmrs() > 0);
        assert!(c.total_cc_rmrs() <= c.total_ops());
        assert_eq!(c.cc_rmrs.len(), 2);
    }

    #[test]
    fn recover_respawns_a_crashed_process() {
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), ExecutorConfig::default());
        let victim = ProcessId(0);
        // Let the victim take its LL, then crash it mid-attempt.
        exec.step(victim).unwrap();
        assert!(exec.crash(victim));
        assert!(!exec.recover(ProcessId(1), &alg), "p1 is not crashed");
        assert!(exec.recover(victim, &alg));
        assert!(exec.is_runnable(victim));
        assert_eq!(exec.run().crash_count(victim), 1);
        assert_eq!(exec.run().recovery_count(victim), 1);
        // The respawned program restarts from the top and completes.
        while exec.step_round_robin().unwrap() {}
        assert!(exec.all_terminated());
        assert_eq!(exec.run_outcome(), RunOutcome::Completed);
        assert_eq!(exec.memory().peek(RegisterId(0)), Value::from(2i64));
    }

    #[test]
    fn reset_executor_replays_identically_to_a_fresh_one() {
        let alg = counter_like();
        let mut fresh = Executor::new(&alg, 4, Arc::new(ZeroTosses), ExecutorConfig::default());
        while fresh.step_round_robin().unwrap() {}
        // Dirty an executor thoroughly — run it, crash nobody but arm a
        // no-op fault plan — then reset and replay.
        let mut reused = Executor::new(&alg, 4, Arc::new(ZeroTosses), ExecutorConfig::default());
        reused.set_fault_plan(FaultPlan::none());
        while reused.step_round_robin().unwrap() {}
        reused.reset(&alg);
        assert_eq!(reused.recorded_events(), 0);
        assert_eq!(reused.memory().stats().total(), 0);
        assert_eq!(
            reused.fault_stats(),
            FaultStats::default(),
            "injector disarmed"
        );
        while reused.step_round_robin().unwrap() {}
        assert_eq!(fresh.run().events(), reused.run().events());
        assert_eq!(fresh.memory().stats(), reused.memory().stats());
        assert_eq!(fresh.run_outcome(), reused.run_outcome());
    }

    #[test]
    fn reset_clears_sticky_faults_and_crashes() {
        let alg = ll_forever();
        let cfg = ExecutorConfig {
            max_events: 10,
            max_local_burst: 1_000,
            record_details: true,
        };
        let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), cfg);
        exec.crash(ProcessId(1));
        let err = exec
            .drive(&mut RoundRobinScheduler::new(), 1_000_000)
            .unwrap_err();
        assert_eq!(err, RunError::BudgetExhausted { events: 10 });
        exec.reset(&alg);
        assert_eq!(exec.fault(), None, "sticky fault cleared");
        assert!(exec.is_runnable(ProcessId(1)), "crash flag cleared");
        // The budget is available again in full.
        assert_eq!(
            exec.drive(&mut RoundRobinScheduler::new(), 1_000_000),
            Err(RunError::BudgetExhausted { events: 10 })
        );
    }

    #[test]
    fn take_run_hands_over_the_run_and_leaves_an_empty_one() {
        for lightweight in [false, true] {
            let alg = counter_like();
            let cfg = ExecutorConfig {
                record_details: !lightweight,
                ..ExecutorConfig::default()
            };
            let mut exec = Executor::new(&alg, 2, Arc::new(ZeroTosses), cfg);
            while exec.step_round_robin().unwrap() {}
            let taken = exec.take_run();
            assert!(taken.is_terminating());
            assert_eq!(taken.is_detailed(), !lightweight);
            assert_eq!(exec.run().event_count(), 0, "a fresh run remains");
            assert_eq!(exec.run().is_detailed(), !lightweight, "same mode");
        }
    }

    #[test]
    fn determinism_same_inputs_same_run() {
        let alg = counter_like();
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut e = Executor::new(&alg, 5, Arc::new(ZeroTosses), ExecutorConfig::default());
                while e.step_round_robin().unwrap() {}
                e.into_run()
            })
            .collect();
        assert_eq!(runs[0].events(), runs[1].events());
    }

    #[test]
    fn spurious_sc_fails_a_would_succeed_sc_and_the_retry_recovers() {
        // One process, counter_like: events are LL(1), SC(2), ... Schedule
        // the spurious fault at the first SC (event threshold 0 is due
        // immediately; it waits for a qualifying SC).
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        exec.set_fault_plan(FaultPlan::at([0], [], 7));
        while exec.step_round_robin().unwrap() {}
        assert!(exec.all_terminated());
        // The retry loop recovered: the increment still landed.
        assert_eq!(exec.memory().peek(RegisterId(0)), Value::from(1i64));
        assert_eq!(exec.fault_stats().spurious_sc, 1);
        assert_eq!(
            exec.run_outcome(),
            RunOutcome::FaultInjected {
                spurious_sc: 1,
                corruptions: 0
            }
        );
        assert!(exec.run_outcome().is_completed());
        // Cost of the recovery: LL, failed SC, then LL + SC again.
        assert_eq!(exec.run().shared_steps(ProcessId(0)), 4);
    }

    #[test]
    fn spurious_entry_waits_for_a_qualifying_sc() {
        // A solo run whose only SCs would succeed: the entry fires on the
        // first SC, not on the preceding LL.
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        exec.set_fault_plan(FaultPlan::at([0], [], 7));
        // Event 0: the LL — not an SC, the fault stays pending.
        exec.step(ProcessId(0)).unwrap();
        assert_eq!(exec.fault_stats().spurious_sc, 0);
        // Event 1: the SC — suppressed.
        exec.step(ProcessId(0)).unwrap();
        assert_eq!(exec.fault_stats().spurious_sc, 1);
    }

    #[test]
    fn corruption_rewrites_the_observed_register() {
        let alg = counter_like();
        let mut exec = Executor::new(&alg, 1, Arc::new(ZeroTosses), ExecutorConfig::default());
        // Corrupt at event 0: the first LL observes a corrupted counter.
        exec.set_fault_plan(FaultPlan::at([], [(0, false)], 3));
        let (_, resp) = exec.perform_shared(ProcessId(0)).unwrap();
        let seen = match resp {
            Response::Value(v) => v,
            other => panic!("LL returns a value, got {other:?}"),
        };
        assert_ne!(seen, Value::from(0i64), "the LL saw the corrupted value");
        assert_eq!(exec.fault_stats().corruptions, 1);
        // Same-type corruption: still an Int.
        assert!(seen.as_int().is_some());
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let alg = counter_like();
        let mut base = Executor::new(&alg, 3, Arc::new(ZeroTosses), ExecutorConfig::default());
        while base.step_round_robin().unwrap() {}
        let mut armed = Executor::new(&alg, 3, Arc::new(ZeroTosses), ExecutorConfig::default());
        armed.set_fault_plan(FaultPlan::none());
        while armed.step_round_robin().unwrap() {}
        assert_eq!(armed.run_outcome(), RunOutcome::Completed);
        assert_eq!(base.run().events(), armed.run().events());
        assert_eq!(base.memory().stats(), armed.memory().stats());
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let alg = counter_like();
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut e = Executor::new(&alg, 4, Arc::new(ZeroTosses), ExecutorConfig::default());
                e.set_fault_plan(FaultPlan::seeded(11, 2, 2, 16));
                while e.step_round_robin().unwrap() {}
                let stats = e.fault_stats();
                (e.into_run(), stats)
            })
            .collect();
        assert_eq!(runs[0].0.events(), runs[1].0.events());
        assert_eq!(runs[0].1, runs[1].1);
    }
}
