//! The memory-fault adversary: spurious SC failures and transient
//! register corruption.
//!
//! The paper's Section-3 memory is perfect; real LL/SC hardware is not.
//! This module extends the model with a seeded, deterministic fault
//! injector for the two classic weak-LL/SC failure modes:
//!
//! * **Spurious SC failure** — an `SC` whose `Pset` condition holds
//!   nevertheless returns `false`, as if the process's reservation were
//!   silently lost (cache-line eviction, context switch). Only the
//!   caller's link is dropped; the register's value and every other
//!   process's link are untouched.
//! * **Transient register corruption** — the register an operation is
//!   about to observe has its value replaced by a seeded arbitrary value
//!   *of the same type*, with `Pset` optionally cleared, before the
//!   operation applies.
//!
//! A [`FaultPlan`] fixes *when* (event-count thresholds) and *how*
//! (value-mutation seed) faults fire, so a run with a given plan is a
//! pure function of `(algorithm, toss assignment, schedule, plan)` —
//! fault sweeps stay byte-identical at any `--threads`, exactly like
//! crash sweeps built on [`CrashPlan`](crate::CrashPlan). The
//! [`Executor`](crate::Executor) consumes the plan via
//! [`Executor::set_fault_plan`](crate::Executor::set_fault_plan) and
//! classifies a terminating faulted run as
//! [`RunOutcome::FaultInjected`](crate::RunOutcome::FaultInjected).

use crate::rng::XorShift64;
use crate::{ProcessId, Value};
use std::fmt;

/// Domain-separation constant for the value-mutation stream.
const VALUE_STREAM_SALT: u64 = 0x00FA_171E_57ED_C0DE;

/// A deterministic schedule of memory faults for one run.
///
/// Thresholds are *event counts* ([`Executor::recorded_events`]): a
/// spurious entry with threshold `t` suppresses the first qualifying SC
/// at or after event `t`; a corruption entry with threshold `t` rewrites
/// the register observed by the first shared operation at or after event
/// `t`. Expressing faults in event time (not wall time or thread time)
/// is what keeps fault sweeps threads-invariant.
///
/// [`Executor::recorded_events`]: crate::Executor::recorded_events
///
/// # Examples
///
/// ```
/// use llsc_shmem::FaultPlan;
/// let plan = FaultPlan::at([3, 10], [(5, true)], 42);
/// assert_eq!(plan.spurious(), &[3, 10]);
/// assert_eq!(plan.corruptions(), &[(5, true)]);
/// let seeded = FaultPlan::seeded(7, 2, 2, 64);
/// assert_eq!(seeded.spurious().len(), 2);
/// assert_eq!(seeded.corruptions().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Event thresholds of spurious SC failures, ascending.
    spurious: Vec<u64>,
    /// Event thresholds of corruptions, ascending, each with its
    /// clear-`Pset` flag.
    corruptions: Vec<(u64, bool)>,
    /// Seed of the stream that picks replacement values.
    value_seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with explicit event thresholds (sorted internally) and a
    /// seed for the value-mutation stream.
    pub fn at<S, C>(spurious: S, corruptions: C, value_seed: u64) -> Self
    where
        S: IntoIterator<Item = u64>,
        C: IntoIterator<Item = (u64, bool)>,
    {
        let mut spurious: Vec<u64> = spurious.into_iter().collect();
        spurious.sort_unstable();
        let mut corruptions: Vec<(u64, bool)> = corruptions.into_iter().collect();
        corruptions.sort_unstable();
        FaultPlan {
            spurious,
            corruptions,
            value_seed,
        }
    }

    /// A seeded plan: `spurious` spurious-SC thresholds and `corruptions`
    /// corruption thresholds, each drawn uniformly from `0..window`
    /// (a `window` of 0 is treated as 1), with `Pset`-clearing decided by
    /// a fair coin per corruption. Pure function of its arguments.
    pub fn seeded(seed: u64, spurious: usize, corruptions: usize, window: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0x000F_A57F_A175_C0FF_u64);
        let window = window.max(1);
        let spurious: Vec<u64> = (0..spurious).map(|_| rng.below(window)).collect();
        let corruptions: Vec<(u64, bool)> = (0..corruptions)
            .map(|_| (rng.below(window), rng.chance(1, 2)))
            .collect();
        FaultPlan::at(spurious, corruptions, rng.next_u64())
    }

    /// The spurious-SC thresholds, ascending.
    pub fn spurious(&self) -> &[u64] {
        &self.spurious
    }

    /// The corruption thresholds with their clear-`Pset` flags, ascending.
    pub fn corruptions(&self) -> &[(u64, bool)] {
        &self.corruptions
    }

    /// `true` iff the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.spurious.is_empty() && self.corruptions.is_empty()
    }

    /// The seed of the replacement-value stream, so a plan can be
    /// serialized (e.g. into a [`crate::repro::ReproCase`]) and rebuilt
    /// byte-identically with [`FaultPlan::at`].
    pub fn value_seed(&self) -> u64 {
        self.value_seed
    }

    /// A one-line human-readable summary, used in trial-failure context
    /// strings so a failed trial is reproducible from the artifact alone.
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("fault-plan:none");
        }
        write!(f, "fault-plan:spurious@{:?}", self.spurious)?;
        write!(f, ",corrupt@[")?;
        for (i, (t, clear)) in self.corruptions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}{}", if *clear { "!" } else { "" })?;
        }
        write!(f, "],values-seed={:#018x}", self.value_seed)
    }
}

/// Counts of faults an injector actually delivered (ground truth for
/// experiment tables, as opposed to the *planned* faults — a plan whose
/// thresholds lie beyond the run's end injects nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Spurious SC failures delivered.
    pub spurious_sc: u64,
    /// Register corruptions delivered.
    pub corruptions: u64,
}

impl FaultStats {
    /// Total faults delivered.
    pub fn total(&self) -> u64 {
        self.spurious_sc + self.corruptions
    }
}

/// The runtime state of a [`FaultPlan`] over one run: consumption
/// cursors, the value-mutation stream, and delivery statistics.
///
/// Owned by the [`Executor`](crate::Executor); experiments interact with
/// it only through [`FaultPlan`] and [`FaultStats`].
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    next_spurious: usize,
    next_corruption: usize,
    rng: XorShift64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Arms `plan`, starting all cursors at the first entry.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = XorShift64::new(plan.value_seed ^ VALUE_STREAM_SALT);
        FaultInjector {
            plan,
            next_spurious: 0,
            next_corruption: 0,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults delivered so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// `true` iff a spurious SC failure is due at event count `events`.
    /// The entry is only consumed by [`FaultInjector::consume_spurious`] —
    /// a due fault waits for the next SC whose `Pset` condition actually
    /// holds (suppressing an SC that would fail anyway injects nothing).
    pub fn spurious_due(&self, events: u64) -> bool {
        self.plan
            .spurious
            .get(self.next_spurious)
            .is_some_and(|&t| t <= events)
    }

    /// Consumes the pending spurious entry and counts the delivery.
    pub fn consume_spurious(&mut self) {
        self.next_spurious += 1;
        self.stats.spurious_sc += 1;
    }

    /// Takes the next corruption due at event count `events`, if any,
    /// returning its clear-`Pset` flag. Multiple corruptions due at the
    /// same event are delivered by repeated calls.
    pub fn take_corruption(&mut self, events: u64) -> Option<bool> {
        let (t, clear) = *self.plan.corruptions.get(self.next_corruption)?;
        if t > events {
            return None;
        }
        self.next_corruption += 1;
        self.stats.corruptions += 1;
        Some(clear)
    }

    /// A seeded arbitrary replacement for `v` *of the same type*; the
    /// by-value convenience form of [`FaultInjector::corrupt_in_place`]
    /// (same mutation stream: both draw identically from the value seed).
    pub fn corrupt_value(&mut self, v: &Value) -> Value {
        let mut out = v.clone();
        self.corrupt_in_place(&mut out);
        out
    }

    /// Corrupts `v` *in place*, preserving its type: the corrupted
    /// register stays type-plausible (an `Int` stays an `Int`, a bit
    /// string keeps its width — one word gets one bit flipped, no buffer
    /// is rebuilt) so corruption models transient bit flips rather than
    /// arbitrary rewrites. [`Value::Unit`] has a single inhabitant, so
    /// its corruption is observable only through the optional `Pset`
    /// clear.
    pub fn corrupt_in_place(&mut self, v: &mut Value) {
        match v {
            Value::Unit => {}
            Value::Bool(b) => *b = !*b,
            Value::Int(i) => {
                let fresh = i128::from(self.rng.range_i64(0, 1024));
                *i = if fresh == *i { fresh + 1 } else { fresh };
            }
            Value::Pid(p) => {
                // Provably a *different* process name.
                *p = ProcessId((p.0 + 1 + self.rng.index(63)) % 64);
            }
            Value::Reg(r) => r.0 ^= 1 + self.rng.below(255),
            Value::Bits(ws) => {
                // The word slab may be shared with run histories and
                // snapshots; corruption rebuilds the node so the mutation
                // stays local to this register.
                let mut words = ws.to_vec();
                if words.is_empty() {
                    words.push(self.rng.next_u64());
                } else {
                    let i = self.rng.index(words.len());
                    words[i] ^= 1 << self.rng.below(64);
                }
                *v = Value::bits(words);
            }
            Value::Tuple(vs) => {
                if vs.is_empty() {
                    // An empty tuple corrupts to Unit: same "sequence"
                    // family, observably different.
                    *v = Value::Unit;
                } else {
                    let mut items = vs.to_vec();
                    let i = self.rng.index(items.len());
                    self.corrupt_in_place(&mut items[i]);
                    *v = Value::tuple(items);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegisterId;

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(!inj.spurious_due(u64::MAX));
        assert_eq!(inj.take_corruption(u64::MAX), None);
        assert_eq!(inj.stats().total(), 0);
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().summary(), "fault-plan:none");
    }

    #[test]
    fn thresholds_fire_in_order_and_count() {
        let mut inj = FaultInjector::new(FaultPlan::at([10, 3], [(5, true), (2, false)], 1));
        // `at` sorts: spurious [3, 10], corruptions [(2, false), (5, true)].
        assert!(!inj.spurious_due(2));
        assert!(inj.spurious_due(3));
        inj.consume_spurious();
        assert!(!inj.spurious_due(5), "second threshold not yet due");
        assert!(inj.spurious_due(10));
        inj.consume_spurious();
        assert!(!inj.spurious_due(u64::MAX), "plan exhausted");
        assert_eq!(inj.take_corruption(1), None);
        assert_eq!(inj.take_corruption(2), Some(false));
        assert_eq!(inj.take_corruption(4), None);
        assert_eq!(inj.take_corruption(7), Some(true));
        assert_eq!(inj.take_corruption(u64::MAX), None);
        assert_eq!(
            inj.stats(),
            FaultStats {
                spurious_sc: 2,
                corruptions: 2
            }
        );
        assert_eq!(inj.stats().total(), 4);
    }

    #[test]
    fn multiple_corruptions_due_at_one_event_all_fire() {
        let mut inj = FaultInjector::new(FaultPlan::at([], [(4, true), (4, false), (4, true)], 0));
        let mut fired = 0;
        while inj.take_corruption(4).is_some() {
            fired += 1;
        }
        assert_eq!(fired, 3);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(9, 3, 4, 32);
        let b = FaultPlan::seeded(9, 3, 4, 32);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(10, 3, 4, 32));
        assert_eq!(a.spurious().len(), 3);
        assert_eq!(a.corruptions().len(), 4);
        assert!(a.spurious().iter().all(|&t| t < 32));
        assert!(a.corruptions().iter().all(|&(t, _)| t < 32));
        assert!(a.spurious().windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Window 0 clamps to 1 instead of panicking.
        let z = FaultPlan::seeded(1, 2, 2, 0);
        assert!(z.spurious().iter().all(|&t| t == 0));
    }

    #[test]
    fn corrupt_value_preserves_type_and_differs() {
        let mut inj = FaultInjector::new(FaultPlan::at([], [], 7));
        let cases = [
            Value::Bool(true),
            Value::Int(5),
            Value::Pid(ProcessId(3)),
            Value::Reg(RegisterId(9)),
            Value::bits(vec![0, 1]),
            Value::tuple([Value::Int(1), Value::Bool(false)]),
        ];
        for v in &cases {
            let c = inj.corrupt_value(v);
            assert_ne!(&c, v, "corruption must be observable for {v}");
            assert_eq!(
                std::mem::discriminant(&c),
                std::mem::discriminant(v),
                "same-type corruption for {v}"
            );
        }
        // Unit is the documented fixed point.
        assert_eq!(inj.corrupt_value(&Value::Unit), Value::Unit);
        // Bit strings keep their width.
        let c = inj.corrupt_value(&Value::bits(vec![7, 7, 7]));
        assert_eq!(c.as_bits().map(<[u64]>::len), Some(3));
        // Tuples keep their arity (one corrupted element).
        let t = Value::tuple([Value::Int(1), Value::Int(2)]);
        assert_eq!(inj.corrupt_value(&t).len(), Some(2));
        // Empty tuple corrupts to Unit (still observable).
        assert_eq!(inj.corrupt_value(&Value::empty_tuple()), Value::Unit);
    }

    #[test]
    fn corrupt_in_place_matches_the_by_value_stream() {
        let mut a = FaultInjector::new(FaultPlan::at([], [], 13));
        let mut b = FaultInjector::new(FaultPlan::at([], [], 13));
        let cases = [
            Value::Unit,
            Value::Bool(false),
            Value::Int(999),
            Value::Pid(ProcessId(7)),
            Value::Reg(RegisterId(2)),
            Value::bits(vec![5, 6]),
            Value::bits(vec![]),
            Value::tuple([Value::bits(vec![1]), Value::Int(0)]),
            Value::empty_tuple(),
        ];
        for v in &cases {
            let mut m = v.clone();
            a.corrupt_in_place(&mut m);
            assert_eq!(m, b.corrupt_value(v), "streams diverged on {v}");
        }
    }

    #[test]
    fn corrupt_value_streams_are_seed_deterministic() {
        let mut a = FaultInjector::new(FaultPlan::at([], [], 11));
        let mut b = FaultInjector::new(FaultPlan::at([], [], 11));
        for _ in 0..20 {
            assert_eq!(
                a.corrupt_value(&Value::Int(100)),
                b.corrupt_value(&Value::Int(100))
            );
        }
    }

    #[test]
    fn display_lists_thresholds() {
        let p = FaultPlan::at([3], [(5, true), (8, false)], 0xAB);
        let s = p.summary();
        assert!(s.contains("spurious@[3]"), "{s}");
        assert!(s.contains("5!"), "{s}");
        assert!(s.contains("8"), "{s}");
    }
}
