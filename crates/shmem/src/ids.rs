//! Identifier newtypes for processes and shared registers.

use std::fmt;

/// The identity of a process `p_i` in an `n`-process system.
///
/// Process ids are dense: a system of `n` processes uses ids
/// `ProcessId(0) .. ProcessId(n - 1)`, mirroring the paper's
/// `p_0, ..., p_{n-1}`. The id order is significant: the Figure-2 adversary
/// schedules the LL-, swap-, and SC-groups of each round "in the order of
/// their IDs".
///
/// # Examples
///
/// ```
/// use llsc_shmem::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.to_string(), "p3");
/// assert!(ProcessId(1) < ProcessId(2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns an iterator over all process ids of an `n`-process system,
    /// in id order.
    ///
    /// ```
    /// use llsc_shmem::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// The identity of a shared register `R_j`.
///
/// The paper's shared memory has an infinite number of registers
/// `R_0, R_1, ...`; [`crate::SharedMemory`] materialises them lazily, so any
/// `RegisterId` is always valid to use.
///
/// # Examples
///
/// ```
/// use llsc_shmem::RegisterId;
/// assert_eq!(RegisterId(7).to_string(), "R7");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub u64);

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u64> for RegisterId {
    fn from(i: u64) -> Self {
        RegisterId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_ordering_follows_index() {
        assert!(ProcessId(0) < ProcessId(1));
        assert!(ProcessId(10) > ProcessId(9));
        assert_eq!(ProcessId(4), ProcessId(4));
    }

    #[test]
    fn process_id_all_yields_dense_range() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        for (i, p) in ids.iter().enumerate() {
            assert_eq!(p.0, i);
        }
    }

    #[test]
    fn process_id_all_empty_system() {
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(12).to_string(), "p12");
        assert_eq!(RegisterId(0).to_string(), "R0");
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(5), ProcessId(5));
        assert_eq!(RegisterId::from(5u64), RegisterId(5));
    }

    #[test]
    fn ids_are_hashable_and_usable_as_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(RegisterId(3), "x");
        m.insert(RegisterId(1), "y");
        assert_eq!(m.keys().next(), Some(&RegisterId(1)));
    }
}
