//! Identifier newtypes for processes and shared registers.

use std::fmt;

/// The identity of a process `p_i` in an `n`-process system.
///
/// Process ids are dense: a system of `n` processes uses ids
/// `ProcessId(0) .. ProcessId(n - 1)`, mirroring the paper's
/// `p_0, ..., p_{n-1}`. The id order is significant: the Figure-2 adversary
/// schedules the LL-, swap-, and SC-groups of each round "in the order of
/// their IDs".
///
/// # Examples
///
/// ```
/// use llsc_shmem::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.to_string(), "p3");
/// assert!(ProcessId(1) < ProcessId(2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns an iterator over all process ids of an `n`-process system,
    /// in id order.
    ///
    /// ```
    /// use llsc_shmem::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// A set of [`ProcessId`]s stored as a bitmask.
///
/// The simulator's hot structures — a register's LL/SC `Pset` and the
/// Lemma 5.1 `UP` sets — are sets of dense process ids that are inserted
/// into, cleared, and subset-tested on every simulated event. A
/// `BTreeSet<ProcessId>` pays a heap allocation per element for that;
/// `ProcMask` packs ids below [`ProcMask::FAST_BITS`] into one inline
/// `u128` word, making membership, insertion, clearing, union, and subset
/// tests single word operations with **zero heap traffic**. Every subset
/// sweep caps `n` at 16, so the exhaustive-verification hot path lives
/// entirely in the fast word (debug-asserted in the sweeps); the scaling
/// experiments push `n` to 4096, so ids `>= 128` spill into a
/// lazily-allocated extension vector rather than being rejected.
///
/// Iteration order is ascending id order, matching the `BTreeSet` this
/// type replaces — schedule construction and `Display` output depend on
/// that order, and it keeps experiment output byte-identical.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{ProcMask, ProcessId};
/// let mut s = ProcMask::new();
/// assert!(s.insert(ProcessId(2)));
/// assert!(s.insert(ProcessId(0)));
/// assert!(!s.insert(ProcessId(2)), "already present");
/// assert!(s.contains(ProcessId(0)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![ProcessId(0), ProcessId(2)]);
/// assert!(s.is_subset(&ProcMask::full(3)));
/// s.clear();
/// assert!(s.is_empty());
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct ProcMask {
    /// Ids `0 .. 128`: the allocation-free fast word.
    lo: u128,
    /// Ids `128 ..`: block `i` covers ids `128 * (i + 1) .. 128 * (i + 2)`.
    /// Empty (no allocation) until a large id is inserted; trailing zero
    /// blocks are trimmed so `Eq`/`Hash` see a canonical form.
    hi: Vec<u128>,
}

impl ProcMask {
    /// The number of ids the inline fast word covers.
    pub const FAST_BITS: usize = 128;

    /// The empty set. Allocation-free.
    pub const fn new() -> ProcMask {
        ProcMask {
            lo: 0,
            hi: Vec::new(),
        }
    }

    /// The full set `{p_0, …, p_{n-1}}` of an `n`-process system.
    pub fn full(n: usize) -> ProcMask {
        let mut m = ProcMask::new();
        for p in ProcessId::all(n) {
            m.insert(p);
        }
        m
    }

    #[inline]
    fn split(p: ProcessId) -> (Option<usize>, u128) {
        if p.0 < Self::FAST_BITS {
            (None, 1u128 << p.0)
        } else {
            let off = p.0 - Self::FAST_BITS;
            (
                Some(off / Self::FAST_BITS),
                1u128 << (off % Self::FAST_BITS),
            )
        }
    }

    /// Inserts `p`; returns `true` iff it was not already present.
    #[inline]
    pub fn insert(&mut self, p: ProcessId) -> bool {
        match Self::split(p) {
            (None, bit) => {
                let fresh = self.lo & bit == 0;
                self.lo |= bit;
                fresh
            }
            (Some(block), bit) => {
                if self.hi.len() <= block {
                    self.hi.resize(block + 1, 0);
                }
                let fresh = self.hi[block] & bit == 0;
                self.hi[block] |= bit;
                fresh
            }
        }
    }

    /// Removes `p`; returns `true` iff it was present.
    #[inline]
    pub fn remove(&mut self, p: ProcessId) -> bool {
        match Self::split(p) {
            (None, bit) => {
                let had = self.lo & bit != 0;
                self.lo &= !bit;
                had
            }
            (Some(block), bit) => {
                let Some(word) = self.hi.get_mut(block) else {
                    return false;
                };
                let had = *word & bit != 0;
                *word &= !bit;
                while self.hi.last() == Some(&0) {
                    self.hi.pop();
                }
                had
            }
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        match Self::split(p) {
            (None, bit) => self.lo & bit != 0,
            (Some(block), bit) => self.hi.get(block).is_some_and(|w| w & bit != 0),
        }
    }

    /// Empties the set, keeping any spill capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.lo = 0;
        self.hi.clear();
    }

    /// The number of ids in the set.
    pub fn len(&self) -> usize {
        self.lo.count_ones() as usize
            + self
                .hi
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// `true` iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == 0 && self.hi.iter().all(|&w| w == 0)
    }

    /// `true` iff every id of `self` is in `other` — one AND-NOT per word,
    /// where the `BTreeSet` predecessor walked both trees. This test runs
    /// per process per round per subset in the Lemma 5.2 sweeps.
    #[inline]
    pub fn is_subset(&self, other: &ProcMask) -> bool {
        if self.lo & !other.lo != 0 {
            return false;
        }
        self.hi
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.hi.get(i).copied().unwrap_or(0) == 0)
    }

    /// `true` iff every id of `other` is in `self`.
    pub fn is_superset(&self, other: &ProcMask) -> bool {
        other.is_subset(self)
    }

    /// Adds every id of `other` to `self`.
    pub fn union_with(&mut self, other: &ProcMask) {
        self.lo |= other.lo;
        if self.hi.len() < other.hi.len() {
            self.hi.resize(other.hi.len(), 0);
        }
        for (dst, src) in self.hi.iter_mut().zip(&other.hi) {
            *dst |= src;
        }
    }

    /// Keeps only the ids present in both sets, trimming trailing zero
    /// spill blocks so the result stays in the canonical `Eq`/`Hash`
    /// form.
    pub fn intersect_with(&mut self, other: &ProcMask) {
        self.lo &= other.lo;
        self.hi.truncate(other.hi.len());
        for (dst, src) in self.hi.iter_mut().zip(&other.hi) {
            *dst &= src;
        }
        while self.hi.last() == Some(&0) {
            self.hi.pop();
        }
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> ProcMaskIter<'_> {
        ProcMaskIter {
            word: self.lo,
            base: 0,
            hi: &self.hi,
            next_block: 0,
        }
    }
}

impl fmt::Debug for ProcMask {
    /// Renders like the `BTreeSet<ProcessId>` it replaces
    /// (`{ProcessId(0), ProcessId(2)}`), keeping diagnostic strings —
    /// including the subset-sweep violation reports — stable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<const N: usize> From<[ProcessId; N]> for ProcMask {
    fn from(ids: [ProcessId; N]) -> Self {
        ids.into_iter().collect()
    }
}

impl FromIterator<ProcessId> for ProcMask {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut m = ProcMask::new();
        for p in iter {
            m.insert(p);
        }
        m
    }
}

impl Extend<ProcessId> for ProcMask {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl<'a> IntoIterator for &'a ProcMask {
    type Item = ProcessId;
    type IntoIter = ProcMaskIter<'a>;
    fn into_iter(self) -> ProcMaskIter<'a> {
        self.iter()
    }
}

/// Ascending-order iterator over a [`ProcMask`].
#[derive(Clone, Debug)]
pub struct ProcMaskIter<'a> {
    word: u128,
    base: usize,
    hi: &'a [u128],
    next_block: usize,
}

impl Iterator for ProcMaskIter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(ProcessId(self.base + bit));
            }
            let block = self.next_block;
            if block >= self.hi.len() {
                return None;
            }
            self.word = self.hi[block];
            self.base = ProcMask::FAST_BITS * (block + 1);
            self.next_block = block + 1;
        }
    }
}

/// The identity of a shared register `R_j`.
///
/// The paper's shared memory has an infinite number of registers
/// `R_0, R_1, ...`; [`crate::SharedMemory`] materialises them lazily, so any
/// `RegisterId` is always valid to use.
///
/// # Examples
///
/// ```
/// use llsc_shmem::RegisterId;
/// assert_eq!(RegisterId(7).to_string(), "R7");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub u64);

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u64> for RegisterId {
    fn from(i: u64) -> Self {
        RegisterId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_ordering_follows_index() {
        assert!(ProcessId(0) < ProcessId(1));
        assert!(ProcessId(10) > ProcessId(9));
        assert_eq!(ProcessId(4), ProcessId(4));
    }

    #[test]
    fn process_id_all_yields_dense_range() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        for (i, p) in ids.iter().enumerate() {
            assert_eq!(p.0, i);
        }
    }

    #[test]
    fn process_id_all_empty_system() {
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(12).to_string(), "p12");
        assert_eq!(RegisterId(0).to_string(), "R0");
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(5), ProcessId(5));
        assert_eq!(RegisterId::from(5u64), RegisterId(5));
    }

    #[test]
    fn proc_mask_insert_remove_contains() {
        let mut m = ProcMask::new();
        assert!(m.is_empty());
        assert!(m.insert(ProcessId(5)));
        assert!(!m.insert(ProcessId(5)));
        assert!(m.contains(ProcessId(5)));
        assert!(!m.contains(ProcessId(4)));
        assert_eq!(m.len(), 1);
        assert!(m.remove(ProcessId(5)));
        assert!(!m.remove(ProcessId(5)));
        assert!(m.is_empty());
    }

    #[test]
    fn proc_mask_iterates_in_ascending_id_order() {
        let m: ProcMask = [9, 0, 127, 3].into_iter().map(ProcessId).collect();
        let ids: Vec<_> = m.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 3, 9, 127]);
    }

    #[test]
    fn proc_mask_spills_past_the_fast_word() {
        // Scaling experiments run executors at n up to 4096; ids >= 128
        // must round-trip through the spill blocks.
        let ids = [0usize, 127, 128, 129, 1023, 4095];
        let m: ProcMask = ids.into_iter().map(ProcessId).collect();
        assert_eq!(m.len(), ids.len());
        assert_eq!(m.iter().map(|p| p.0).collect::<Vec<_>>(), ids);
        for i in ids {
            assert!(m.contains(ProcessId(i)));
        }
        assert!(!m.contains(ProcessId(2048)));
        let mut trimmed = m;
        assert!(trimmed.remove(ProcessId(4095)));
        assert!(trimmed.remove(ProcessId(1023)));
        // Trailing zero blocks are trimmed, so equality is canonical.
        let expect: ProcMask = [0usize, 127, 128, 129].into_iter().map(ProcessId).collect();
        assert_eq!(trimmed, expect);
    }

    #[test]
    fn proc_mask_subset_and_union() {
        let small: ProcMask = [1usize, 3].into_iter().map(ProcessId).collect();
        let big = ProcMask::full(4);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(ProcMask::new().is_subset(&small), "empty set is a subset");
        // Subset tests across the spill boundary.
        let tall: ProcMask = [1usize, 200].into_iter().map(ProcessId).collect();
        assert!(!tall.is_subset(&big));
        let mut u = small.clone();
        u.union_with(&tall);
        assert_eq!(u.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 3, 200]);
        assert!(small.is_subset(&u));
        assert!(tall.is_subset(&u));
    }

    #[test]
    fn proc_mask_full_matches_process_id_all() {
        for n in [0usize, 1, 7, 128, 130] {
            let m = ProcMask::full(n);
            assert_eq!(m.len(), n);
            assert_eq!(
                m.iter().collect::<Vec<_>>(),
                ProcessId::all(n).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn proc_mask_clear_keeps_nothing() {
        let mut m = ProcMask::full(200);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m, ProcMask::new(), "cleared mask equals the empty mask");
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn proc_mask_debug_matches_btreeset_shape() {
        let m: ProcMask = [0usize, 2].into_iter().map(ProcessId).collect();
        let b: std::collections::BTreeSet<ProcessId> =
            [0usize, 2].into_iter().map(ProcessId).collect();
        assert_eq!(format!("{m:?}"), format!("{b:?}"));
    }

    #[test]
    fn ids_are_hashable_and_usable_as_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(RegisterId(3), "x");
        m.insert(RegisterId(1), "y");
        assert_eq!(m.keys().next(), Some(&RegisterId(1)));
    }
}
