//! The minimal hand-rolled JSON subset every artifact in this workspace
//! uses: strings, arrays, and objects, with every scalar encoded as a
//! string. Object key order is preserved.
//!
//! Hand-rolled because the build environment has no registry access for a
//! serde dependency. One copy of the emit/parse machinery lives here and
//! backs both the repro cases ([`crate::ReproCase`]) and the bench table
//! artifacts (`llsc_bench::table::Table`); the two used to carry private
//! duplicates of this module.
//!
//! The writer side is [`escape`] / [`push_string`]; the reader side is
//! [`parse`] (a complete document) and [`parse_prefix`] (one value plus
//! the unconsumed remainder, for callers that splice values out of larger
//! texts). Both readers accept the standard JSON string escapes including
//! `\uXXXX`.

/// A parsed JSON value of the subset above.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string scalar.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, or a message naming `what` was expected.
    ///
    /// # Errors
    ///
    /// Returns `"{what}: expected a string"` when this is not a string.
    pub fn str_or(&self, what: &str) -> Result<String, String> {
        self.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{what}: expected a string"))
    }

    /// The elements, or a message naming `what` was expected.
    ///
    /// # Errors
    ///
    /// Returns `"{what}: expected an array"` when this is not an array.
    pub fn array_or(&self, what: &str) -> Result<&[Value], String> {
        self.as_array()
            .ok_or_else(|| format!("{what}: expected an array"))
    }

    /// The fields, or a message naming `what` was expected.
    ///
    /// # Errors
    ///
    /// Returns `"{what}: expected an object"` when this is not an object.
    pub fn object_or(&self, what: &str) -> Result<&[(String, Value)], String> {
        self.as_object()
            .ok_or_else(|| format!("{what}: expected an object"))
    }
}

/// Escapes a string for embedding in a JSON string literal (no
/// surrounding quotes — see [`push_string`] for the quoted form).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&escape(s));
    out.push('"');
}

/// Parses a complete JSON document (of the subset above), rejecting
/// trailing non-whitespace.
///
/// # Errors
///
/// Returns a descriptive message with the byte offset of the first
/// syntax error, or `"trailing data at byte N"` when the document
/// continues past the first value.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Parses one value, returning it and the unconsumed remainder of the
/// input (which may legitimately be non-empty — callers that require a
/// complete document should use [`parse`]).
///
/// # Errors
///
/// Returns a descriptive message with the byte offset of the first
/// syntax error.
pub fn parse_prefix(input: &str) -> Result<(Value, &str), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    // `pos` sits just past a structural ASCII byte (quote, bracket, or
    // brace), so it is always a char boundary.
    Ok((value, &input[pos..]))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        _ => Err(format!("unexpected value at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("bad utf-8: {e}"));
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        let c = char::from_u32(code).ok_or("bad \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Re-renders a parsed value in the canonical all-string form the
    /// artifact writers produce, for round-trip checks.
    fn render(v: &Value) -> String {
        match v {
            Value::Str(s) => {
                let mut out = String::new();
                push_string(&mut out, s);
                out
            }
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| {
                        let mut out = String::new();
                        push_string(&mut out, k);
                        out.push(':');
                        out.push_str(&render(v));
                        out
                    })
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }

    #[test]
    fn document_round_trips_through_render_and_parse() {
        let doc = Value::Obj(vec![
            ("plain".into(), Value::Str("x".into())),
            (
                "escaped".into(),
                Value::Str("quote \" slash \\ nl \n tab \t ctl \u{1}".into()),
            ),
            (
                "arr".into(),
                Value::Arr(vec![
                    Value::Str(String::new()),
                    Value::Obj(vec![]),
                    Value::Arr(vec![]),
                ]),
            ),
            ("unicode".into(), Value::Str("héllo ☃".into())),
        ]);
        let text = render(&doc);
        let back = parse(&text).expect("rendered document parses");
        assert_eq!(back, doc);
        // Canonical form is stable: render(parse(render(v))) == render(v).
        assert_eq!(render(&back), text);
    }

    #[test]
    fn escape_and_push_string_agree() {
        let s = "a\"b\\c\nd\u{2}";
        let mut quoted = String::new();
        push_string(&mut quoted, s);
        assert_eq!(quoted, format!("\"{}\"", escape(s)));
        assert_eq!(escape(s), "a\\\"b\\\\c\\nd\\u0002");
    }

    #[test]
    fn parse_decodes_all_standard_escapes() {
        let v = parse(r#""q\" s\\ f\/ n\n r\r t\t u\u2603""#).unwrap();
        assert_eq!(v.as_str(), Some("q\" s\\ f/ n\n r\r t\t u☃"));
    }

    #[test]
    fn parse_prefix_returns_the_remainder() {
        let (v, rest) = parse_prefix("{\"a\":\"1\"} trailing").unwrap();
        assert_eq!(v.field("a").and_then(Value::as_str), Some("1"));
        assert_eq!(rest, " trailing");
        // The strict parser rejects the same input.
        assert!(parse("{\"a\":\"1\"} trailing")
            .unwrap_err()
            .contains("trailing data"));
    }

    #[test]
    fn prefix_parse_lands_on_char_boundaries() {
        // A multi-byte char right after the value must not split.
        let (v, rest) = parse_prefix("[\"☃\"]☃").unwrap();
        assert_eq!(v.as_array().unwrap()[0].as_str(), Some("☃"));
        assert_eq!(rest, "☃");
    }

    #[test]
    fn option_and_result_accessors_agree() {
        let obj = parse("{\"k\":[\"v\"]}").unwrap();
        assert_eq!(
            obj.as_object().map(<[_]>::len),
            obj.object_or("o").map(|f| f.len()).ok()
        );
        let arr = obj.field("k").unwrap();
        assert_eq!(arr.as_array().map(<[_]>::len), Some(1));
        assert_eq!(arr.array_or("k").unwrap().len(), 1);
        assert_eq!(
            arr.str_or("k").unwrap_err(),
            "k: expected a string".to_string()
        );
        assert_eq!(arr.as_str(), None);
        assert!(obj.array_or("case").is_err() && obj.as_array().is_none());
        assert!(arr.object_or("k").is_err() && arr.as_object().is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[",
            "\"unterminated",
            "{\"k\"}",
            "{\"k\":}",
            "[\"a\" \"b\"]",
            "true",
            "42",
            "\"bad \\u12\"",
            "\"bad \\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn object_field_lookup_preserves_source_order() {
        let v = parse("{\"b\":\"2\",\"a\":\"1\",\"b\":\"3\"}").unwrap();
        // First match wins, like the artifact readers expect.
        assert_eq!(v.field("b").and_then(Value::as_str), Some("2"));
        let fields = v.as_object().unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }
}
