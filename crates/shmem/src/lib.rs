//! # llsc-shmem: the Section-3 model of computation
//!
//! This crate implements the asynchronous shared-memory model of
//! Jayanti, *"A Time Complexity Lower Bound for Randomized Implementations of
//! Some Shared Objects"* (PODC 1998), Section 3:
//!
//! * a system of `n` processes `p_0, ..., p_{n-1}`, each a resumable state
//!   machine (the [`Program`] trait) whose steps are either *local coin
//!   tosses* or *shared-memory operations*;
//! * a shared memory with a conceptually infinite supply of registers
//!   `R_0, R_1, ...`, each of unbounded size ([`SharedMemory`], [`Value`]);
//! * the five memory operations the paper studies — **LL**, **SC**,
//!   **validate**, **swap**, and **move** — with the paper's *strong*
//!   semantics (SC and validate return the previous value in addition to a
//!   boolean), see [`Operation`] and [`RegisterState`];
//! * coin tosses drawn from an arbitrary `COIN-RANGE` via explicit
//!   *toss assignments* ([`TossAssignment`]), exactly as in the paper's
//!   definition of `(All, A)`-runs;
//! * schedulers as functions of the finite run so far ([`Scheduler`]), with
//!   the "standard" power: full view of the past, no view of future coins;
//! * runs as alternating sequences of configurations and events ([`Run`]),
//!   with the *shared-access time complexity* accounting `t(p, R)` and
//!   `t(R)` used throughout the paper.
//!
//! The deterministic discrete-event engine tying these together is
//! [`Executor`]. Higher-level crates (`llsc-core`) build the paper's
//! five-phase round adversary, `UP`-set tracking, and the
//! indistinguishability machinery on top of the primitives exposed here.
//!
//! Execution is fault-tolerant by construction: safety-limit trips are
//! structured [`RunError`]s rather than panics (classified per run by
//! [`RunOutcome`]), crash-stop faults are first-class ([`Executor::crash`],
//! the seeded [`CrashPlan`]/[`CrashScheduler`] adversary), memory faults —
//! spurious SC failures and transient register corruption, the weak-LL/SC
//! semantics of real hardware — are injected deterministically by a seeded
//! [`FaultPlan`] ([`Executor::set_fault_plan`]), and the [`Sweep`] trial
//! engine isolates per-trial panics into [`TrialFailure`] rows
//! ([`Sweep::run_fallible`]), with optional deterministic retries and
//! per-trial wall-clock deadlines.
//!
//! ## Example
//!
//! ```
//! use llsc_shmem::{Executor, ExecutorConfig, ProcessId, RegisterId, ZeroTosses};
//! use llsc_shmem::dsl::{ll, sc, done};
//! use llsc_shmem::{Algorithm, Program, Value};
//!
//! /// Every process LL's register 0 and tries to SC its own id into it.
//! struct OneShotSc;
//! impl Algorithm for OneShotSc {
//!     fn name(&self) -> &'static str { "one-shot-sc" }
//!     fn spawn(&self, pid: ProcessId, _n: usize) -> Box<dyn Program> {
//!         let r = RegisterId(0);
//!         ll(r, move |_prev| {
//!             sc(r, Value::from(pid.0 as i64), move |ok, _prev| {
//!                 done(Value::from(ok))
//!             })
//!         })
//!         .into_program()
//!     }
//! }
//!
//! let mut exec = Executor::new(&OneShotSc, 3, std::sync::Arc::new(ZeroTosses), ExecutorConfig::default());
//! // Run all three processes round-robin to completion.
//! while exec.step_round_robin().unwrap() {}
//! // Exactly one SC succeeds.
//! let winners = (0..3)
//!     .filter(|&i| exec.verdict(ProcessId(i)) == Some(&Value::from(true)))
//!     .count();
//! assert_eq!(winners, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod coin;
mod crash;
mod executor;
mod fault;
mod ids;
mod memory;
mod op;
mod outcome;
mod process;
mod register;
mod rmr;
mod run;
mod scheduler;
mod value;

pub mod backend;
pub mod checkpoint;
pub mod dsl;
pub mod durable;
pub mod json;
pub mod repro;
pub mod rng;
pub mod sweep;

pub use backend::{drive_program, run_sequential, BackendRun, ExecutionBackend, SimBackend};
pub use chaos::ChaosPlan;
pub use checkpoint::{CheckpointError, LoadedCheckpoint, SkippedCheckpoint};
pub use coin::{ConstantTosses, MapTosses, SeededTosses, TossAssignment, ZeroTosses};
pub use crash::{CrashPlan, CrashScheduler, RecoveringCrashScheduler};
pub use durable::{atomic_write, fnv64};
pub use executor::{ExecSnapshot, Executor, ExecutorConfig, StepOutcome};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use ids::{ProcMask, ProcMaskIter, ProcessId, RegisterId};
pub use memory::{MemoryStats, SharedMemory};
pub use op::{OpKind, Operation, Response};
pub use outcome::{RunError, RunOutcome};
pub use process::{Action, Algorithm, Feedback, FnAlgorithm, Program};
pub use register::RegisterState;
pub use repro::{
    Provenance, RecoverySpec, Replayed, ReproCase, ScheduleSpec, ShrinkReport, TossSpec,
};
pub use rmr::{dsm_cost, dsm_home, dsm_remote, CcTracker};
pub use run::{Interaction, OpCounters, Run, RunEvent};
pub use scheduler::{
    ListScheduler, PartitionScheduler, RandomScheduler, RecordingScheduler, RoundRobinScheduler,
    Scheduler, SequentialScheduler,
};
pub use sweep::{Sweep, Trial, TrialFailure};
pub use value::Value;
