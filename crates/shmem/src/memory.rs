//! The shared memory: a lazily-infinite array of registers.

use crate::{OpKind, Operation, ProcMask, ProcessId, RegisterId, RegisterState, Response, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The paper's shared memory: registers `R_0, R_1, ...`, conceptually
/// infinite in number and unbounded in size.
///
/// Registers are materialised on first touch; an untouched register behaves
/// exactly like a register holding its configured initial value (which is
/// [`Value::Unit`] unless set via [`SharedMemory::set_initial`]). This makes
/// the "infinite number of words" of the paper observationally exact.
///
/// # Examples
///
/// ```
/// use llsc_shmem::{Operation, ProcessId, RegisterId, Response, SharedMemory, Value};
/// let mut mem = SharedMemory::new();
/// let p = ProcessId(0);
/// let r = RegisterId(1_000_000); // any register exists
/// assert_eq!(mem.apply(p, &Operation::Ll(r)), Response::Value(Value::Unit));
/// let resp = mem.apply(p, &Operation::Sc(r, Value::from(1i64)));
/// assert_eq!(resp.flag(), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedMemory {
    regs: BTreeMap<RegisterId, RegisterState>,
    initial: BTreeMap<RegisterId, Value>,
    stats: MemoryStats,
}

impl SharedMemory {
    /// Creates an empty shared memory: every register holds
    /// [`Value::Unit`] and has an empty `Pset`.
    pub fn new() -> Self {
        SharedMemory::default()
    }

    /// Creates a shared memory whose registers start with the given initial
    /// values (all others start at [`Value::Unit`]).
    ///
    /// Implementations of initialised objects (e.g. a queue that "initially
    /// contains `n` items") use this to set up their representation.
    pub fn with_initial<I>(initial: I) -> Self
    where
        I: IntoIterator<Item = (RegisterId, Value)>,
    {
        SharedMemory {
            initial: initial.into_iter().collect(),
            ..SharedMemory::default()
        }
    }

    /// Sets the initial value of `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` has already been touched by an operation: initial
    /// values are part of the experiment setup, not of its execution.
    pub fn set_initial(&mut self, reg: RegisterId, value: Value) {
        assert!(
            !self.regs.contains_key(&reg),
            "set_initial({reg}) after the register was touched"
        );
        self.initial.insert(reg, value);
    }

    fn initial_value(&self, reg: RegisterId) -> Value {
        self.initial.get(&reg).cloned().unwrap_or_default()
    }

    fn state_mut(&mut self, reg: RegisterId) -> &mut RegisterState {
        if !self.regs.contains_key(&reg) {
            let init = self.initial_value(reg);
            self.regs.insert(reg, RegisterState::new(init));
        }
        self.regs.get_mut(&reg).expect("just inserted")
    }

    /// Reads the current value of `reg` without perturbing any state
    /// (an omniscient-observer read, used by checkers — not a process step).
    pub fn peek(&self, reg: RegisterId) -> Value {
        self.regs
            .get(&reg)
            .map(|s| s.value().clone())
            .unwrap_or_else(|| self.initial_value(reg))
    }

    /// Whether `p` is currently in `Pset(reg)` (omniscient view).
    pub fn peek_linked(&self, reg: RegisterId, p: ProcessId) -> bool {
        self.regs.get(&reg).is_some_and(|s| s.linked(p))
    }

    /// The set of registers that have been touched by at least one
    /// operation, in id order.
    pub fn touched(&self) -> impl Iterator<Item = RegisterId> + '_ {
        self.regs.keys().copied()
    }

    /// Applies `op` on behalf of process `p` and returns the response,
    /// following the Section-3 semantics exactly.
    pub fn apply(&mut self, p: ProcessId, op: &Operation) -> Response {
        self.stats.record(op.kind());
        match op {
            Operation::Ll(r) => Response::Value(self.state_mut(*r).ll(p)),
            Operation::Validate(r) => {
                let (ok, value) = self.state_mut(*r).validate(p);
                Response::Flagged { ok, value }
            }
            Operation::Sc(r, v) => {
                let (ok, value) = self.state_mut(*r).sc(p, v.clone());
                if ok {
                    self.stats.successful_scs += 1;
                }
                Response::Flagged { ok, value }
            }
            Operation::Swap(r, v) => Response::Value(self.state_mut(*r).swap(v.clone())),
            Operation::Move { src, dst } => {
                // The source is read without mutation; reading it still
                // counts as "touching" so that snapshots list it.
                let moved = self.state_mut(*src).value().clone();
                self.state_mut(*dst).receive_move(moved);
                Response::Ack
            }
        }
    }

    /// Applies a *spurious* `SC` failure on behalf of `p`: if `p` is
    /// linked to `reg` (the SC would have succeeded), the link is silently
    /// dropped — [`RegisterState::suppress_sc`] — and the failed-SC
    /// response is returned. Returns `None` when `p` holds no link, in
    /// which case the SC would fail anyway and suppression would inject
    /// nothing; the caller should apply the operation normally and keep
    /// the fault pending.
    ///
    /// The suppressed SC is still a shared access and is counted in
    /// [`MemoryStats::scs`] (but not as successful).
    pub fn suppress_sc(&mut self, p: ProcessId, reg: RegisterId) -> Option<Response> {
        if !self.regs.get(&reg).is_some_and(|s| s.linked(p)) {
            return None;
        }
        self.stats.record(OpKind::Sc);
        let value = self.state_mut(reg).suppress_sc(p);
        Some(Response::Flagged { ok: false, value })
    }

    /// Transient corruption of `reg`: the value becomes `value` and, when
    /// `clear_pset` is set, every link is dropped. A fault-injector
    /// primitive — not a process step, so it is not counted in
    /// [`MemoryStats`].
    pub fn corrupt(&mut self, reg: RegisterId, value: Value, clear_pset: bool) {
        self.state_mut(reg).corrupt(value, clear_pset);
    }

    /// Transient corruption of `reg` *in place*: materialises the register
    /// and hands its value to `mutate` (no copy out, no copy back — the
    /// fault injector rewrites individual fields/words directly). When
    /// `clear_pset` is set, every link is dropped. Like
    /// [`SharedMemory::corrupt`], not counted in [`MemoryStats`].
    pub fn corrupt_in_place(
        &mut self,
        reg: RegisterId,
        clear_pset: bool,
        mutate: impl FnOnce(&mut Value),
    ) {
        self.state_mut(reg).corrupt_in_place(clear_pset, mutate);
    }

    /// Clears every touched register and the operation statistics while
    /// keeping the configured initial values (and the initial map's
    /// allocation): after a reset the memory is observationally the
    /// freshly constructed [`SharedMemory::with_initial`] memory again.
    /// The executor's trial-reset primitive
    /// ([`Executor::reset`](crate::Executor::reset)).
    pub fn reset(&mut self) {
        self.regs.clear();
        self.stats = MemoryStats::default();
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// A snapshot of every touched register's value, for end-of-round
    /// comparisons. Untouched registers are omitted (they hold their initial
    /// values by definition).
    pub fn snapshot_values(&self) -> BTreeMap<RegisterId, Value> {
        self.regs
            .iter()
            .map(|(r, s)| (*r, s.value().clone()))
            .collect()
    }

    /// A snapshot of every touched register's `Pset`, as bitmasks (one
    /// word copy per register instead of a per-member allocation).
    pub fn snapshot_psets(&self) -> BTreeMap<RegisterId, ProcMask> {
        self.regs
            .iter()
            .map(|(r, s)| (*r, s.pset().clone()))
            .collect()
    }
}

/// Counts of operations applied to a [`SharedMemory`], by kind.
///
/// These are *global* counters used for sanity checks and reporting; the
/// per-process shared-access counts that the paper's complexity measure
/// `t(p, R)` needs live in [`crate::Run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Number of `LL` operations applied.
    pub lls: u64,
    /// Number of `validate` operations applied.
    pub validates: u64,
    /// Number of `SC` operations applied (successful or not).
    pub scs: u64,
    /// Number of *successful* `SC` operations.
    pub successful_scs: u64,
    /// Number of `swap` operations applied.
    pub swaps: u64,
    /// Number of `move` operations applied.
    pub moves: u64,
}

impl MemoryStats {
    fn record(&mut self, kind: OpKind) {
        match kind {
            OpKind::Ll => self.lls += 1,
            OpKind::Validate => self.validates += 1,
            OpKind::Sc => self.scs += 1,
            OpKind::Swap => self.swaps += 1,
            OpKind::Move => self.moves += 1,
        }
    }

    /// Total number of shared-memory operations applied.
    pub fn total(&self) -> u64 {
        self.lls + self.validates + self.scs + self.swaps + self.moves
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LL={} validate={} SC={} (ok {}) swap={} move={} total={}",
            self.lls,
            self.validates,
            self.scs,
            self.successful_scs,
            self.swaps,
            self.moves,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    fn int(i: i64) -> Value {
        Value::from(i)
    }

    #[test]
    fn untouched_register_reads_initial_unit() {
        let mem = SharedMemory::new();
        assert_eq!(mem.peek(RegisterId(123)), Value::Unit);
        assert!(!mem.peek_linked(RegisterId(123), P0));
    }

    #[test]
    fn with_initial_seeds_values() {
        let mem = SharedMemory::with_initial([(RegisterId(0), int(5))]);
        assert_eq!(mem.peek(RegisterId(0)), int(5));
        assert_eq!(mem.peek(RegisterId(1)), Value::Unit);
    }

    #[test]
    fn first_ll_of_seeded_register_sees_initial_value() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(5))]);
        assert_eq!(
            mem.apply(P0, &Operation::Ll(RegisterId(0))),
            Response::Value(int(5))
        );
    }

    #[test]
    #[should_panic(expected = "after the register was touched")]
    fn set_initial_after_touch_panics() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.set_initial(RegisterId(0), int(1));
    }

    #[test]
    fn move_copies_value_and_preserves_source() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(9))]);
        // P1 links dst; the move must invalidate that link.
        mem.apply(P1, &Operation::Ll(RegisterId(1)));
        let resp = mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        assert_eq!(resp, Response::Ack);
        assert_eq!(mem.peek(RegisterId(1)), int(9));
        assert_eq!(mem.peek(RegisterId(0)), int(9), "source unchanged");
        assert!(!mem.peek_linked(RegisterId(1), P1), "move clears dst Pset");
    }

    #[test]
    fn move_does_not_clear_source_pset() {
        let mut mem = SharedMemory::new();
        mem.apply(P1, &Operation::Ll(RegisterId(0)));
        mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        assert!(mem.peek_linked(RegisterId(0), P1), "source Pset unchanged");
    }

    #[test]
    fn self_move_clears_pset_but_keeps_value() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(
            P1,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(0),
            },
        );
        assert_eq!(mem.peek(RegisterId(0)), int(3));
        assert!(!mem.peek_linked(RegisterId(0), P0));
    }

    #[test]
    fn stats_count_by_kind() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(P0, &Operation::Sc(RegisterId(0), int(1)));
        mem.apply(P1, &Operation::Sc(RegisterId(0), int(2)));
        mem.apply(P0, &Operation::Validate(RegisterId(0)));
        mem.apply(P0, &Operation::Swap(RegisterId(0), int(3)));
        mem.apply(
            P0,
            &Operation::Move {
                src: RegisterId(0),
                dst: RegisterId(1),
            },
        );
        let s = mem.stats();
        assert_eq!(s.lls, 1);
        assert_eq!(s.scs, 2);
        assert_eq!(s.successful_scs, 1);
        assert_eq!(s.validates, 1);
        assert_eq!(s.swaps, 1);
        assert_eq!(s.moves, 1);
        assert_eq!(s.total(), 6);
        assert!(s.to_string().contains("total=6"));
    }

    #[test]
    fn suppress_sc_requires_a_live_link_and_counts_as_an_sc() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        // No link yet: suppression has nothing to inject.
        assert_eq!(mem.suppress_sc(P0, RegisterId(0)), None);
        assert_eq!(mem.stats().scs, 0);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        let resp = mem.suppress_sc(P0, RegisterId(0));
        assert_eq!(
            resp,
            Some(Response::Flagged {
                ok: false,
                value: int(3)
            })
        );
        assert!(!mem.peek_linked(RegisterId(0), P0));
        assert_eq!(mem.peek(RegisterId(0)), int(3), "value untouched");
        let s = mem.stats();
        assert_eq!(s.scs, 1, "a spurious SC is still a shared access");
        assert_eq!(s.successful_scs, 0);
    }

    #[test]
    fn corrupt_rewrites_without_counting_an_operation() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(3))]);
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.corrupt(RegisterId(0), int(99), false);
        assert_eq!(mem.peek(RegisterId(0)), int(99));
        assert!(mem.peek_linked(RegisterId(0), P0), "links kept");
        mem.corrupt(RegisterId(0), int(100), true);
        assert!(!mem.peek_linked(RegisterId(0), P0), "links cleared");
        assert_eq!(mem.stats().total(), 1, "corruption is not a step");
        // Corrupting an untouched register materialises it.
        mem.corrupt(RegisterId(5), int(1), true);
        assert_eq!(mem.peek(RegisterId(5)), int(1));
    }

    #[test]
    fn snapshots_cover_touched_registers_only() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Swap(RegisterId(2), int(4)));
        let values = mem.snapshot_values();
        assert_eq!(values.len(), 1);
        assert_eq!(values[&RegisterId(2)], int(4));
        let touched: Vec<_> = mem.touched().collect();
        assert_eq!(touched, vec![RegisterId(2)]);
    }

    #[test]
    fn validate_is_readlike_even_without_link() {
        let mut mem = SharedMemory::with_initial([(RegisterId(0), int(7))]);
        let resp = mem.apply(P0, &Operation::Validate(RegisterId(0)));
        assert_eq!(
            resp,
            Response::Flagged {
                ok: false,
                value: int(7)
            }
        );
    }

    #[test]
    fn pset_snapshot_lists_linked_processes() {
        let mut mem = SharedMemory::new();
        mem.apply(P0, &Operation::Ll(RegisterId(0)));
        mem.apply(P1, &Operation::Ll(RegisterId(0)));
        let psets = mem.snapshot_psets();
        assert_eq!(
            psets[&RegisterId(0)].iter().collect::<Vec<_>>(),
            vec![P0, P1]
        );
    }
}
